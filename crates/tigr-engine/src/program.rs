//! Vertex-program abstraction for the monotone push analytics.
//!
//! BFS, SSSP, SSWP, and CC share the structure of Figure 2 / Algorithm 2:
//! a per-node `u32` value, an edge function computing a candidate for the
//! neighbor, and a monotone combine folding candidates into the
//! neighbor's slot. PageRank and BC do not fit the monotone mold and get
//! dedicated drivers ([`crate::algorithms::pr`], [`crate::algorithms::bc`]).

use serde::{Deserialize, Serialize};

use tigr_graph::{NodeId, Weight};

use crate::state::Combine;

/// How a node's value and an edge weight produce the candidate pushed to
/// the neighbor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeOp {
    /// `candidate = value + weight` (saturating): SSSP paths; BFS with
    /// all-1 weights; zero dumb weights are inert (Corollary 2).
    AddWeight,
    /// `candidate = min(value, weight)`: SSWP bottlenecks; infinite dumb
    /// weights are inert (Corollary 3).
    MinWeight,
    /// `candidate = value`: label propagation for CC; weights ignored.
    Copy,
    /// `candidate = value + 1` (saturating), weight ignored: true hop
    /// counts (k-hop neighborhoods) even on weighted graphs. Unlike
    /// [`EdgeOp::AddWeight`] there is no inert dumb weight, so physical
    /// splits inflate the count by one per split edge — plan validation
    /// rejects it over UDT representations.
    AddUnit,
    /// `candidate = value + weight`, but candidates above the cap
    /// collapse to `∞`: bounded-cost reachability (SSSP with a radius
    /// cutoff). With non-negative weights every prefix of a within-cap
    /// path is itself within the cap, so the fixpoint equals plain SSSP
    /// clamped at the radius. Zero dumb weights stay inert
    /// (`∞ + 0 = ∞`, and a within-cap value survives adding zero).
    AddWeightCapped(u32),
}

impl EdgeOp {
    /// Applies the edge function.
    pub fn apply(self, value: u32, weight: Weight) -> u32 {
        match self {
            EdgeOp::AddWeight => value.saturating_add(weight),
            EdgeOp::MinWeight => value.min(weight),
            EdgeOp::Copy => value,
            EdgeOp::AddUnit => value.saturating_add(1),
            EdgeOp::AddWeightCapped(cap) => {
                let cand = value.saturating_add(weight);
                if cand > cap {
                    u32::MAX
                } else {
                    cand
                }
            }
        }
    }

    /// Whether the op admits an inert dumb-weight assignment (Corollary
    /// 2/3): a physically split graph with that assignment computes the
    /// same fixpoint. [`EdgeOp::AddUnit`] charges every edge — split
    /// edges included — so no assignment keeps it exact.
    pub fn split_invariant(self) -> bool {
        !matches!(self, EdgeOp::AddUnit)
    }
}

/// How per-node values are initialized before iteration 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitKind {
    /// Source gets `0`, everyone else the combine identity (`∞`): SSSP,
    /// BFS.
    SourceZero,
    /// Source gets `∞`, everyone else `0`: SSWP.
    SourceMax,
    /// Every node starts with its own id: CC label propagation
    /// (no source).
    OwnId,
}

/// A monotone push-based vertex program: the engine-facing description of
/// one of the paper's analytics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MonotoneProgram {
    /// Short name used in reports ("sssp", "bfs", ...).
    pub name: &'static str,
    /// Candidate computation along an edge.
    pub edge_op: EdgeOp,
    /// Monotone fold at the destination.
    pub combine: Combine,
    /// Initialization scheme.
    pub init: InitKind,
    /// Whether `combine` is associative (and commutative). Theorem 3
    /// licenses pull/gather over split representations — where one
    /// node's fold is partitioned across threads — only for associative
    /// combines applied atomically; plan validation enforces this.
    pub associative: bool,
}

impl MonotoneProgram {
    /// Single-source shortest paths (Figure 2, Algorithm 2).
    pub const SSSP: MonotoneProgram = MonotoneProgram {
        name: "sssp",
        edge_op: EdgeOp::AddWeight,
        combine: Combine::Min,
        init: InitKind::SourceZero,
        associative: true,
    };

    /// Breadth-first search: SSSP over unit weights (§3.3).
    pub const BFS: MonotoneProgram = MonotoneProgram {
        name: "bfs",
        edge_op: EdgeOp::AddWeight,
        combine: Combine::Min,
        init: InitKind::SourceZero,
        associative: true,
    };

    /// Single-source widest path.
    pub const SSWP: MonotoneProgram = MonotoneProgram {
        name: "sswp",
        edge_op: EdgeOp::MinWeight,
        combine: Combine::Max,
        init: InitKind::SourceMax,
        associative: true,
    };

    /// Hop counts regardless of edge weights: every relaxation adds one
    /// ([`EdgeOp::AddUnit`]). The k-hop pipeline masks values above `k`
    /// afterwards; the fixpoint itself is `k`-independent, which is what
    /// lets mixed-`k` queries share a fused batch lane.
    pub const KHOP: MonotoneProgram = MonotoneProgram {
        name: "khop",
        edge_op: EdgeOp::AddUnit,
        combine: Combine::Min,
        init: InitKind::SourceZero,
        associative: true,
    };

    /// Connected components by min-label propagation. On directed inputs
    /// this computes reachability-closed labels; run it on a symmetrized
    /// graph to obtain the weakly connected components of the oracle.
    pub const CC: MonotoneProgram = MonotoneProgram {
        name: "cc",
        edge_op: EdgeOp::Copy,
        combine: Combine::Min,
        init: InitKind::OwnId,
        associative: true,
    };

    /// Whether the program needs a source node.
    pub fn needs_source(&self) -> bool {
        !matches!(self.init, InitKind::OwnId)
    }

    /// Initial values for `n` nodes with optional `source`.
    ///
    /// # Panics
    ///
    /// Panics if the program needs a source and none is given, or the
    /// source is out of range.
    pub fn initial_values(&self, n: usize, source: Option<NodeId>) -> Vec<u32> {
        match self.init {
            InitKind::OwnId => (0..n as u32).collect(),
            InitKind::SourceZero | InitKind::SourceMax => {
                let src = source.expect("program requires a source node");
                assert!(src.index() < n, "source out of range");
                let (src_val, rest) = match self.init {
                    InitKind::SourceZero => (0, u32::MAX),
                    _ => (u32::MAX, 0),
                };
                let mut vals = vec![rest; n];
                vals[src.index()] = src_val;
                vals
            }
        }
    }

    /// Nodes initially active (worklist seed): the source, or every node
    /// for source-free programs.
    pub fn initial_frontier(&self, n: usize, source: Option<NodeId>) -> Vec<u32> {
        if self.needs_source() {
            vec![source.expect("program requires a source node").raw()]
        } else {
            (0..n as u32).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_ops() {
        assert_eq!(EdgeOp::AddWeight.apply(5, 3), 8);
        assert_eq!(EdgeOp::AddWeight.apply(u32::MAX, 3), u32::MAX, "∞ absorbs");
        assert_eq!(EdgeOp::MinWeight.apply(5, 3), 3);
        assert_eq!(EdgeOp::MinWeight.apply(2, 9), 2);
        assert_eq!(EdgeOp::Copy.apply(7, 100), 7);
        assert_eq!(EdgeOp::AddUnit.apply(4, 100), 5, "weight ignored");
        assert_eq!(EdgeOp::AddUnit.apply(u32::MAX, 1), u32::MAX, "∞ absorbs");
        assert_eq!(EdgeOp::AddWeightCapped(10).apply(5, 3), 8);
        assert_eq!(
            EdgeOp::AddWeightCapped(10).apply(5, 6),
            u32::MAX,
            "over cap"
        );
        assert_eq!(EdgeOp::AddWeightCapped(10).apply(10, 0), 10, "at cap");
        assert_eq!(EdgeOp::AddWeightCapped(10).apply(u32::MAX, 0), u32::MAX);
    }

    #[test]
    fn split_invariance_flags() {
        assert!(EdgeOp::AddWeight.split_invariant());
        assert!(EdgeOp::MinWeight.split_invariant());
        assert!(EdgeOp::Copy.split_invariant());
        assert!(EdgeOp::AddWeightCapped(7).split_invariant());
        assert!(!EdgeOp::AddUnit.split_invariant());
    }

    #[test]
    fn sssp_initialization_matches_figure_2() {
        let v = MonotoneProgram::SSSP.initial_values(4, Some(NodeId::new(1)));
        assert_eq!(v, vec![u32::MAX, 0, u32::MAX, u32::MAX]);
    }

    #[test]
    fn sswp_initialization_inverts() {
        let v = MonotoneProgram::SSWP.initial_values(3, Some(NodeId::new(0)));
        assert_eq!(v, vec![u32::MAX, 0, 0]);
    }

    #[test]
    fn cc_initialization_needs_no_source() {
        assert!(!MonotoneProgram::CC.needs_source());
        assert_eq!(MonotoneProgram::CC.initial_values(3, None), vec![0, 1, 2]);
        assert_eq!(MonotoneProgram::CC.initial_frontier(3, None), vec![0, 1, 2]);
    }

    #[test]
    fn source_programs_seed_frontier_with_source() {
        assert_eq!(
            MonotoneProgram::BFS.initial_frontier(10, Some(NodeId::new(7))),
            vec![7]
        );
    }

    #[test]
    #[should_panic(expected = "requires a source")]
    fn missing_source_panics() {
        let _ = MonotoneProgram::SSSP.initial_values(3, None);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn oversized_source_panics() {
        let _ = MonotoneProgram::SSSP.initial_values(3, Some(NodeId::new(9)));
    }
}
