//! Single-source shortest path — the paper's running example (Figure 2,
//! Algorithms 2 and 3, the Table 8 case study).

use tigr_graph::NodeId;
use tigr_sim::GpuSimulator;

use crate::program::MonotoneProgram;
use crate::push::{run_monotone, MonotoneOutput, PushOptions};
use crate::representation::Representation;

/// Runs SSSP from `source` over `rep`.
///
/// Distances are `u32` with `u32::MAX` marking unreachable nodes. For a
/// physically transformed representation, the graph must have been built
/// with [`tigr_core::DumbWeight::Zero`] (Corollary 2).
///
/// # Example
///
/// ```
/// use tigr_engine::{sssp, PushOptions, Representation};
/// use tigr_graph::CsrBuilder;
/// use tigr_sim::{GpuConfig, GpuSimulator};
///
/// let g = CsrBuilder::new(3)
///     .weighted_edge(0, 1, 5)
///     .weighted_edge(1, 2, 7)
///     .build();
/// let sim = GpuSimulator::new(GpuConfig::default());
/// let out = sssp::run(
///     &sim,
///     &Representation::Original(&g),
///     tigr_graph::NodeId::new(0),
///     &PushOptions::default(),
/// );
/// assert_eq!(out.values, vec![0, 5, 12]);
/// ```
pub fn run(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    source: NodeId,
    options: &PushOptions,
) -> MonotoneOutput {
    run_monotone(sim, rep, MonotoneProgram::SSSP, Some(source), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::{circular_transform, star_transform, udt_transform, DumbWeight, VirtualGraph};
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_graph::properties::dijkstra;
    use tigr_sim::GpuConfig;

    fn fixture() -> tigr_graph::Csr {
        let g = rmat(&RmatConfig::graph500(8, 8), 17);
        with_uniform_weights(&g, 1, 64, 3)
    }

    #[test]
    fn every_representation_agrees_with_dijkstra() {
        let g = fixture();
        let src = NodeId::new(0);
        let expect = dijkstra(&g, src);
        let sim = GpuSimulator::new(GpuConfig::default());
        let o = PushOptions::default();

        let orig = run(&sim, &Representation::Original(&g), src, &o);
        assert_eq!(orig.values, expect);

        for t in [
            udt_transform(&g, 4, DumbWeight::Zero),
            star_transform(&g, 4, DumbWeight::Zero),
            circular_transform(&g, 4, DumbWeight::Zero),
        ] {
            let out = run(&sim, &Representation::Physical(&t), src, &o);
            assert_eq!(t.project_values(&out.values), expect, "{}", t.topology());
        }

        for ov in [VirtualGraph::new(&g, 10), VirtualGraph::coalesced(&g, 10)] {
            let out = run(
                &sim,
                &Representation::Virtual {
                    graph: &g,
                    overlay: &ov,
                },
                src,
                &o,
            );
            assert_eq!(out.values, expect, "coalesced={}", ov.is_coalesced());
        }
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let g = tigr_graph::CsrBuilder::new(4)
            .weighted_edge(0, 1, 3)
            .build();
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run(
            &sim,
            &Representation::Original(&g),
            NodeId::new(0),
            &PushOptions::default(),
        );
        assert_eq!(out.values, vec![0, 3, u32::MAX, u32::MAX]);
    }
}
