//! Breadth-first search: SSSP over unit edge weights (§3.3).

use tigr_graph::NodeId;
use tigr_sim::GpuSimulator;

use crate::program::MonotoneProgram;
use crate::push::{run_monotone, MonotoneOutput, PushOptions};
use crate::representation::Representation;

/// Runs BFS from `source` over `rep`, producing hop levels
/// (`u32::MAX` = unreachable).
///
/// On unweighted graphs every edge counts 1 hop. On physically
/// transformed graphs, run on a [`tigr_core::DumbWeight::Zero`]
/// transformation of the unit-weight graph: original edges carry 1,
/// introduced edges 0, so levels are preserved (Corollary 2 via the
/// BFS-as-SSSP reduction).
pub fn run(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    source: NodeId,
    options: &PushOptions,
) -> MonotoneOutput {
    run_monotone(sim, rep, MonotoneProgram::BFS, Some(source), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::{udt_transform, DumbWeight, VirtualGraph};
    use tigr_graph::generators::{rmat, RmatConfig};
    use tigr_graph::properties::bfs_levels;
    use tigr_sim::GpuConfig;

    fn expect_levels(g: &tigr_graph::Csr, src: NodeId) -> Vec<u32> {
        bfs_levels(g, src)
            .into_iter()
            .map(|l| if l == usize::MAX { u32::MAX } else { l as u32 })
            .collect()
    }

    #[test]
    fn levels_match_oracle_on_all_representations() {
        let g = rmat(&RmatConfig::graph500(8, 6), 23);
        let src = NodeId::new(3);
        let expect = expect_levels(&g, src);
        let sim = GpuSimulator::new(GpuConfig::default());
        let o = PushOptions::default();

        let orig = run(&sim, &Representation::Original(&g), src, &o);
        assert_eq!(orig.values, expect);

        // Physical: unit weights + zero dumb weights preserve levels.
        let unit = g.with_weights_from(|_| 1);
        let t = udt_transform(&unit, 4, DumbWeight::Zero);
        let out = run(&sim, &Representation::Physical(&t), src, &o);
        assert_eq!(t.project_values(&out.values), expect);

        let ov = VirtualGraph::coalesced(&g, 10);
        let out = run(
            &sim,
            &Representation::Virtual {
                graph: &g,
                overlay: &ov,
            },
            src,
            &o,
        );
        assert_eq!(out.values, expect);
    }

    #[test]
    fn bfs_iterations_track_eccentricity_with_worklist() {
        // With a worklist the frontier advances exactly one level per
        // iteration.
        let g = tigr_graph::generators::grid_2d(5, 5);
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run(
            &sim,
            &Representation::Original(&g),
            NodeId::new(0),
            &PushOptions::default(),
        );
        let ecc = tigr_graph::stats::eccentricity(&g, NodeId::new(0));
        // One iteration per level plus the final empty-frontier check.
        assert_eq!(out.report.num_iterations(), ecc + 1);
    }
}
