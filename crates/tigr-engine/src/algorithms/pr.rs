//! PageRank (Corollary 4, Theorem 3).
//!
//! PageRank divides each node's rank by its *out-degree*. UDT changes
//! out-degrees, so physical transformations are unsuitable; the virtual
//! transformation keeps the physical out-degrees intact (Corollary 4) and
//! its partial sums commute because addition is associative (Theorem 3).
//! Both the paper's push-based Tigr variant and the CuSha-style pull
//! variant are provided; pull mode is what lets shard/scan frameworks win
//! PR in Table 4.

use tigr_core::CancelToken;
use tigr_graph::{Csr, NodeId};
use tigr_sim::{GpuSimulator, SimReport};

use crate::addr::{aux_addr, row_ptr_addr, value_addr, vnode_addr};
use crate::kernel::{csr_edges, relax_kernel, walk_segments, AccessMirror, EdgeFlow, LaneMirror};
use crate::representation::Representation;
use crate::state::AtomicFloats;

/// Direction of rank propagation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrMode {
    /// Scatter `rank/outdeg` along *out*-edges with one atomic add per
    /// edge — Tigr's scheme (the representation is built over the forward
    /// graph). Simple, but atomic-heavy: the reason Tigr-V+ loses PR to
    /// pull-based CuSha in Table 4.
    #[default]
    Push,
    /// Gather `rank/outdeg` along *in*-edges, one atomic add per virtual
    /// node — the representation must be built over the **transpose**
    /// ([`tigr_graph::reverse::transpose`]).
    Pull,
}

/// PageRank options.
#[derive(Clone, Copy, Debug)]
pub struct PrOptions {
    /// Damping factor `d` (0.85 conventionally).
    pub damping: f32,
    /// Stop when the L1 rank change falls below this threshold.
    pub tolerance: f32,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Propagation direction.
    pub mode: PrMode,
}

impl Default for PrOptions {
    fn default() -> Self {
        PrOptions {
            damping: 0.85,
            tolerance: 1e-6,
            max_iterations: 100,
            mode: PrMode::Push,
        }
    }
}

/// PageRank result.
#[derive(Clone, Debug)]
pub struct PrOutput {
    /// Final ranks, summing to ≈ 1.
    pub ranks: Vec<f32>,
    /// Per-iteration simulator metrics.
    pub report: SimReport,
    /// `false` if `max_iterations` hit before `tolerance`.
    pub converged: bool,
    /// `true` if a [`CancelToken`] fired between power iterations before
    /// `tolerance` was reached.
    pub cancelled: bool,
}

/// Runs PageRank over `rep`.
///
/// `out_degrees` are the **original** per-node out-degrees (push: the
/// degrees of `rep`'s own graph; pull: the degrees of the graph whose
/// transpose `rep` wraps). Dangling nodes redistribute uniformly.
///
/// # Panics
///
/// Panics if `out_degrees.len()` differs from the representation's value
/// slots or the representation is [`Representation::Physical`] (UDT
/// changes the degrees PR depends on — use a virtual representation, as
/// the paper does).
pub fn run(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    out_degrees: &[u32],
    options: &PrOptions,
) -> PrOutput {
    run_cancellable(sim, rep, out_degrees, options, &CancelToken::never())
}

/// [`run`] with a cooperative cancellation hook polled between power
/// iterations: a fired token stops the run with `cancelled = true`,
/// returning the ranks of the last completed iteration.
///
/// # Panics
///
/// See [`run`].
pub fn run_cancellable(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    out_degrees: &[u32],
    options: &PrOptions,
    cancel: &CancelToken,
) -> PrOutput {
    let n = rep.num_value_slots();
    assert_eq!(
        out_degrees.len(),
        n,
        "out-degree array must cover all nodes"
    );
    assert!(
        !matches!(rep, Representation::Physical(_)),
        "PageRank is undefined on physically transformed graphs: UDT alters out-degrees (Corollary 4)"
    );
    if n == 0 {
        return PrOutput {
            ranks: Vec::new(),
            report: SimReport::new(),
            converged: true,
            cancelled: false,
        };
    }

    let ranks = AtomicFloats::new(n, 1.0 / n as f32);
    let accum = AtomicFloats::new(n, 0.0);
    let mut report = SimReport::new();
    let mut converged = false;
    let mut cancelled = false;

    for _ in 0..options.max_iterations {
        if cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        accum.fill(0.0);
        let threads = rep.full_threads();

        // Scatter/gather kernel.
        let mut metrics = match options.mode {
            PrMode::Push => push_kernel(sim, rep, &ranks, &accum, out_degrees),
            PrMode::Pull => pull_kernel(sim, rep, &ranks, &accum, out_degrees),
        };

        // Dangling mass (host reduction mirrored as a small kernel).
        let mut dangling = 0.0f64;
        for (v, &deg) in out_degrees.iter().enumerate() {
            if deg == 0 {
                dangling += ranks.load(v) as f64;
            }
        }
        let base =
            (1.0 - options.damping) / n as f32 + options.damping * (dangling as f32) / n as f32;

        // Finalize kernel: rank = base + d * accum, tracking the L1 delta.
        let delta = AtomicFloats::new(1, 0.0);
        let finalize = sim.launch(n, |v, lane| {
            lane.load(aux_addr(0, v), 4);
            lane.load(value_addr(v), 4);
            let new = base + options.damping * accum.load(v);
            let old = ranks.load(v);
            ranks.store(v, new);
            delta.fetch_add(0, (new - old).abs());
            lane.compute(3);
            lane.store(value_addr(v), 4);
        });
        metrics.merge(&finalize);
        report.push(threads, metrics);

        if delta.load(0) < options.tolerance {
            converged = true;
            break;
        }
    }

    PrOutput {
        ranks: ranks.snapshot(),
        report,
        converged,
        cancelled,
    }
}

/// Push scatter: one atomic add per out-edge.
fn push_kernel(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    ranks: &AtomicFloats,
    accum: &AtomicFloats,
    out_degrees: &[u32],
) -> tigr_sim::KernelMetrics {
    let g = rep.graph();
    let scatter =
        |lane: &mut tigr_sim::Lane, slot: usize, edges: &mut dyn Iterator<Item = usize>| {
            lane.load(value_addr(slot), 4);
            lane.load(aux_addr(1, slot), 4);
            let deg = out_degrees[slot];
            if deg == 0 {
                return;
            }
            let share = ranks.load(slot) / deg as f32;
            lane.compute(1);
            relax_kernel(&mut LaneMirror(lane), csr_edges(g, edges), |m, edge| {
                accum.fetch_add(edge.target, share);
                m.atomic(aux_addr(0, edge.target), 4);
                EdgeFlow::Continue
            });
        };
    launch_over(sim, rep, &scatter)
}

/// Pull gather: partial sum per (virtual) node, one atomic add per node.
fn pull_kernel(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    ranks: &AtomicFloats,
    accum: &AtomicFloats,
    out_degrees: &[u32],
) -> tigr_sim::KernelMetrics {
    let g = rep.graph(); // the transpose: edges lead to in-neighbors
    let gather =
        |lane: &mut tigr_sim::Lane, slot: usize, edges: &mut dyn Iterator<Item = usize>| {
            let mut partial = 0.0f32;
            let mut any = false;
            relax_kernel(&mut LaneMirror(lane), csr_edges(g, edges), |m, edge| {
                let src = edge.target;
                m.load(value_addr(src), 4);
                m.load(aux_addr(1, src), 4);
                let deg = out_degrees[src].max(1);
                partial += ranks.load(src) / deg as f32;
                m.compute(2);
                any = true;
                EdgeFlow::Continue
            });
            if any {
                accum.fetch_add(slot, partial);
                lane.atomic(aux_addr(0, slot), 4);
            }
        };
    launch_over(sim, rep, &gather)
}

/// Dispatches a per-node/virtual-node kernel over the representation.
fn launch_over(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    body: &(dyn Fn(&mut tigr_sim::Lane, usize, &mut dyn Iterator<Item = usize>) + Sync),
) -> tigr_sim::KernelMetrics {
    match rep {
        Representation::Original(g) => sim.launch(g.num_nodes(), |tid, lane| {
            lane.load(row_ptr_addr(tid), 8);
            let v = NodeId::from_index(tid);
            body(lane, tid, &mut (g.edge_start(v)..g.edge_end(v)));
        }),
        Representation::Virtual { overlay, .. } => {
            sim.launch(overlay.num_virtual_nodes(), |tid, lane| {
                lane.load(vnode_addr(tid), 8);
                let vn = overlay.vnode(tid);
                body(
                    lane,
                    vn.physical.index(),
                    &mut tigr_core::EdgeCursor::new(&vn),
                );
            })
        }
        Representation::OnTheFly { graph, mapper } => {
            sim.launch(mapper.num_threads(), |tid, lane| {
                let ((lo, hi), first, probes) = mapper.resolve(graph, tid);
                lane.compute(probes as u64 * 2);
                walk_segments(
                    &mut LaneMirror(lane),
                    graph,
                    (lo, hi),
                    first,
                    |m, src, seg| body(m.0, src, &mut seg.into_iter()),
                );
            })
        }
        Representation::Physical(_) => unreachable!("rejected by run()"),
    }
}

/// Per-node out-degrees of `g` as `u32` — the helper callers pass to
/// [`run`].
pub fn out_degrees(g: &Csr) -> Vec<u32> {
    g.nodes().map(|v| g.out_degree(v) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::VirtualGraph;
    use tigr_graph::generators::{rmat, RmatConfig};
    use tigr_graph::properties::pagerank;
    use tigr_graph::reverse::transpose;
    use tigr_sim::GpuConfig;

    fn fixture() -> Csr {
        rmat(&RmatConfig::graph500(7, 6), 41)
    }

    fn assert_close(got: &[f32], expect: &[f64], tol: f64) {
        assert_eq!(got.len(), expect.len());
        for (i, (&g, &e)) in got.iter().zip(expect).enumerate() {
            assert!(
                (g as f64 - e).abs() < tol,
                "rank[{i}]: got {g}, expected {e}"
            );
        }
    }

    fn opts(mode: PrMode) -> PrOptions {
        PrOptions {
            damping: 0.85,
            tolerance: 1e-7,
            max_iterations: 60,
            mode,
        }
    }

    #[test]
    fn push_pr_matches_power_iteration() {
        let g = fixture();
        let expect = pagerank(&g, 0.85, 60);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(
            &sim,
            &Representation::Original(&g),
            &out_degrees(&g),
            &opts(PrMode::Push),
        );
        assert!(out.converged);
        assert_close(&out.ranks, &expect, 1e-4);
        let total: f32 = out.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "ranks sum to {total}");
    }

    #[test]
    fn pull_pr_on_transpose_matches() {
        let g = fixture();
        let expect = pagerank(&g, 0.85, 60);
        let rev = transpose(&g);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(
            &sim,
            &Representation::Original(&rev),
            &out_degrees(&g),
            &opts(PrMode::Pull),
        );
        assert_close(&out.ranks, &expect, 1e-4);
    }

    #[test]
    fn virtual_push_pr_matches() {
        let g = fixture();
        let expect = pagerank(&g, 0.85, 60);
        let ov = VirtualGraph::coalesced(&g, 10);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(
            &sim,
            &Representation::Virtual {
                graph: &g,
                overlay: &ov,
            },
            &out_degrees(&g),
            &opts(PrMode::Push),
        );
        assert_close(&out.ranks, &expect, 1e-4);
    }

    #[test]
    fn virtual_pull_pr_matches_theorem_3() {
        // Pull over the transpose with a virtual overlay: the associative
        // nested-sum case of Theorem 3.
        let g = fixture();
        let expect = pagerank(&g, 0.85, 60);
        let rev = transpose(&g);
        let ov = VirtualGraph::new(&rev, 4);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(
            &sim,
            &Representation::Virtual {
                graph: &rev,
                overlay: &ov,
            },
            &out_degrees(&g),
            &opts(PrMode::Pull),
        );
        assert_close(&out.ranks, &expect, 1e-4);
    }

    #[test]
    fn pull_uses_fewer_atomics_than_push() {
        let g = fixture();
        let rev = transpose(&g);
        let sim = GpuSimulator::new(GpuConfig::default());
        let push = run(
            &sim,
            &Representation::Original(&g),
            &out_degrees(&g),
            &PrOptions {
                max_iterations: 5,
                tolerance: 0.0,
                ..opts(PrMode::Push)
            },
        );
        let pull = run(
            &sim,
            &Representation::Original(&rev),
            &out_degrees(&g),
            &PrOptions {
                max_iterations: 5,
                tolerance: 0.0,
                ..opts(PrMode::Pull)
            },
        );
        assert!(
            pull.report.total().atomic_ops < push.report.total().atomic_ops / 2,
            "pull {} vs push {}",
            pull.report.total().atomic_ops,
            push.report.total().atomic_ops
        );
    }

    #[test]
    #[should_panic(expected = "PageRank is undefined on physically transformed graphs")]
    fn physical_representation_rejected() {
        let g = fixture();
        let t = tigr_core::udt_transform(&g, 4, tigr_core::DumbWeight::Unweighted);
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let degs = vec![0u32; t.graph().num_nodes()];
        let _ = run(
            &sim,
            &Representation::Physical(&t),
            &degs,
            &PrOptions::default(),
        );
    }

    #[test]
    fn empty_graph() {
        let g = tigr_graph::CsrBuilder::new(0).build();
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run(
            &sim,
            &Representation::Original(&g),
            &[],
            &PrOptions::default(),
        );
        assert!(out.ranks.is_empty());
        assert!(out.converged);
    }
}
