//! Betweenness centrality (single-source Brandes, level-synchronous).
//!
//! BC depends only on shortest-path structure, which UDT with zero dumb
//! weights and the virtual transformation both preserve (Corollary 2).
//! The GPU formulation follows the standard two-phase scheme the paper's
//! comparisons (Gunrock, McLaughlin & Bader) use: a forward
//! level-synchronous BFS accumulating path counts σ, then a backward
//! dependency sweep accumulating δ per level.

use crossbeam::queue::SegQueue;

use tigr_graph::NodeId;
use tigr_sim::{GpuSimulator, KernelMetrics, SimReport};

use crate::addr::{aux_addr, frontier_addr, row_ptr_addr, value_addr, vnode_addr};
use crate::kernel::{csr_edges, relax_kernel, AccessMirror, EdgeFlow, LaneMirror};
use crate::representation::Representation;
use crate::state::{AtomicFloats, AtomicValues, Combine};

/// Betweenness-centrality result for one source.
#[derive(Clone, Debug)]
pub struct BcOutput {
    /// Dependency scores δ_source(v): the contribution of this source to
    /// each node's betweenness centrality.
    pub centrality: Vec<f32>,
    /// BFS levels from the source (`u32::MAX` = unreachable).
    pub levels: Vec<u32>,
    /// Shortest-path counts σ from the source.
    pub sigma: Vec<f32>,
    /// Per-kernel simulator metrics (forward + backward phases).
    pub report: SimReport,
}

/// Runs single-source BC from `source` over `rep`.
///
/// For a physical representation, build it with
/// [`tigr_core::DumbWeight::Zero`] **over a unit-weight graph** and read
/// only the original nodes' scores; levels of split nodes are
/// intermediate. Virtual representations need no care (Theorem 2).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn run(sim: &GpuSimulator, rep: &Representation<'_>, source: NodeId) -> BcOutput {
    let n = rep.num_value_slots();
    assert!(source.index() < n, "source out of range");
    let g = rep.graph();

    let levels = AtomicValues::new(n, u32::MAX);
    let sigma = AtomicFloats::new(n, 0.0);
    levels.store(source.index(), 0);
    sigma.store(source.index(), 1.0);

    let mut report = SimReport::new();

    // ---- Forward phase: level-synchronous BFS with σ accumulation. ----
    let mut frontier: Vec<u32> = vec![source.raw()];
    let mut level_buckets: Vec<Vec<u32>> = vec![frontier.clone()];
    let mut level = 0u32;
    while !frontier.is_empty() {
        let next = SegQueue::new();
        let kernel = |lane: &mut tigr_sim::Lane,
                      slot: usize,
                      edges: &mut dyn Iterator<Item = usize>| {
            lane.load(aux_addr(2, slot), 4); // sigma[v]
            let sig_v = sigma.load(slot);
            relax_kernel(&mut LaneMirror(lane), csr_edges(g, edges), |m, edge| {
                let nbr = edge.target;
                m.load(value_addr(nbr), 4); // level[nbr]
                                            // Unvisited? claim it for level+1 (atomic CAS).
                if levels.load(nbr) == u32::MAX && levels.try_improve(nbr, level + 1, Combine::Min)
                {
                    m.atomic(value_addr(nbr), 4);
                    next.push(nbr as u32);
                }
                if levels.load(nbr) == level + 1 {
                    sigma.fetch_add(nbr, sig_v);
                    m.atomic(aux_addr(2, nbr), 4);
                }
                m.compute(2);
                EdgeFlow::Continue
            });
        };
        let metrics = launch_frontier(sim, rep, &frontier, &kernel);
        report.push(frontier.len(), metrics);

        let mut nf: Vec<u32> = std::iter::from_fn(|| next.pop()).collect();
        nf.sort_unstable();
        nf.dedup();
        frontier = nf;
        if !frontier.is_empty() {
            level_buckets.push(frontier.clone());
        }
        level += 1;
    }

    // ---- Backward phase: dependency accumulation per level. ----
    let delta = AtomicFloats::new(n, 0.0);
    for l in (0..level_buckets.len().saturating_sub(1)).rev() {
        let bucket = &level_buckets[l];
        let target_level = (l + 1) as u32;
        let kernel =
            |lane: &mut tigr_sim::Lane, slot: usize, edges: &mut dyn Iterator<Item = usize>| {
                lane.load(aux_addr(2, slot), 4); // sigma[v]
                let sig_v = sigma.load(slot);
                let mut partial = 0.0f32;
                relax_kernel(&mut LaneMirror(lane), csr_edges(g, edges), |m, edge| {
                    let nbr = edge.target;
                    m.load(value_addr(nbr), 4); // level[nbr]
                    if levels.load(nbr) == target_level {
                        m.load(aux_addr(2, nbr), 4); // sigma[nbr]
                        m.load(aux_addr(3, nbr), 4); // delta[nbr]
                        let sig_w = sigma.load(nbr);
                        if sig_w > 0.0 {
                            partial += sig_v / sig_w * (1.0 + delta.load(nbr));
                        }
                        m.compute(4);
                    } else {
                        m.compute(1);
                    }
                    EdgeFlow::Continue
                });
                if partial != 0.0 {
                    delta.fetch_add(slot, partial);
                    lane.atomic(aux_addr(3, slot), 4);
                }
            };
        let metrics = launch_frontier(sim, rep, bucket, &kernel);
        report.push(bucket.len(), metrics);
    }

    let mut centrality = delta.snapshot();
    centrality[source.index()] = 0.0;

    BcOutput {
        centrality,
        levels: levels.snapshot(),
        sigma: sigma.snapshot(),
        report,
    }
}

/// Approximate betweenness centrality by accumulating the single-source
/// dependencies of `sources` (Brandes sampling): the standard way GPU
/// frameworks amortize BC over large graphs.
///
/// Returns the accumulated scores and the merged per-kernel report.
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn run_sampled(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    sources: &[NodeId],
) -> (Vec<f64>, SimReport) {
    let n = rep.num_value_slots();
    let mut total = vec![0.0f64; n];
    let mut report = SimReport::new();
    for &s in sources {
        let out = run(sim, rep, s);
        for (acc, &d) in total.iter_mut().zip(&out.centrality) {
            *acc += d as f64;
        }
        for it in out.report.iterations {
            report.push(it.threads, it.metrics);
        }
    }
    (total, report)
}

/// Launches `body` over the frontier's work units, expanding physical
/// nodes into virtual families for virtual representations.
fn launch_frontier(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    frontier: &[u32],
    body: &(dyn Fn(&mut tigr_sim::Lane, usize, &mut dyn Iterator<Item = usize>) + Sync),
) -> KernelMetrics {
    match rep {
        Representation::Original(g) | Representation::OnTheFly { graph: g, .. } => {
            // OTF blocks have no per-node identity to schedule from a
            // frontier; BC always needs per-node scheduling, so dynamic
            // mapping degrades to per-node here.
            sim.launch(frontier.len(), |tid, lane| {
                lane.load(frontier_addr(tid), 4);
                let v = NodeId::new(frontier[tid]);
                lane.load(row_ptr_addr(v.index()), 8);
                body(lane, v.index(), &mut (g.edge_start(v)..g.edge_end(v)));
            })
        }
        Representation::Physical(t) => {
            let g = t.graph();
            sim.launch(frontier.len(), |tid, lane| {
                lane.load(frontier_addr(tid), 4);
                let v = NodeId::new(frontier[tid]);
                lane.load(row_ptr_addr(v.index()), 8);
                body(lane, v.index(), &mut (g.edge_start(v)..g.edge_end(v)));
            })
        }
        Representation::Virtual { overlay, .. } => {
            let mut active: Vec<u32> = Vec::with_capacity(frontier.len());
            for &p in frontier {
                for i in overlay.vnode_range(NodeId::new(p)) {
                    active.push(i as u32);
                }
            }
            sim.launch(active.len(), |tid, lane| {
                let vid = active[tid] as usize;
                lane.load(frontier_addr(tid), 4);
                lane.load(vnode_addr(vid), 8);
                let vn = overlay.vnode(vid);
                body(
                    lane,
                    vn.physical.index(),
                    &mut tigr_core::EdgeCursor::new(&vn),
                );
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::VirtualGraph;
    use tigr_graph::generators::{barabasi_albert, BarabasiAlbertConfig};
    use tigr_graph::properties::brandes_accumulate;
    use tigr_graph::CsrBuilder;
    use tigr_sim::GpuConfig;

    fn oracle(g: &tigr_graph::Csr, s: NodeId) -> Vec<f64> {
        let mut bc = vec![0.0; g.num_nodes()];
        brandes_accumulate(g, s, &mut bc);
        bc
    }

    fn assert_close(got: &[f32], expect: &[f64]) {
        for (i, (&g, &e)) in got.iter().zip(expect).enumerate() {
            assert!(
                (g as f64 - e).abs() < 1e-3 * (1.0 + e.abs()),
                "delta[{i}]: got {g}, expected {e}"
            );
        }
    }

    #[test]
    fn path_graph_dependencies() {
        // 0 <-> 1 <-> 2 <-> 3: from source 0, delta(1)=2, delta(2)=1.
        let mut b = CsrBuilder::new(4);
        b.symmetric(true);
        b.edge(0, 1).edge(1, 2).edge(2, 3);
        let g = b.build();
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run(&sim, &Representation::Original(&g), NodeId::new(0));
        assert_close(&out.centrality, &oracle(&g, NodeId::new(0)));
        assert_eq!(out.levels, vec![0, 1, 2, 3]);
        assert_eq!(out.sigma, vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn diamond_splits_sigma() {
        // 0->1, 0->2, 1->3, 2->3: two shortest paths to 3.
        let g = CsrBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build();
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run(&sim, &Representation::Original(&g), NodeId::new(0));
        assert_eq!(out.sigma, vec![1.0, 1.0, 1.0, 2.0]);
        assert_close(&out.centrality, &oracle(&g, NodeId::new(0)));
    }

    #[test]
    fn matches_brandes_on_power_law_graph() {
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 150,
                edges_per_node: 2,
                symmetric: true,
            },
            51,
        );
        let sim = GpuSimulator::new(GpuConfig::default());
        let src = NodeId::new(0);
        let expect = oracle(&g, src);
        let out = run(&sim, &Representation::Original(&g), src);
        assert_close(&out.centrality, &expect);
    }

    #[test]
    fn virtual_representation_matches_original() {
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 150,
                edges_per_node: 2,
                symmetric: true,
            },
            52,
        );
        let sim = GpuSimulator::new(GpuConfig::default());
        let src = NodeId::new(3);
        let expect = oracle(&g, src);
        for ov in [VirtualGraph::new(&g, 4), VirtualGraph::coalesced(&g, 4)] {
            let out = run(
                &sim,
                &Representation::Virtual {
                    graph: &g,
                    overlay: &ov,
                },
                src,
            );
            assert_close(&out.centrality, &expect);
        }
    }

    #[test]
    fn sampled_bc_over_all_sources_equals_exact_brandes() {
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 60,
                edges_per_node: 2,
                symmetric: true,
            },
            53,
        );
        let sim = GpuSimulator::new(GpuConfig::default());
        let sources: Vec<NodeId> = g.nodes().collect();
        let (got, report) = run_sampled(&sim, &Representation::Original(&g), &sources);
        let expect = tigr_graph::properties::betweenness_centrality(&g);
        for (i, (&a, &b)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (a - b).abs() < 1e-2 * (1.0 + b.abs()),
                "bc[{i}]: {a} vs {b}"
            );
        }
        assert!(report.num_iterations() > sources.len());
    }

    #[test]
    fn unreachable_nodes_have_zero_centrality() {
        let g = CsrBuilder::new(3).edge(0, 1).build();
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run(&sim, &Representation::Original(&g), NodeId::new(0));
        assert_eq!(out.levels[2], u32::MAX);
        assert_eq!(out.centrality[2], 0.0);
        assert_eq!(out.sigma[2], 0.0);
    }
}
