//! The six graph analytics of the paper's evaluation (§6.1): BFS, CC,
//! SSSP, SSWP, BC, and PR.
//!
//! The four monotone analytics are thin wrappers over
//! [`crate::push::run_monotone`]; PageRank and betweenness centrality
//! have dedicated multi-kernel drivers.

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod dobfs;
pub mod pr;
pub mod sssp;
pub mod sswp;

/// Identifier of one of the paper's six analytics, used by the benchmark
/// harness to iterate Table 4's rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Analytic {
    /// Breadth-first search.
    Bfs,
    /// Connected components.
    Cc,
    /// Single-source shortest path.
    Sssp,
    /// Single-source widest path.
    Sswp,
    /// Betweenness centrality (single source, Brandes).
    Bc,
    /// PageRank.
    Pr,
}

impl Analytic {
    /// All six, in the paper's Table 4 order.
    pub const ALL: [Analytic; 6] = [
        Analytic::Bfs,
        Analytic::Sssp,
        Analytic::Pr,
        Analytic::Cc,
        Analytic::Sswp,
        Analytic::Bc,
    ];

    /// Lowercase name as used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            Analytic::Bfs => "bfs",
            Analytic::Cc => "cc",
            Analytic::Sssp => "sssp",
            Analytic::Sswp => "sswp",
            Analytic::Bc => "bc",
            Analytic::Pr => "pr",
        }
    }

    /// Whether the analytic needs edge weights.
    pub fn weighted(self) -> bool {
        matches!(self, Analytic::Sssp | Analytic::Sswp)
    }

    /// Whether the analytic takes a source node.
    pub fn needs_source(self) -> bool {
        !matches!(self, Analytic::Cc | Analytic::Pr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_analytics() {
        assert_eq!(Analytic::ALL.len(), 6);
        let names: Vec<_> = Analytic::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["bfs", "sssp", "pr", "cc", "sswp", "bc"]);
    }

    #[test]
    fn weight_and_source_requirements() {
        assert!(Analytic::Sssp.weighted());
        assert!(Analytic::Sswp.weighted());
        assert!(!Analytic::Bfs.weighted());
        assert!(!Analytic::Pr.needs_source());
        assert!(!Analytic::Cc.needs_source());
        assert!(Analytic::Bc.needs_source());
    }
}
