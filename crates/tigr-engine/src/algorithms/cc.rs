//! Connected components by min-label propagation (Corollary 1).

use tigr_sim::GpuSimulator;

use crate::program::MonotoneProgram;
use crate::push::{run_monotone, MonotoneOutput, PushOptions};
use crate::representation::Representation;

/// Runs connected components over `rep`.
///
/// Every node starts with its own id and repeatedly adopts the minimum
/// label pushed along edges. On a *symmetric* graph the fixpoint labels
/// each node with the smallest id in its weakly connected component —
/// identical to [`tigr_graph::properties::connected_components`]. On a
/// directed graph labels flow only along edge direction; symmetrize the
/// input first for weak components (the paper's social graphs are
/// symmetric).
///
/// Split transformations preserve the result (Corollary 1); dumb weights
/// are irrelevant because labels ignore weights, so physical
/// representations may be built with [`tigr_core::DumbWeight::Unweighted`].
pub fn run(sim: &GpuSimulator, rep: &Representation<'_>, options: &PushOptions) -> MonotoneOutput {
    run_monotone(sim, rep, MonotoneProgram::CC, None, options)
}

/// Number of distinct labels in a CC result restricted to the first
/// `original_nodes` slots — the component count.
pub fn count_components(values: &[u32], original_nodes: usize) -> usize {
    let mut labels: Vec<u32> = values[..original_nodes].to_vec();
    labels.sort_unstable();
    labels.dedup();
    labels.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::{udt_transform, DumbWeight, VirtualGraph};
    use tigr_graph::generators::{barabasi_albert, BarabasiAlbertConfig};
    use tigr_graph::properties::{connected_components, num_components};
    use tigr_graph::CsrBuilder;
    use tigr_sim::GpuConfig;

    fn two_islands() -> tigr_graph::Csr {
        let mut b = CsrBuilder::new(8);
        b.symmetric(true);
        b.edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(4, 5)
            .edge(5, 6)
            .edge(6, 7);
        b.build()
    }

    #[test]
    fn labels_match_union_find_oracle() {
        let g = two_islands();
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run(&sim, &Representation::Original(&g), &PushOptions::default());
        assert_eq!(out.values, connected_components(&g));
        assert_eq!(count_components(&out.values, 8), 2);
    }

    #[test]
    fn component_count_preserved_across_representations() {
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 200,
                edges_per_node: 2,
                symmetric: true,
            },
            31,
        );
        let expect = num_components(&g);
        let sim = GpuSimulator::new(GpuConfig::default());
        let o = PushOptions::default();

        let t = udt_transform(&g, 3, DumbWeight::Unweighted);
        let phys = run(&sim, &Representation::Physical(&t), &o);
        assert_eq!(count_components(&phys.values, t.original_nodes()), expect);
        // Labels on original nodes match exactly, not just by count.
        assert_eq!(t.project_values(&phys.values), connected_components(&g));

        let ov = VirtualGraph::new(&g, 4);
        let virt = run(
            &sim,
            &Representation::Virtual {
                graph: &g,
                overlay: &ov,
            },
            &o,
        );
        assert_eq!(virt.values, connected_components(&g));
    }
}
