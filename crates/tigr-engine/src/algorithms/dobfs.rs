//! Direction-optimizing BFS (Beamer et al., SC 2012) — the push/pull
//! hybrid the paper's related work (§7.1) discusses as the complementary
//! axis to data transformation.
//!
//! Top-down steps expand the frontier along out-edges; once the frontier
//! covers a large fraction of the remaining edges, the traversal flips
//! bottom-up: every unvisited node scans its *in*-edges for a visited
//! parent and stops at the first hit. On low-diameter power-law graphs
//! the middle levels touch most of the graph, where bottom-up's
//! early-exit saves a large constant factor — orthogonal to, and
//! composable with, Tigr's virtual splitting (both directions accept a
//! virtual overlay).
//!
//! This module is a thin facade: the switch itself lives in the plan
//! layer ([`crate::plan::Direction::Auto`]) and the driver is the
//! generic [`crate::backend`] auto loop, so BFS is just the monotone
//! BFS program run under an auto-direction plan with a caller-supplied
//! transpose.

use tigr_core::VirtualGraph;
use tigr_graph::{Csr, NodeId};
use tigr_sim::{GpuSimulator, SimReport};

use crate::backend::{run_monotone_auto, PullSide};
use crate::frontier::FrontierMode;
use crate::plan::{self, AutoOptions, ExecutionPlan};
use crate::program::MonotoneProgram;
use crate::push::PushOptions;

/// Which direction a BFS level ran in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Classic frontier push along out-edges.
    TopDown,
    /// Unvisited nodes pull along in-edges with early exit.
    BottomUp,
}

/// Tuning knobs of the direction switch (Beamer's α/β heuristic).
#[derive(Clone, Copy, Debug)]
pub struct DoBfsOptions {
    /// Switch to bottom-up when `frontier_out_edges × alpha` exceeds the
    /// out-edges of all unvisited nodes.
    pub alpha: f64,
    /// Switch back to top-down when the frontier shrinks below
    /// `nodes / beta`.
    pub beta: f64,
}

impl Default for DoBfsOptions {
    fn default() -> Self {
        let auto = AutoOptions::default();
        DoBfsOptions {
            alpha: auto.alpha,
            beta: auto.beta,
        }
    }
}

/// Result of a direction-optimizing BFS.
#[derive(Clone, Debug)]
pub struct DoBfsOutput {
    /// BFS levels (`u32::MAX` = unreachable).
    pub levels: Vec<u32>,
    /// Per-level simulator metrics.
    pub report: SimReport,
    /// Direction each level ran in.
    pub directions: Vec<Direction>,
}

/// Runs direction-optimizing BFS from `source`.
///
/// `graph` is the forward CSR, `reverse` its transpose
/// ([`tigr_graph::reverse::transpose`]); `overlays`, when given, are
/// virtual overlays of the two — Tigr and direction switching compose.
/// Weights, if present, are ignored (BFS counts hops).
///
/// # Panics
///
/// Panics if the graphs are not mutual transposes (checked by node/edge
/// counts) or `source` is out of range.
pub fn run(
    sim: &GpuSimulator,
    graph: &Csr,
    reverse: &Csr,
    overlays: Option<(&VirtualGraph, &VirtualGraph)>,
    source: NodeId,
    options: &DoBfsOptions,
) -> DoBfsOutput {
    assert_eq!(graph.num_nodes(), reverse.num_nodes(), "transpose mismatch");
    assert_eq!(graph.num_edges(), reverse.num_edges(), "transpose mismatch");
    assert!(source.index() < graph.num_nodes(), "source out of range");

    // BFS counts hops, and the pull side's per-slot early exit is only
    // exact on unweighted graphs — strip weights up front (edge order,
    // and therefore any overlay's edge indices, is preserved).
    let stripped_fwd;
    let stripped_rev;
    let (graph, reverse) = if graph.weights().is_some() || reverse.weights().is_some() {
        stripped_fwd = graph.without_weights();
        stripped_rev = reverse.without_weights();
        (&stripped_fwd, &stripped_rev)
    } else {
        (graph, reverse)
    };

    let rep = match overlays {
        None => crate::representation::Representation::Original(graph),
        Some((fwd, _)) => crate::representation::Representation::Virtual {
            graph,
            overlay: fwd,
        },
    };
    let pull_side = PullSide {
        reverse,
        overlay: overlays.map(|o| o.1),
    };
    let exec = ExecutionPlan {
        direction: plan::Direction::Auto,
        auto: AutoOptions {
            alpha: options.alpha,
            beta: options.beta,
        },
        push: PushOptions {
            worklist: true,
            frontier: FrontierMode::Sparse,
            ..PushOptions::default()
        },
        ..ExecutionPlan::default()
    };

    let out = run_monotone_auto(
        sim,
        &rep,
        Some(pull_side),
        MonotoneProgram::BFS,
        Some(source),
        &exec,
    );
    DoBfsOutput {
        levels: out.values,
        report: out.report,
        directions: out
            .directions
            .iter()
            .map(|d| match d {
                plan::Direction::Pull => Direction::BottomUp,
                _ => Direction::TopDown,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{grid_2d, rmat, RmatConfig};
    use tigr_graph::properties::bfs_levels;
    use tigr_graph::reverse::transpose;
    use tigr_sim::GpuConfig;

    fn expect_levels(g: &Csr, src: NodeId) -> Vec<u32> {
        bfs_levels(g, src)
            .into_iter()
            .map(|l| if l == usize::MAX { u32::MAX } else { l as u32 })
            .collect()
    }

    #[test]
    fn levels_match_oracle_on_power_law_graph() {
        let g = rmat(&RmatConfig::graph500(10, 16), 77);
        let rev = transpose(&g);
        let src = NodeId::new(0);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(&sim, &g, &rev, None, src, &DoBfsOptions::default());
        assert_eq!(out.levels, expect_levels(&g, src));
        assert_eq!(out.directions.len(), out.report.num_iterations());
    }

    #[test]
    fn engages_bottom_up_on_dense_low_diameter_graphs() {
        let g = rmat(&RmatConfig::graph500(10, 16), 78);
        let rev = transpose(&g);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(
            &sim,
            &g,
            &rev,
            None,
            NodeId::new(0),
            &DoBfsOptions::default(),
        );
        assert!(
            out.directions.contains(&Direction::BottomUp),
            "dense RMAT should trigger the switch: {:?}",
            out.directions
        );
    }

    #[test]
    fn stays_top_down_on_high_diameter_grids() {
        // Large enough that frontier edges never dominate the remainder.
        let g = grid_2d(60, 60);
        let rev = transpose(&g);
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run(
            &sim,
            &g,
            &rev,
            None,
            NodeId::new(0),
            &DoBfsOptions::default(),
        );
        assert!(out.directions.iter().all(|&d| d == Direction::TopDown));
        assert_eq!(out.levels, expect_levels(&g, NodeId::new(0)));
    }

    #[test]
    fn composes_with_virtual_overlays() {
        let g = rmat(&RmatConfig::graph500(9, 12), 79);
        let rev = transpose(&g);
        let ov_fwd = VirtualGraph::coalesced(&g, 10);
        let ov_rev = VirtualGraph::coalesced(&rev, 10);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(
            &sim,
            &g,
            &rev,
            Some((&ov_fwd, &ov_rev)),
            NodeId::new(0),
            &DoBfsOptions::default(),
        );
        assert_eq!(out.levels, expect_levels(&g, NodeId::new(0)));
    }

    #[test]
    fn bottom_up_saves_instructions_on_dense_graphs() {
        let g = rmat(&RmatConfig::graph500(10, 16), 80);
        let rev = transpose(&g);
        let sim = GpuSimulator::new(GpuConfig::default());
        let hybrid = run(
            &sim,
            &g,
            &rev,
            None,
            NodeId::new(0),
            &DoBfsOptions::default(),
        );
        // Force pure top-down with an unreachable switch threshold.
        let pure = run(
            &sim,
            &g,
            &rev,
            None,
            NodeId::new(0),
            &DoBfsOptions {
                alpha: 0.0, // the switch condition can never fire
                beta: 24.0,
            },
        );
        assert_eq!(hybrid.levels, pure.levels);
        assert!(
            hybrid.report.total().instructions < pure.report.total().instructions,
            "hybrid {} vs pure {}",
            hybrid.report.total().instructions,
            pure.report.total().instructions
        );
    }

    #[test]
    #[should_panic(expected = "transpose mismatch")]
    fn mismatched_transpose_rejected() {
        let g = grid_2d(3, 3);
        let other = grid_2d(4, 4);
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let _ = run(
            &sim,
            &g,
            &other,
            None,
            NodeId::new(0),
            &DoBfsOptions::default(),
        );
    }
}
