//! Direction-optimizing BFS (Beamer et al., SC 2012) — the push/pull
//! hybrid the paper's related work (§7.1) discusses as the complementary
//! axis to data transformation.
//!
//! Top-down steps expand the frontier along out-edges; once the frontier
//! covers a large fraction of the remaining edges, the traversal flips
//! bottom-up: every unvisited node scans its *in*-edges for a visited
//! parent and stops at the first hit. On low-diameter power-law graphs
//! the middle levels touch most of the graph, where bottom-up's
//! early-exit saves a large constant factor — orthogonal to, and
//! composable with, Tigr's virtual splitting (both directions accept a
//! virtual overlay).

use std::sync::atomic::{AtomicU64, Ordering};

use tigr_core::VirtualGraph;
use tigr_graph::{Csr, NodeId};
use tigr_sim::{GpuSimulator, SimReport};

use crate::addr::{
    edge_addr, frontier_addr, frontier_bit_addr, row_ptr_addr, value_addr, vnode_addr,
};
use crate::frontier::{FrontierBuilder, FrontierMode};
use crate::state::{AtomicValues, Combine};

/// Which direction a BFS level ran in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Classic frontier push along out-edges.
    TopDown,
    /// Unvisited nodes pull along in-edges with early exit.
    BottomUp,
}

/// Tuning knobs of the direction switch (Beamer's α/β heuristic).
#[derive(Clone, Copy, Debug)]
pub struct DoBfsOptions {
    /// Switch to bottom-up when `frontier_out_edges × alpha` exceeds the
    /// out-edges of all unvisited nodes.
    pub alpha: f64,
    /// Switch back to top-down when the frontier shrinks below
    /// `nodes / beta`.
    pub beta: f64,
}

impl Default for DoBfsOptions {
    fn default() -> Self {
        DoBfsOptions {
            alpha: 14.0,
            beta: 24.0,
        }
    }
}

/// Result of a direction-optimizing BFS.
#[derive(Clone, Debug)]
pub struct DoBfsOutput {
    /// BFS levels (`u32::MAX` = unreachable).
    pub levels: Vec<u32>,
    /// Per-level simulator metrics.
    pub report: SimReport,
    /// Direction each level ran in.
    pub directions: Vec<Direction>,
}

/// Runs direction-optimizing BFS from `source`.
///
/// `graph` is the forward CSR, `reverse` its transpose
/// ([`tigr_graph::reverse::transpose`]); `overlays`, when given, are
/// virtual overlays of the two — Tigr and direction switching compose.
///
/// # Panics
///
/// Panics if the graphs are not mutual transposes (checked by node/edge
/// counts) or `source` is out of range.
pub fn run(
    sim: &GpuSimulator,
    graph: &Csr,
    reverse: &Csr,
    overlays: Option<(&VirtualGraph, &VirtualGraph)>,
    source: NodeId,
    options: &DoBfsOptions,
) -> DoBfsOutput {
    assert_eq!(graph.num_nodes(), reverse.num_nodes(), "transpose mismatch");
    assert_eq!(graph.num_edges(), reverse.num_edges(), "transpose mismatch");
    let n = graph.num_nodes();
    assert!(source.index() < n, "source out of range");

    let levels = AtomicValues::new(n, u32::MAX);
    levels.store(source.index(), 0);
    let mut frontier: Vec<u32> = vec![source.raw()];
    let mut report = SimReport::new();
    let mut directions = Vec::new();
    let mut level = 0u32;
    let mut unvisited_edges: u64 = graph.num_edges() as u64;

    while !frontier.is_empty() {
        let frontier_edges: u64 = frontier
            .iter()
            .map(|&v| graph.out_degree(NodeId::new(v)) as u64)
            .sum();
        let bottom_up = frontier_edges as f64 * options.alpha > unvisited_edges as f64
            && frontier.len() > n.div_ceil(options.beta.max(1.0) as usize).max(1);

        let next = FrontierBuilder::new(n);
        let metrics = if bottom_up {
            directions.push(Direction::BottomUp);
            bottom_up_step(sim, reverse, overlays.map(|o| o.1), &levels, level, &next)
        } else {
            directions.push(Direction::TopDown);
            top_down_step(
                sim,
                graph,
                overlays.map(|o| o.0),
                &levels,
                level,
                &frontier,
                &next,
            )
        };
        report.push(frontier.len(), metrics);

        // The builder drains sorted and deduplicated, so the next level's
        // schedule is deterministic.
        let nf = next.take(FrontierMode::Sparse);
        unvisited_edges = unvisited_edges.saturating_sub(
            nf.nodes()
                .iter()
                .map(|&v| graph.out_degree(NodeId::new(v)) as u64)
                .sum(),
        );
        frontier = nf.nodes().to_vec();
        level += 1;
    }

    DoBfsOutput {
        levels: levels.snapshot(),
        report,
        directions,
    }
}

fn top_down_step(
    sim: &GpuSimulator,
    graph: &Csr,
    overlay: Option<&VirtualGraph>,
    levels: &AtomicValues,
    level: u32,
    frontier: &[u32],
    next: &FrontierBuilder,
) -> tigr_sim::KernelMetrics {
    let body = |lane: &mut tigr_sim::Lane, edges: &mut dyn Iterator<Item = usize>| {
        for e in edges {
            lane.load(edge_addr(e), 8);
            let nbr = graph.edge_target(e).index();
            lane.load(value_addr(nbr), 4);
            if levels.load(nbr) == u32::MAX && levels.try_improve(nbr, level + 1, Combine::Min) {
                lane.atomic(value_addr(nbr), 4);
                if next.activate(nbr) {
                    lane.atomic(frontier_bit_addr(nbr), 4);
                }
            }
            lane.compute(1);
        }
    };
    match overlay {
        None => sim.launch(frontier.len(), |tid, lane| {
            lane.load(frontier_addr(tid), 4);
            let v = NodeId::new(frontier[tid]);
            lane.load(row_ptr_addr(v.index()), 8);
            body(lane, &mut (graph.edge_start(v)..graph.edge_end(v)));
        }),
        Some(ov) => {
            let active = ov.expand_active(frontier);
            sim.launch(active.len(), |tid, lane| {
                let vid = active[tid] as usize;
                lane.load(vnode_addr(vid), 8);
                let vn = ov.vnode(vid);
                body(lane, &mut tigr_core::EdgeCursor::new(&vn));
            })
        }
    }
}

fn bottom_up_step(
    sim: &GpuSimulator,
    reverse: &Csr,
    overlay: Option<&VirtualGraph>,
    levels: &AtomicValues,
    level: u32,
    next: &FrontierBuilder,
) -> tigr_sim::KernelMetrics {
    let scanned = AtomicU64::new(0);
    let body = |lane: &mut tigr_sim::Lane, slot: usize, edges: &mut dyn Iterator<Item = usize>| {
        lane.load(value_addr(slot), 4);
        if levels.load(slot) != u32::MAX {
            return;
        }
        for e in edges {
            lane.load(edge_addr(e), 8);
            let parent = reverse.edge_target(e).index();
            lane.load(value_addr(parent), 4);
            lane.compute(1);
            scanned.fetch_add(1, Ordering::Relaxed);
            if levels.load(parent) == level {
                // Early exit: claim the level and stop scanning.
                if levels.try_improve(slot, level + 1, Combine::Min) {
                    lane.atomic(value_addr(slot), 4);
                    if next.activate(slot) {
                        lane.atomic(frontier_bit_addr(slot), 4);
                    }
                }
                break;
            }
        }
    };
    match overlay {
        None => sim.launch(reverse.num_nodes(), |tid, lane| {
            lane.load(row_ptr_addr(tid), 8);
            let v = NodeId::from_index(tid);
            body(lane, tid, &mut (reverse.edge_start(v)..reverse.edge_end(v)));
        }),
        Some(ov) => sim.launch(ov.num_virtual_nodes(), |tid, lane| {
            lane.load(vnode_addr(tid), 8);
            let vn = ov.vnode(tid);
            body(
                lane,
                vn.physical.index(),
                &mut tigr_core::EdgeCursor::new(&vn),
            );
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{grid_2d, rmat, RmatConfig};
    use tigr_graph::properties::bfs_levels;
    use tigr_graph::reverse::transpose;
    use tigr_sim::GpuConfig;

    fn expect_levels(g: &Csr, src: NodeId) -> Vec<u32> {
        bfs_levels(g, src)
            .into_iter()
            .map(|l| if l == usize::MAX { u32::MAX } else { l as u32 })
            .collect()
    }

    #[test]
    fn levels_match_oracle_on_power_law_graph() {
        let g = rmat(&RmatConfig::graph500(10, 16), 77);
        let rev = transpose(&g);
        let src = NodeId::new(0);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(&sim, &g, &rev, None, src, &DoBfsOptions::default());
        assert_eq!(out.levels, expect_levels(&g, src));
        assert_eq!(out.directions.len(), out.report.num_iterations());
    }

    #[test]
    fn engages_bottom_up_on_dense_low_diameter_graphs() {
        let g = rmat(&RmatConfig::graph500(10, 16), 78);
        let rev = transpose(&g);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(
            &sim,
            &g,
            &rev,
            None,
            NodeId::new(0),
            &DoBfsOptions::default(),
        );
        assert!(
            out.directions.contains(&Direction::BottomUp),
            "dense RMAT should trigger the switch: {:?}",
            out.directions
        );
    }

    #[test]
    fn stays_top_down_on_high_diameter_grids() {
        // Large enough that frontier edges never dominate the remainder.
        let g = grid_2d(60, 60);
        let rev = transpose(&g);
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run(
            &sim,
            &g,
            &rev,
            None,
            NodeId::new(0),
            &DoBfsOptions::default(),
        );
        assert!(out.directions.iter().all(|&d| d == Direction::TopDown));
        assert_eq!(out.levels, expect_levels(&g, NodeId::new(0)));
    }

    #[test]
    fn composes_with_virtual_overlays() {
        let g = rmat(&RmatConfig::graph500(9, 12), 79);
        let rev = transpose(&g);
        let ov_fwd = VirtualGraph::coalesced(&g, 10);
        let ov_rev = VirtualGraph::coalesced(&rev, 10);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(
            &sim,
            &g,
            &rev,
            Some((&ov_fwd, &ov_rev)),
            NodeId::new(0),
            &DoBfsOptions::default(),
        );
        assert_eq!(out.levels, expect_levels(&g, NodeId::new(0)));
    }

    #[test]
    fn bottom_up_saves_instructions_on_dense_graphs() {
        let g = rmat(&RmatConfig::graph500(10, 16), 80);
        let rev = transpose(&g);
        let sim = GpuSimulator::new(GpuConfig::default());
        let hybrid = run(
            &sim,
            &g,
            &rev,
            None,
            NodeId::new(0),
            &DoBfsOptions::default(),
        );
        // Force pure top-down with an unreachable switch threshold.
        let pure = run(
            &sim,
            &g,
            &rev,
            None,
            NodeId::new(0),
            &DoBfsOptions {
                alpha: 0.0, // the switch condition can never fire
                beta: 24.0,
            },
        );
        assert_eq!(hybrid.levels, pure.levels);
        assert!(
            hybrid.report.total().instructions < pure.report.total().instructions,
            "hybrid {} vs pure {}",
            hybrid.report.total().instructions,
            pure.report.total().instructions
        );
    }

    #[test]
    #[should_panic(expected = "transpose mismatch")]
    fn mismatched_transpose_rejected() {
        let g = grid_2d(3, 3);
        let other = grid_2d(4, 4);
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let _ = run(
            &sim,
            &g,
            &other,
            None,
            NodeId::new(0),
            &DoBfsOptions::default(),
        );
    }
}
