//! Single-source widest path (bottleneck paths, Corollary 3).

use tigr_graph::NodeId;
use tigr_sim::GpuSimulator;

use crate::program::MonotoneProgram;
use crate::push::{run_monotone, MonotoneOutput, PushOptions};
use crate::representation::Representation;

/// Runs SSWP from `source` over `rep`: each node's value converges to the
/// maximum over paths of the minimum edge weight along the path. The
/// source holds `u32::MAX`; unreachable nodes hold `0`.
///
/// For physical representations the transformation must use
/// [`tigr_core::DumbWeight::Infinity`] so introduced edges never tighten
/// a bottleneck (Corollary 3).
pub fn run(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    source: NodeId,
    options: &PushOptions,
) -> MonotoneOutput {
    run_monotone(sim, rep, MonotoneProgram::SSWP, Some(source), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::{udt_transform, DumbWeight, VirtualGraph};
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_graph::properties::widest_path;
    use tigr_sim::GpuConfig;

    fn fixture() -> tigr_graph::Csr {
        let g = rmat(&RmatConfig::graph500(8, 8), 29);
        with_uniform_weights(&g, 1, 64, 7)
    }

    #[test]
    fn widths_match_oracle_on_all_representations() {
        let g = fixture();
        let src = NodeId::new(0);
        let expect = widest_path(&g, src);
        let sim = GpuSimulator::new(GpuConfig::default());
        let o = PushOptions::default();

        let orig = run(&sim, &Representation::Original(&g), src, &o);
        assert_eq!(orig.values, expect);

        // Physical needs INFINITE dumb weights.
        let t = udt_transform(&g, 4, DumbWeight::Infinity);
        let out = run(&sim, &Representation::Physical(&t), src, &o);
        assert_eq!(t.project_values(&out.values), expect);

        let ov = VirtualGraph::coalesced(&g, 10);
        let out = run(
            &sim,
            &Representation::Virtual {
                graph: &g,
                overlay: &ov,
            },
            src,
            &o,
        );
        assert_eq!(out.values, expect);
    }

    #[test]
    fn zero_dumb_weights_would_corrupt_sswp() {
        // Negative control documenting why Corollary 3 needs infinity.
        let g = fixture();
        let src = NodeId::new(0);
        let expect = widest_path(&g, src);
        let t = udt_transform(&g, 4, DumbWeight::Zero);
        if t.num_split_nodes() == 0 {
            return; // nothing split, nothing to corrupt
        }
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run(
            &sim,
            &Representation::Physical(&t),
            src,
            &PushOptions::default(),
        );
        assert_ne!(t.project_values(&out.values), expect);
    }
}
