//! Atomic per-node value storage.
//!
//! GPU vertex-centric kernels update neighbor values with hardware
//! atomics (`atomicMin` in Algorithm 2). This module mirrors that with an
//! array of `AtomicU32`, giving the engine the same correctness
//! discipline the paper requires for pull-based virtual processing
//! ("updates to the value array are performed with atomic operations",
//! §4.2).

use std::sync::atomic::{AtomicU32, Ordering};

use serde::{Deserialize, Serialize};

/// Monotone combining operator of a vertex program.
///
/// Monotonicity is what makes relaxed (non-BSP) execution safe: applying
/// the operator more often, or with stale candidates, cannot overshoot
/// the fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Combine {
    /// Keep the minimum (SSSP, BFS, CC labels).
    Min,
    /// Keep the maximum (SSWP widths).
    Max,
}

impl Combine {
    /// The identity element: the initial value improvement starts from.
    pub fn identity(self) -> u32 {
        match self {
            Combine::Min => u32::MAX,
            Combine::Max => 0,
        }
    }

    /// Whether `candidate` strictly improves on `current`.
    pub fn improves(self, candidate: u32, current: u32) -> bool {
        match self {
            Combine::Min => candidate < current,
            Combine::Max => candidate > current,
        }
    }
}

/// A shared array of atomically-updated `u32` node values.
#[derive(Debug)]
pub struct AtomicValues {
    values: Vec<AtomicU32>,
}

impl AtomicValues {
    /// Creates an array of `n` slots all holding `init`.
    pub fn new(n: usize, init: u32) -> Self {
        AtomicValues {
            values: (0..n).map(|_| AtomicU32::new(init)).collect(),
        }
    }

    /// Creates an array from explicit initial values.
    pub fn from_values(values: impl IntoIterator<Item = u32>) -> Self {
        AtomicValues {
            values: values.into_iter().map(AtomicU32::new).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the array is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reads slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn load(&self, i: usize) -> u32 {
        self.values[i].load(Ordering::Relaxed)
    }

    /// Writes slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn store(&self, i: usize, v: u32) {
        self.values[i].store(v, Ordering::Relaxed);
    }

    /// Atomically applies `combine` with `candidate` at slot `i`
    /// (hardware `atomicMin`/`atomicMax`), returning `true` if the slot
    /// strictly improved — the signal Algorithm 2 uses to clear the
    /// `finished` flag and worklists use to enqueue the node.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn try_improve(&self, i: usize, candidate: u32, combine: Combine) -> bool {
        let prev = match combine {
            Combine::Min => self.values[i].fetch_min(candidate, Ordering::Relaxed),
            Combine::Max => self.values[i].fetch_max(candidate, Ordering::Relaxed),
        };
        combine.improves(candidate, prev)
    }

    /// Copies the current values out.
    pub fn snapshot(&self) -> Vec<u32> {
        self.values
            .iter()
            .map(|v| v.load(Ordering::Relaxed))
            .collect()
    }

    /// Resets every slot to `v` — the allocation-free re-initialization
    /// path batch arenas use to recycle value arrays across runs.
    pub fn fill(&self, v: u32) {
        for slot in &self.values {
            slot.store(v, Ordering::Relaxed);
        }
    }
}

/// A shared array of atomically-accumulated `f32` values (σ/δ/rank
/// accumulators), stored as bit-cast `u32` and updated with a
/// compare-and-swap loop — the standard pre-Kepler `atomicAdd(float)`
/// emulation.
#[derive(Debug)]
pub struct AtomicFloats {
    bits: Vec<AtomicU32>,
}

impl AtomicFloats {
    /// Creates an array of `n` slots all holding `init`.
    pub fn new(n: usize, init: f32) -> Self {
        AtomicFloats {
            bits: (0..n).map(|_| AtomicU32::new(init.to_bits())).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if the array is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Reads slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn load(&self, i: usize) -> f32 {
        f32::from_bits(self.bits[i].load(Ordering::Relaxed))
    }

    /// Writes slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn store(&self, i: usize, v: f32) {
        self.bits[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta` to slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn fetch_add(&self, i: usize, delta: f32) -> f32 {
        let slot = &self.bits[i];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(current) + delta).to_bits();
            match slot.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f32::from_bits(current),
                Err(actual) => current = actual,
            }
        }
    }

    /// Copies the current values out.
    pub fn snapshot(&self) -> Vec<f32> {
        self.bits
            .iter()
            .map(|b| f32::from_bits(b.load(Ordering::Relaxed)))
            .collect()
    }

    /// Resets every slot to `v`.
    pub fn fill(&self, v: f32) {
        for b in &self.bits {
            b.store(v.to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_identities() {
        assert_eq!(Combine::Min.identity(), u32::MAX);
        assert_eq!(Combine::Max.identity(), 0);
        assert!(Combine::Min.improves(3, 5));
        assert!(!Combine::Min.improves(5, 5));
        assert!(Combine::Max.improves(5, 3));
        assert!(!Combine::Max.improves(3, 3));
    }

    #[test]
    fn try_improve_min_semantics() {
        let v = AtomicValues::new(3, u32::MAX);
        assert!(v.try_improve(0, 10, Combine::Min));
        assert!(
            !v.try_improve(0, 10, Combine::Min),
            "equal is not improvement"
        );
        assert!(!v.try_improve(0, 11, Combine::Min));
        assert!(v.try_improve(0, 9, Combine::Min));
        assert_eq!(v.load(0), 9);
    }

    #[test]
    fn try_improve_max_semantics() {
        let v = AtomicValues::new(1, 0);
        assert!(v.try_improve(0, 7, Combine::Max));
        assert!(!v.try_improve(0, 5, Combine::Max));
        assert_eq!(v.load(0), 7);
    }

    #[test]
    fn from_values_and_snapshot_round_trip() {
        let v = AtomicValues::from_values([1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        v.store(1, 99);
        assert_eq!(v.snapshot(), vec![1, 99, 3]);
    }

    #[test]
    fn concurrent_min_converges() {
        let v = AtomicValues::new(1, u32::MAX);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let v = &v;
                s.spawn(move || {
                    for i in 0..1000u32 {
                        v.try_improve(0, t * 1000 + i, Combine::Min);
                    }
                });
            }
        });
        assert_eq!(v.load(0), 0);
    }

    #[test]
    fn atomic_floats_add() {
        let f = AtomicFloats::new(2, 0.0);
        assert_eq!(f.fetch_add(0, 1.5), 0.0);
        assert_eq!(f.fetch_add(0, 2.5), 1.5);
        assert_eq!(f.load(0), 4.0);
        assert_eq!(f.load(1), 0.0);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn concurrent_float_adds_are_exact_for_integers() {
        let f = AtomicFloats::new(1, 0.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let f = &f;
                s.spawn(move || {
                    for _ in 0..1000 {
                        f.fetch_add(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(f.load(0), 4000.0);
    }

    #[test]
    fn fill_resets() {
        let f = AtomicFloats::new(3, 5.0);
        f.fill(0.25);
        assert_eq!(f.snapshot(), vec![0.25; 3]);
    }
}
