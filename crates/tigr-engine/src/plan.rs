//! Execution plans: representation × direction × frontier × schedule as
//! *data*, validated against the paper's correctness theorems before
//! anything runs.
//!
//! A [`ExecutionPlan`] is assembled by [`crate::Engine`]'s builder
//! methods (or literally) and handed to a [`crate::backend::Backend`].
//! Validation encodes what the paper proves rather than what a comment
//! promises:
//!
//! * **Theorem 3** — pull/gather over a split (virtual or on-the-fly)
//!   representation partitions a node's in-edge fold across threads, so
//!   the combine operator must be associative and applied atomically.
//!   Non-associative programs over split views are a [`PlanError`], not
//!   a wrong answer.
//! * **Corollary 4 analog** — pull over a *physical* (UDT) split is
//!   rejected: the split vertices are real nodes with rewired in-edges,
//!   so gathering over them computes a different fixpoint.
//! * `CpuSchedule::Virtual` needs a virtual view to chunk by; a plan
//!   that disables overlay construction (`virtual_k == 0`) without
//!   supplying one is rejected up front instead of silently degrading.

use std::fmt;

use tigr_core::CancelToken;

use crate::cpu_parallel::{CpuOptions, CpuSchedule};
use crate::operators::Pipeline;
use crate::program::MonotoneProgram;
use crate::push::PushOptions;
use crate::representation::Representation;

use tigr_graph::NodeId;

/// Traversal direction of a plan: which side of each edge does the work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Scatter: active nodes push candidates along out-edges (one
    /// atomic per improving edge). Always valid (Theorem 2).
    #[default]
    Push,
    /// Gather: every node folds candidates over in-edges (at most one
    /// atomic per node per iteration). Over split representations this
    /// requires an associative combine (Theorem 3).
    Pull,
    /// Direction-optimizing: start pushing, switch to pull when the
    /// frontier grows dense (Beamer's α/β heuristic generalized from
    /// BFS to any monotone program), and fall back to push as it
    /// thins.
    Auto,
}

impl Direction {
    /// All directions, in ablation order.
    pub const ALL: [Direction; 3] = [Direction::Push, Direction::Pull, Direction::Auto];

    /// Parses a CLI/env spelling (`push`, `pull`, `auto`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "push" | "td" | "top-down" => Some(Direction::Push),
            "pull" | "bu" | "bottom-up" => Some(Direction::Pull),
            "auto" | "do" | "hybrid" => Some(Direction::Auto),
            _ => None,
        }
    }

    /// Stable lowercase label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Push => "push",
            Direction::Pull => "pull",
            Direction::Auto => "auto",
        }
    }
}

/// Tuning knobs of the [`Direction::Auto`] density switch, after Beamer
/// et al.'s direction-optimizing BFS.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoOptions {
    /// Switch to pull when `frontier_edges * alpha > unvisited_edges`.
    /// `0.0` never pulls.
    pub alpha: f64,
    /// Additionally require the frontier to span more than `n / beta`
    /// nodes, guarding against pulling on deep, thin frontiers.
    pub beta: f64,
}

impl Default for AutoOptions {
    fn default() -> Self {
        AutoOptions {
            alpha: 14.0,
            beta: 24.0,
        }
    }
}

/// Which executor runs the plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The warp-lockstep GPU simulator (`tigr-sim`): architectural
    /// metrics, values via shared atomics.
    #[default]
    WarpSim,
    /// The persistent work-stealing CPU pool: wall-clock numbers.
    CpuPool,
    /// Single-threaded deterministic sweeps: the differential-testing
    /// reference.
    Sequential,
}

impl BackendKind {
    /// Parses a CLI/env spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "sim" | "warpsim" | "warp-sim" | "gpu" => Some(BackendKind::WarpSim),
            "cpu" | "cpupool" | "cpu-pool" => Some(BackendKind::CpuPool),
            "seq" | "sequential" => Some(BackendKind::Sequential),
            _ => None,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::WarpSim => "warpsim",
            BackendKind::CpuPool => "cpupool",
            BackendKind::Sequential => "sequential",
        }
    }
}

/// A fully specified execution: backend × direction × the existing
/// frontier/sync knobs ([`PushOptions`]) × CPU scheduling
/// ([`CpuOptions`]). Representation stays a per-run argument — one plan
/// runs against many graphs.
#[derive(Clone, Debug, Default)]
pub struct ExecutionPlan {
    /// Executor the plan targets.
    pub backend: BackendKind,
    /// Traversal direction (push / pull / auto).
    pub direction: Direction,
    /// Density-switch tuning for [`Direction::Auto`].
    pub auto: AutoOptions,
    /// Frontier mode, sync mode, worklist toggle, iteration cap.
    pub push: PushOptions,
    /// CPU worker count, schedule, and virtual-chunk size.
    pub cpu: CpuOptions,
    /// Cooperative cancellation token, polled by every backend driver at
    /// iteration boundaries. The default ([`CancelToken::never`]) costs
    /// one branch per iteration; arm it for per-request deadlines or
    /// client-initiated aborts. A cancelled run returns its consistent
    /// monotone prefix with `cancelled = true` and `converged = false`.
    pub cancel: CancelToken,
}

impl ExecutionPlan {
    /// Checks the plan against `rep` and `prog` per the paper's
    /// theorems. Called by every backend before launching; exposed so
    /// callers can validate eagerly.
    pub fn validate(
        &self,
        rep: &Representation<'_>,
        prog: &MonotoneProgram,
    ) -> Result<(), PlanError> {
        match self.direction {
            Direction::Pull => {
                if matches!(rep, Representation::Physical(_)) {
                    return Err(PlanError::PullOverPhysical);
                }
                if matches!(
                    rep,
                    Representation::Virtual { .. } | Representation::OnTheFly { .. }
                ) && !prog.associative
                {
                    return Err(PlanError::PullNeedsAssociativity { program: prog.name });
                }
            }
            // Auto degrades to push where pull would be invalid, so it
            // never errors on direction grounds.
            Direction::Push | Direction::Auto => {}
        }
        if self.backend == BackendKind::CpuPool
            && self.cpu.schedule == CpuSchedule::Virtual
            && self.cpu.virtual_k == 0
            && !matches!(rep, Representation::Virtual { .. })
        {
            return Err(PlanError::VirtualScheduleWithoutView);
        }
        Ok(())
    }

    /// Checks the plan against a [`Pipeline`]'s typed operator
    /// capabilities: source arity, split-invariance over physical
    /// representations (Corollary 2/3), then — for monotone-bodied
    /// pipelines — the per-program rules of [`ExecutionPlan::validate`]
    /// (Theorem 3 and friends).
    pub fn validate_pipeline(
        &self,
        rep: &Representation<'_>,
        pipeline: &Pipeline,
        source: Option<NodeId>,
    ) -> Result<(), PlanError> {
        if pipeline.needs_source() && source.is_none() {
            return Err(PlanError::MissingSource {
                pipeline: pipeline.name(),
            });
        }
        if !pipeline.needs_source() && source.is_some() {
            return Err(PlanError::UnexpectedSource {
                pipeline: pipeline.name(),
            });
        }
        if !pipeline.caps().split_invariant && matches!(rep, Representation::Physical(_)) {
            return Err(PlanError::NotSplitInvariant {
                pipeline: pipeline.name(),
            });
        }
        if let Some(prog) = pipeline.monotone_program() {
            self.validate(rep, &prog)?;
        }
        Ok(())
    }
}

/// A plan combination the paper's theorems do not license.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// Pull over a UDT physical split: split vertices are real nodes
    /// with rewired in-edges, so the gather computes a different
    /// fixpoint (the Corollary 4 failure mode).
    PullOverPhysical,
    /// Pull over a virtual/on-the-fly split partitions a node's in-edge
    /// fold across threads; Theorem 3 requires the combine to be
    /// associative (applied via atomics), and this program's is not.
    PullNeedsAssociativity {
        /// Name of the offending program.
        program: &'static str,
    },
    /// `CpuSchedule::Virtual` with overlay construction disabled
    /// (`virtual_k == 0`) and no virtual representation supplied:
    /// there is nothing to chunk by.
    VirtualScheduleWithoutView,
    /// The chosen backend has no pull path. No built-in backend
    /// triggers this today (the CPU pool gained a pull side with the
    /// batched executor); retained for future backends.
    PullUnsupportedOnBackend {
        /// Label of the backend that cannot pull.
        backend: &'static str,
    },
    /// The pipeline needs a source node and none was supplied.
    MissingSource {
        /// Name of the offending pipeline.
        pipeline: &'static str,
    },
    /// The pipeline takes no source node but one was supplied.
    UnexpectedSource {
        /// Name of the offending pipeline.
        pipeline: &'static str,
    },
    /// The pipeline is not split-invariant — no dumb-weight assignment
    /// preserves its answer (an [`crate::EdgeOp::AddUnit`] advance, a
    /// compute step reading the original adjacency, or a fixed-round
    /// snapshot), so running it over a physically split (UDT)
    /// representation would compute a different result.
    NotSplitInvariant {
        /// Name of the offending pipeline.
        pipeline: &'static str,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::PullOverPhysical => write!(
                f,
                "pull direction over a physically split graph: UDT split vertices have \
                 rewired in-edges, so a gather computes a different fixpoint"
            ),
            PlanError::PullNeedsAssociativity { program } => write!(
                f,
                "pull direction over a split representation partitions each node's in-edge \
                 fold across threads; Theorem 3 requires an associative combine, which \
                 program `{program}` does not provide"
            ),
            PlanError::VirtualScheduleWithoutView => write!(
                f,
                "CpuSchedule::Virtual with virtual_k = 0 and no virtual representation: \
                 there is no virtual view to schedule by"
            ),
            PlanError::PullUnsupportedOnBackend { backend } => {
                write!(f, "backend `{backend}` has no pull execution path")
            }
            PlanError::MissingSource { pipeline } => {
                write!(f, "pipeline `{pipeline}` requires a source node")
            }
            PlanError::UnexpectedSource { pipeline } => {
                write!(f, "pipeline `{pipeline}` takes no source node")
            }
            PlanError::NotSplitInvariant { pipeline } => write!(
                f,
                "pipeline `{pipeline}` is not split-invariant: no dumb-weight assignment \
                 preserves its answer over a physically split (UDT) representation"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::VirtualGraph;
    use tigr_graph::generators::star_graph;

    fn non_associative() -> MonotoneProgram {
        MonotoneProgram {
            associative: false,
            ..MonotoneProgram::SSSP
        }
    }

    #[test]
    fn parse_round_trips() {
        for d in Direction::ALL {
            assert_eq!(Direction::parse(d.label()), Some(d));
        }
        assert_eq!(Direction::parse("bogus"), None);
        for b in [
            BackendKind::WarpSim,
            BackendKind::CpuPool,
            BackendKind::Sequential,
        ] {
            assert_eq!(BackendKind::parse(b.label()), Some(b));
        }
    }

    #[test]
    fn pull_on_virtual_needs_associativity() {
        let g = star_graph(32);
        let ov = VirtualGraph::new(&g, 4);
        let rep = Representation::Virtual {
            graph: &g,
            overlay: &ov,
        };
        let plan = ExecutionPlan {
            direction: Direction::Pull,
            ..ExecutionPlan::default()
        };
        assert!(matches!(
            plan.validate(&rep, &non_associative()),
            Err(PlanError::PullNeedsAssociativity { program: "sssp" })
        ));
        // The real SSSP combine (min) is associative: licensed.
        assert!(plan.validate(&rep, &MonotoneProgram::SSSP).is_ok());
        // Pull over the *original* graph folds each node in one thread;
        // no split, no Theorem 3 obligation.
        assert!(plan
            .validate(&Representation::Original(&g), &non_associative())
            .is_ok());
    }

    #[test]
    fn pull_on_physical_rejected() {
        let g = star_graph(32);
        let t = tigr_core::udt_transform(&g, 4, tigr_core::DumbWeight::Zero);
        let plan = ExecutionPlan {
            direction: Direction::Pull,
            ..ExecutionPlan::default()
        };
        let err = plan
            .validate(&Representation::Physical(&t), &MonotoneProgram::BFS)
            .unwrap_err();
        assert_eq!(err, PlanError::PullOverPhysical);
        assert!(err.to_string().contains("physically split"));
    }

    #[test]
    fn virtual_schedule_needs_a_view() {
        let g = star_graph(32);
        let plan = ExecutionPlan {
            backend: BackendKind::CpuPool,
            cpu: CpuOptions {
                schedule: CpuSchedule::Virtual,
                virtual_k: 0,
                ..CpuOptions::default()
            },
            ..ExecutionPlan::default()
        };
        assert_eq!(
            plan.validate(&Representation::Original(&g), &MonotoneProgram::CC),
            Err(PlanError::VirtualScheduleWithoutView)
        );
        // With a chunk size the engine can build its own overlay.
        let ok = ExecutionPlan {
            cpu: CpuOptions {
                virtual_k: 64,
                ..plan.cpu
            },
            ..plan.clone()
        };
        assert!(ok
            .validate(&Representation::Original(&g), &MonotoneProgram::CC)
            .is_ok());
        // Or the caller supplies the virtual view directly.
        let ov = VirtualGraph::new(&g, 4);
        assert!(plan
            .validate(
                &Representation::Virtual {
                    graph: &g,
                    overlay: &ov
                },
                &MonotoneProgram::CC
            )
            .is_ok());
    }

    #[test]
    fn cpu_pool_pull_is_licensed() {
        // The pool gained a gather side with the batched executor:
        // pull over an unsplit representation validates like
        // Sequential, and the Theorem 3 obligations still apply over
        // split views.
        let g = star_graph(8);
        let plan = ExecutionPlan {
            backend: BackendKind::CpuPool,
            direction: Direction::Pull,
            ..ExecutionPlan::default()
        };
        assert!(plan
            .validate(&Representation::Original(&g), &MonotoneProgram::BFS)
            .is_ok());
        let ov = VirtualGraph::new(&g, 4);
        let rep = Representation::Virtual {
            graph: &g,
            overlay: &ov,
        };
        assert!(matches!(
            plan.validate(&rep, &non_associative()),
            Err(PlanError::PullNeedsAssociativity { .. })
        ));
    }

    #[test]
    fn pipeline_source_arity_is_typed() {
        use crate::operators::Pipeline;
        let g = star_graph(8);
        let rep = Representation::Original(&g);
        let plan = ExecutionPlan::default();
        assert_eq!(
            plan.validate_pipeline(&rep, &Pipeline::bfs(), None),
            Err(PlanError::MissingSource { pipeline: "bfs" })
        );
        let err = plan
            .validate_pipeline(&rep, &Pipeline::cc(), Some(NodeId::new(0)))
            .unwrap_err();
        assert_eq!(err, PlanError::UnexpectedSource { pipeline: "cc" });
        assert!(err.to_string().contains("takes no source"));
        assert!(plan
            .validate_pipeline(&rep, &Pipeline::bfs(), Some(NodeId::new(0)))
            .is_ok());
        assert!(plan.validate_pipeline(&rep, &Pipeline::cc(), None).is_ok());
    }

    #[test]
    fn non_split_invariant_pipelines_rejected_on_physical() {
        use crate::operators::Pipeline;
        let g = star_graph(32);
        let t = tigr_core::udt_transform(&g, 4, tigr_core::DumbWeight::Zero);
        let phys = Representation::Physical(&t);
        let plan = ExecutionPlan::default();
        for (p, src) in [
            (Pipeline::khop(2), Some(NodeId::new(0))),
            (Pipeline::bounded_paths(10), Some(NodeId::new(0))),
            (Pipeline::label_propagation(3), None),
            (Pipeline::triangle_count(), None),
        ] {
            let err = plan.validate_pipeline(&phys, &p, src).unwrap_err();
            assert!(
                matches!(err, PlanError::NotSplitInvariant { .. }),
                "{}: {err}",
                p.name()
            );
            assert!(err.to_string().contains("split-invariant"));
            // The same pipelines are licensed over unsplit views.
            assert!(plan
                .validate_pipeline(&Representation::Original(&g), &p, src)
                .is_ok());
        }
        // Split-invariant analytics still pass over physical splits.
        assert!(plan
            .validate_pipeline(&phys, &Pipeline::sssp(), Some(NodeId::new(0)))
            .is_ok());
    }

    #[test]
    fn pipeline_validation_delegates_monotone_rules() {
        use crate::operators::Pipeline;
        let g = star_graph(32);
        let t = tigr_core::udt_transform(&g, 4, tigr_core::DumbWeight::Zero);
        let plan = ExecutionPlan {
            direction: Direction::Pull,
            ..ExecutionPlan::default()
        };
        // BFS is split-invariant, so the pipeline check falls through to
        // the per-program Corollary 4 rule.
        assert_eq!(
            plan.validate_pipeline(
                &Representation::Physical(&t),
                &Pipeline::bfs(),
                Some(NodeId::new(0))
            ),
            Err(PlanError::PullOverPhysical)
        );
    }

    #[test]
    fn auto_never_errors_on_direction() {
        let g = star_graph(32);
        let t = tigr_core::udt_transform(&g, 4, tigr_core::DumbWeight::Zero);
        let plan = ExecutionPlan {
            direction: Direction::Auto,
            ..ExecutionPlan::default()
        };
        assert!(plan
            .validate(&Representation::Physical(&t), &non_associative())
            .is_ok());
    }
}
