//! Vertex-centric graph-processing engine over the GPU simulator.
//!
//! This crate is the paper's "lightweight GPU graph processing engine"
//! (§5): a push-based BSP driver with active-frontier worklist
//! scheduling (dense bitmap / sparse compacted list, density-switched —
//! see [`frontier`]) and synchronization-relaxation optimizations, able
//! to schedule over four representations
//! — the original CSR, a physically split graph (`Tigr-UDT`), a virtual
//! node array (`Tigr-V` / `Tigr-V+`), and dynamic on-the-fly mapping —
//! plus the six analytics of the evaluation: BFS, CC, SSSP, SSWP, BC,
//! and PR.
//!
//! Everything executes for real on host memory while the
//! [`tigr_sim`] simulator accounts warp-lockstep timing, coalescing, and
//! warp efficiency.
//!
//! # Example
//!
//! ```
//! use tigr_engine::{Engine, Representation};
//! use tigr_core::VirtualGraph;
//! use tigr_graph::{generators::star_graph, NodeId};
//!
//! let g = star_graph(1001);                    // a 1000-degree hub
//! let overlay = VirtualGraph::coalesced(&g, 10);
//! let engine = Engine::default();
//!
//! let baseline = engine.bfs(&Representation::Original(&g), NodeId::new(0))?;
//! let tigr = engine.bfs(
//!     &Representation::Virtual { graph: &g, overlay: &overlay },
//!     NodeId::new(0),
//! )?;
//! assert_eq!(baseline.values, tigr.values);    // same results...
//! // ...but Tigr keeps the SIMD lanes busy:
//! assert!(tigr.report.warp_efficiency() > baseline.report.warp_efficiency());
//! # Ok::<(), tigr_engine::EngineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod algorithms;
pub mod backend;
pub mod batch;
pub mod cpu_parallel;
pub mod frontier;
pub mod kernel;
pub mod operators;
pub mod plan;
pub mod pool;
mod program;
mod pull;
mod push;
mod representation;
mod runner;
mod state;
pub mod view_exec;

pub use algorithms::bc::{self, BcOutput};
pub use algorithms::dobfs::{self, DoBfsOptions, DoBfsOutput};
pub use algorithms::pr::{self, PrMode, PrOptions, PrOutput};
pub use algorithms::{bfs, cc, sssp, sswp, Analytic};
pub use backend::{Backend, CpuPool, Sequential, WarpSim};
pub use batch::{
    run_batch_cpu_pool, run_batch_sequential_push, BatchArena, BatchLane, BatchOutput, BatchProgram,
};
pub use cpu_parallel::{
    default_threads, run_cpu, run_cpu_pr, run_cpu_pr_cancellable, run_cpu_virtual,
    run_cpu_virtual_cancellable, run_cpu_with, run_cpu_with_cancellable, CpuOptions, CpuPrOutput,
    CpuRunOutput, CpuSchedule, ScheduleStats,
};
pub use frontier::{Frontier, FrontierBuilder, FrontierMode, FrontierRep, DENSE_FRACTION};
pub use kernel::{
    csr_edges, pull_gather, push_relax, relax_kernel, slice_edges, walk_segments, AccessMirror,
    EdgeFlow, EdgeRef, GatherFilter, LaneMirror, NoMirror,
};
pub use operators::{
    AdvanceRelax, AdvanceSpace, Algo, ComputeStep, GraphOperator, OperatorCaps, Pipeline,
    PipelineOutput, PipelineSpecError,
};
pub use plan::{AutoOptions, BackendKind, Direction, ExecutionPlan, PlanError};
pub use program::{EdgeOp, InitKind, MonotoneProgram};
pub use pull::{run_monotone_pull, run_monotone_pull_cancellable, PullOptions};
pub use push::{run_monotone, run_monotone_cancellable, MonotoneOutput, PushOptions, SyncMode};
pub use representation::Representation;
pub use runner::{Engine, EngineError};
pub use state::{AtomicFloats, AtomicValues, Combine};
pub use view_exec::{run_monotone_view, ViewOutput};
