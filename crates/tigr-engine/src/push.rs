//! Push-based BSP iteration driver (Figure 2, Algorithm 2, Algorithm 3).
//!
//! The driver runs a [`MonotoneProgram`] over any [`Representation`] on
//! the simulated GPU, with the two engine optimizations of §5:
//!
//! * **worklist** — only active nodes are processed per iteration;
//! * **synchronization relaxation** — values written in the current
//!   iteration are visible immediately ([`SyncMode::Relaxed`], the
//!   default, matching Algorithm 2's single value array); the strict
//!   double-buffered alternative ([`SyncMode::Bsp`]) is kept for
//!   deterministic tests and ablations.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tigr_core::{CancelToken, EdgeCursor};
use tigr_graph::{Csr, NodeId};
use tigr_sim::{GpuSimulator, KernelMetrics, Lane, SimReport};

use crate::addr::{frontier_addr, frontier_bit_addr, row_ptr_addr, value_addr, FLAG_ADDR};
use crate::frontier::{Frontier, FrontierBuilder, FrontierMode, FrontierRep};
use crate::kernel::{csr_edges, push_relax, walk_segments, AccessMirror, LaneMirror};
use crate::plan::Direction;
use crate::program::MonotoneProgram;
use crate::representation::Representation;
use crate::state::AtomicValues;

/// Value-visibility discipline across an iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncMode {
    /// Updates are visible within the iteration (single value array +
    /// atomics — the paper's engine). Converges in fewer iterations.
    #[default]
    Relaxed,
    /// Classic BSP double buffering: reads see only the previous
    /// iteration's values. Deterministic regardless of schedule.
    Bsp,
}

/// Options of a push run.
#[derive(Clone, Copy, Debug)]
pub struct PushOptions {
    /// Track and process only active nodes (§5 "worklist").
    pub worklist: bool,
    /// How the active set is represented and scheduled (dense bitmap,
    /// sparse compacted list, or density-based auto switching). Only
    /// meaningful with `worklist`.
    pub frontier: FrontierMode,
    /// Order each worklist by node degree so warps receive
    /// similar-sized work items — the frontier-batching that lifts even
    /// the *untransformed* graph's warp efficiency in the paper's
    /// Table 8 (original + worklist: 60.53%). Only meaningful with
    /// `worklist`; irrelevant for virtual representations, whose work
    /// items are already bounded by `K`.
    pub sort_frontier_by_degree: bool,
    /// Visibility discipline.
    pub sync: SyncMode,
    /// Safety cap on iterations.
    pub max_iterations: usize,
}

impl Default for PushOptions {
    fn default() -> Self {
        PushOptions {
            worklist: true,
            frontier: FrontierMode::Auto,
            sort_frontier_by_degree: false,
            sync: SyncMode::Relaxed,
            max_iterations: 100_000,
        }
    }
}

/// Result of a monotone push run.
#[derive(Clone, Debug)]
pub struct MonotoneOutput {
    /// Final per-slot values (length = `rep.num_value_slots()`). For
    /// physical representations, project with
    /// [`tigr_core::TransformedGraph::project_values`].
    pub values: Vec<u32>,
    /// Per-iteration simulator metrics.
    pub report: SimReport,
    /// `false` if the run hit `max_iterations` before converging.
    pub converged: bool,
    /// Total edges whose relaxation was attempted across all iterations
    /// — the work-efficiency metric frontier scheduling reduces.
    pub edges_touched: u64,
    /// Direction each iteration ran in (same length as the report's
    /// iterations). All `Push` here; the `Auto` plan driver mixes pull
    /// iterations in.
    pub directions: Vec<Direction>,
    /// `true` if a [`CancelToken`] fired at an iteration boundary before
    /// the run converged. The values then hold the consistent monotone
    /// prefix reached so far (never a torn write), and `converged` is
    /// `false`.
    pub cancelled: bool,
}

/// Shared per-iteration state threaded through the kernels.
pub(crate) struct IterCtx<'a> {
    pub(crate) graph: &'a Csr,
    pub(crate) prog: MonotoneProgram,
    pub(crate) values: &'a AtomicValues,
    /// Previous-iteration snapshot in BSP mode.
    pub(crate) prev: Option<&'a [u32]>,
    pub(crate) changed: &'a AtomicBool,
    pub(crate) next_frontier: Option<&'a FrontierBuilder>,
    pub(crate) edges_touched: &'a AtomicU64,
}

/// Scatter body shared by every representation: reads the slot's value
/// and routes its edge range through the [`crate::kernel`] relax loop
/// (Algorithm 2 lines 3, 6–10; Algorithm 3 for strided cursors), with
/// each memory access mirrored onto the simulator lane.
#[inline]
fn process_slot(
    lane: &mut Lane,
    ctx: &IterCtx<'_>,
    slot: usize,
    edges: impl Iterator<Item = usize>,
) {
    // d = distance[nodeId] (Algorithm 2, line 3).
    lane.load(value_addr(slot), 4);
    let d = match ctx.prev {
        Some(p) => p[slot],
        None => ctx.values.load(slot),
    };
    let mut mirror = LaneMirror(lane);
    let touched = push_relax(
        &mut mirror,
        ctx.prog,
        ctx.values,
        ctx.prev,
        d,
        csr_edges(ctx.graph, edges),
        |m, nbr| {
            // finished flag (line 10).
            m.store(FLAG_ADDR, 1);
            ctx.changed.store(true, Ordering::Relaxed);
            if let Some(next) = ctx.next_frontier {
                if next.activate(nbr) {
                    m.atomic(frontier_bit_addr(nbr), 4);
                }
            }
        },
    );
    ctx.edges_touched.fetch_add(touched, Ordering::Relaxed);
}

/// One full (non-worklist) sweep over all nodes of the representation.
pub(crate) fn full_sweep(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    ctx: &IterCtx<'_>,
) -> KernelMetrics {
    match rep {
        Representation::Original(g) => sim.launch(g.num_nodes(), |tid, lane| {
            lane.load(row_ptr_addr(tid), 8);
            let v = NodeId::from_index(tid);
            process_slot(lane, ctx, tid, g.edge_start(v)..g.edge_end(v));
        }),
        Representation::Physical(t) => {
            let g = t.graph();
            sim.launch(g.num_nodes(), |tid, lane| {
                lane.load(row_ptr_addr(tid), 8);
                let v = NodeId::from_index(tid);
                process_slot(lane, ctx, tid, g.edge_start(v)..g.edge_end(v));
            })
        }
        Representation::Virtual { overlay, .. } => {
            sim.launch(overlay.num_virtual_nodes(), |tid, lane| {
                // nodeId = virtualNodes[tid].physicalNodeId (Alg. 2 line 2).
                lane.load(crate::addr::vnode_addr(tid), 8);
                let vn = overlay.vnode(tid);
                process_slot(lane, ctx, vn.physical.index(), EdgeCursor::new(&vn));
            })
        }
        Representation::OnTheFly { graph, mapper } => {
            sim.launch(mapper.num_threads(), |tid, lane| {
                otf_block(lane, ctx, graph, mapper, tid);
            })
        }
    }
}

/// Dynamic-mapping kernel: thread `tid` resolves its edge block and
/// walks it segment by segment through the shared relax loop.
fn otf_block(
    lane: &mut Lane,
    ctx: &IterCtx<'_>,
    graph: &Csr,
    mapper: &tigr_core::OnTheFlyMapper,
    tid: usize,
) {
    let (range, first_src, probes) = mapper.resolve(graph, tid);
    // Binary-search probes: scattered row_ptr loads plus compare/branch.
    let n = graph.num_nodes().max(1);
    for i in 0..probes {
        let probe = (tid.wrapping_mul(2654435761) ^ (i as usize * 40503)) % n;
        lane.load(row_ptr_addr(probe), 4);
        lane.compute(2);
    }
    let mut mirror = LaneMirror(lane);
    walk_segments(&mut mirror, graph, range, first_src, |m, src, seg| {
        process_slot(m.0, ctx, src, seg);
    });
}

/// One worklist sweep over the active nodes, scheduled per the
/// frontier's representation: sparse launches one thread per active
/// (virtual) node off the compacted list; dense launches one thread per
/// (virtual) node, each exiting after a bitmap-word load when inactive.
pub(crate) fn worklist_sweep(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    ctx: &IterCtx<'_>,
    frontier: &Frontier,
) -> KernelMetrics {
    match rep {
        Representation::Original(g) => sweep_csr(sim, g, ctx, frontier),
        Representation::Physical(t) => sweep_csr(sim, t.graph(), ctx, frontier),
        Representation::Virtual { overlay, .. } => match frontier.rep() {
            FrontierRep::Sparse => {
                // Expand active physical nodes into their virtual
                // families and charge the compaction pass that a GPU
                // implementation pays.
                let active = overlay.expand_active(frontier.nodes());
                let mut metrics = sim.launch(frontier.len(), |tid, lane| {
                    lane.load(frontier_addr(tid), 4);
                    lane.compute(2);
                    lane.store(frontier_addr(tid), 4);
                });
                let work = sim.launch(active.len(), |tid, lane| {
                    let vid = active[tid] as usize;
                    lane.load(frontier_addr(tid), 4);
                    lane.load(crate::addr::vnode_addr(vid), 8);
                    let vn = overlay.vnode(vid);
                    process_slot(lane, ctx, vn.physical.index(), EdgeCursor::new(&vn));
                });
                metrics.merge(&work);
                metrics
            }
            FrontierRep::Dense => sim.launch(overlay.num_virtual_nodes(), |tid, lane| {
                // No expansion or compaction: every virtual node checks
                // its physical node's bit and exits when inactive.
                lane.load(crate::addr::vnode_addr(tid), 8);
                let vn = overlay.vnode(tid);
                lane.load(frontier_bit_addr(vn.physical.index()), 4);
                if frontier.contains(vn.physical.index()) {
                    process_slot(lane, ctx, vn.physical.index(), EdgeCursor::new(&vn));
                }
            }),
        },
        Representation::OnTheFly { .. } => {
            // Dynamic mapping has no stored node identity to enqueue on:
            // fall back to full sweeps (documented limitation).
            full_sweep(sim, rep, ctx)
        }
    }
}

/// Worklist sweep over a plain CSR (original or physically split).
fn sweep_csr(sim: &GpuSimulator, g: &Csr, ctx: &IterCtx<'_>, frontier: &Frontier) -> KernelMetrics {
    match frontier.rep() {
        FrontierRep::Sparse => {
            let nodes = frontier.nodes();
            sim.launch(nodes.len(), |tid, lane| {
                lane.load(frontier_addr(tid), 4);
                let v = NodeId::new(nodes[tid]);
                lane.load(row_ptr_addr(v.index()), 8);
                process_slot(lane, ctx, v.index(), g.edge_start(v)..g.edge_end(v));
            })
        }
        FrontierRep::Dense => sim.launch(g.num_nodes(), |tid, lane| {
            lane.load(frontier_bit_addr(tid), 4);
            if frontier.contains(tid) {
                let v = NodeId::from_index(tid);
                lane.load(row_ptr_addr(tid), 8);
                process_slot(lane, ctx, tid, g.edge_start(v)..g.edge_end(v));
            }
        }),
    }
}

/// Runs `prog` over `rep` to convergence.
///
/// # Panics
///
/// Panics if the program needs a source and none is given, or the source
/// is out of range for the representation's value slots.
pub fn run_monotone(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    options: &PushOptions,
) -> MonotoneOutput {
    run_monotone_cancellable(sim, rep, prog, source, options, &CancelToken::never())
}

/// [`run_monotone`] with a cooperative cancellation hook: `cancel` is
/// polled once per BSP iteration, before the sweep launches, so a fired
/// token stops the run at the last completed iteration — the values are
/// the consistent monotone prefix reached so far.
///
/// # Panics
///
/// See [`run_monotone`].
pub fn run_monotone_cancellable(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    options: &PushOptions,
    cancel: &CancelToken,
) -> MonotoneOutput {
    let n = rep.num_value_slots();
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let mut report = SimReport::new();
    let mut converged = false;
    let edges_touched = AtomicU64::new(0);

    let next = options.worklist.then(|| FrontierBuilder::new(n));
    let mut frontier = Frontier::from_active(n, prog.initial_frontier(n, source), options.frontier);
    let mut prev_snapshot: Option<Vec<u32>> = match options.sync {
        SyncMode::Bsp => Some(values.snapshot()),
        SyncMode::Relaxed => None,
    };

    let mut cancelled = false;
    for _ in 0..options.max_iterations {
        if options.worklist && frontier.is_empty() {
            converged = true;
            break;
        }
        if cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        let changed = AtomicBool::new(false);
        let ctx = IterCtx {
            graph: rep.graph(),
            prog,
            values: &values,
            prev: prev_snapshot.as_deref(),
            changed: &changed,
            next_frontier: next.as_ref(),
            edges_touched: &edges_touched,
        };
        let threads = if options.worklist {
            match frontier.rep() {
                FrontierRep::Sparse => frontier.len(),
                FrontierRep::Dense => rep.full_threads(),
            }
        } else {
            rep.full_threads()
        };
        let metrics = if options.worklist {
            worklist_sweep(sim, rep, &ctx, &frontier)
        } else {
            full_sweep(sim, rep, &ctx)
        };
        report.push(threads, metrics);

        if let Some(next) = &next {
            frontier = next.take(options.frontier);
            if options.sort_frontier_by_degree {
                // Batch similar degrees into the same warps; ties broken
                // by id for determinism.
                frontier.sort_by_degree(rep.graph());
            }
        }
        if !changed.load(Ordering::Relaxed) {
            converged = true;
            break;
        }
        if let Some(prev) = &mut prev_snapshot {
            *prev = values.snapshot();
        }
    }

    let directions = vec![Direction::Push; report.num_iterations()];
    MonotoneOutput {
        values: values.snapshot(),
        report,
        converged,
        edges_touched: edges_touched.into_inner(),
        directions,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::{udt_transform, DumbWeight, OnTheFlyMapper, VirtualGraph};
    use tigr_graph::generators::{barabasi_albert, with_uniform_weights, BarabasiAlbertConfig};
    use tigr_graph::properties::dijkstra;
    use tigr_sim::GpuConfig;

    fn fixture() -> Csr {
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 300,
                edges_per_node: 3,
                symmetric: true,
            },
            9,
        );
        with_uniform_weights(&g, 1, 32, 2)
    }

    fn sim() -> GpuSimulator {
        GpuSimulator::new(GpuConfig::default())
    }

    fn opts(worklist: bool, sync: SyncMode) -> PushOptions {
        PushOptions {
            worklist,
            frontier: FrontierMode::Auto,
            sort_frontier_by_degree: false,
            sync,
            max_iterations: 10_000,
        }
    }

    #[test]
    fn sssp_on_original_matches_dijkstra_all_modes() {
        let g = fixture();
        let expect = dijkstra(&g, NodeId::new(0));
        for worklist in [false, true] {
            for sync in [SyncMode::Relaxed, SyncMode::Bsp] {
                let out = run_monotone(
                    &sim(),
                    &Representation::Original(&g),
                    MonotoneProgram::SSSP,
                    Some(NodeId::new(0)),
                    &opts(worklist, sync),
                );
                assert!(out.converged);
                assert_eq!(out.values, expect, "worklist={worklist} sync={sync:?}");
            }
        }
    }

    #[test]
    fn sssp_on_virtual_matches_dijkstra() {
        let g = fixture();
        let expect = dijkstra(&g, NodeId::new(0));
        for overlay in [VirtualGraph::new(&g, 4), VirtualGraph::coalesced(&g, 4)] {
            for worklist in [false, true] {
                let out = run_monotone(
                    &sim(),
                    &Representation::Virtual {
                        graph: &g,
                        overlay: &overlay,
                    },
                    MonotoneProgram::SSSP,
                    Some(NodeId::new(0)),
                    &opts(worklist, SyncMode::Relaxed),
                );
                assert!(out.converged);
                assert_eq!(out.values, expect, "coalesced={}", overlay.is_coalesced());
            }
        }
    }

    #[test]
    fn sssp_on_physical_udt_matches_dijkstra() {
        let g = fixture();
        let expect = dijkstra(&g, NodeId::new(0));
        let t = udt_transform(&g, 4, DumbWeight::Zero);
        assert!(t.num_split_nodes() > 0);
        let out = run_monotone(
            &sim(),
            &Representation::Physical(&t),
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &opts(true, SyncMode::Relaxed),
        );
        assert!(out.converged);
        assert_eq!(t.project_values(&out.values), expect);
    }

    #[test]
    fn sssp_on_the_fly_matches_dijkstra() {
        let g = fixture();
        let expect = dijkstra(&g, NodeId::new(0));
        let out = run_monotone(
            &sim(),
            &Representation::OnTheFly {
                graph: &g,
                mapper: OnTheFlyMapper::new(&g, 4),
            },
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &opts(false, SyncMode::Relaxed),
        );
        assert!(out.converged);
        assert_eq!(out.values, expect);
    }

    #[test]
    fn physical_needs_more_iterations_than_virtual() {
        // Table 8's core observation: physical splitting increases hop
        // distances -> more iterations; virtual does not.
        let g = fixture();
        let t = udt_transform(&g, 3, DumbWeight::Zero);
        assert!(t.num_split_nodes() > 0);
        let overlay = VirtualGraph::new(&g, 3);
        let o = opts(false, SyncMode::Bsp);
        let run = |rep: &Representation<'_>| {
            run_monotone(&sim(), rep, MonotoneProgram::SSSP, Some(NodeId::new(0)), &o)
                .report
                .num_iterations()
        };
        let orig_iters = run(&Representation::Original(&g));
        let phys_iters = run(&Representation::Physical(&t));
        let virt_iters = run(&Representation::Virtual {
            graph: &g,
            overlay: &overlay,
        });
        assert!(
            phys_iters > orig_iters,
            "physical {phys_iters} vs original {orig_iters}"
        );
        assert_eq!(virt_iters, orig_iters, "implicit sync: no extra iterations");
    }

    #[test]
    fn virtual_raises_warp_efficiency() {
        let g = fixture();
        let overlay = VirtualGraph::new(&g, 4);
        let o = opts(false, SyncMode::Bsp);
        let orig = run_monotone(
            &sim(),
            &Representation::Original(&g),
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &o,
        );
        let virt = run_monotone(
            &sim(),
            &Representation::Virtual {
                graph: &g,
                overlay: &overlay,
            },
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &o,
        );
        assert!(
            virt.report.warp_efficiency() > orig.report.warp_efficiency(),
            "virtual {} should beat original {}",
            virt.report.warp_efficiency(),
            orig.report.warp_efficiency()
        );
    }

    #[test]
    fn worklist_cuts_instructions() {
        let g = fixture();
        let o_full = opts(false, SyncMode::Relaxed);
        let o_wl = opts(true, SyncMode::Relaxed);
        let full = run_monotone(
            &sim(),
            &Representation::Original(&g),
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &o_full,
        );
        let wl = run_monotone(
            &sim(),
            &Representation::Original(&g),
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &o_wl,
        );
        assert!(
            wl.report.total().instructions < full.report.total().instructions,
            "worklist {} vs full {}",
            wl.report.total().instructions,
            full.report.total().instructions
        );
    }

    #[test]
    fn cc_labels_match_components() {
        let g = fixture(); // symmetric -> weak components meaningful
        let expect = tigr_graph::properties::connected_components(&g);
        let out = run_monotone(
            &sim(),
            &Representation::Original(&g),
            MonotoneProgram::CC,
            None,
            &opts(true, SyncMode::Relaxed),
        );
        assert_eq!(out.values, expect);
    }

    #[test]
    fn sswp_matches_oracle_on_virtual() {
        let g = fixture();
        let expect = tigr_graph::properties::widest_path(&g, NodeId::new(0));
        let overlay = VirtualGraph::coalesced(&g, 4);
        let out = run_monotone(
            &sim(),
            &Representation::Virtual {
                graph: &g,
                overlay: &overlay,
            },
            MonotoneProgram::SSWP,
            Some(NodeId::new(0)),
            &opts(true, SyncMode::Relaxed),
        );
        assert_eq!(out.values, expect);
    }

    #[test]
    fn bfs_levels_match_oracle() {
        let g = fixture();
        let expect: Vec<u32> = tigr_graph::properties::bfs_levels(&g, NodeId::new(5))
            .into_iter()
            .map(|l| if l == usize::MAX { u32::MAX } else { l as u32 })
            .collect();
        // BFS ignores weights: run on the unweighted topology.
        let unweighted = g.without_weights();
        let out = run_monotone(
            &sim(),
            &Representation::Original(&unweighted),
            MonotoneProgram::BFS,
            Some(NodeId::new(5)),
            &opts(true, SyncMode::Relaxed),
        );
        assert_eq!(out.values, expect);
    }

    #[test]
    fn degree_sorted_frontier_raises_baseline_efficiency() {
        // The Table 8 effect on the *untransformed* graph: batching
        // similar degrees into warps lifts efficiency without any
        // transformation.
        let g = fixture();
        let src = NodeId::new(0);
        let run = |sort: bool| {
            run_monotone(
                &sim(),
                &Representation::Original(&g),
                MonotoneProgram::SSSP,
                Some(src),
                &PushOptions {
                    worklist: true,
                    // Degree batching reorders the compacted list, so it
                    // only bites under sparse scheduling.
                    frontier: FrontierMode::Sparse,
                    sort_frontier_by_degree: sort,
                    sync: SyncMode::Bsp,
                    max_iterations: 10_000,
                },
            )
        };
        let plain = run(false);
        let sorted = run(true);
        assert_eq!(plain.values, sorted.values);
        assert!(
            sorted.report.warp_efficiency() > plain.report.warp_efficiency(),
            "sorted {} vs plain {}",
            sorted.report.warp_efficiency(),
            plain.report.warp_efficiency()
        );
    }

    #[test]
    fn max_iterations_caps_run() {
        let g = fixture();
        let out = run_monotone(
            &sim(),
            &Representation::Original(&g),
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &PushOptions {
                worklist: false,
                frontier: FrontierMode::Auto,
                sort_frontier_by_degree: false,
                sync: SyncMode::Bsp,
                max_iterations: 1,
            },
        );
        assert!(!out.converged);
        assert_eq!(out.report.num_iterations(), 1);
    }

    #[test]
    fn frontier_modes_agree_and_cut_edges_touched() {
        let g = fixture();
        let src = NodeId::new(0);
        let run = |worklist: bool, mode: FrontierMode| {
            run_monotone(
                &sim(),
                &Representation::Original(&g),
                MonotoneProgram::SSSP,
                Some(src),
                &PushOptions {
                    worklist,
                    frontier: mode,
                    ..PushOptions::default()
                },
            )
        };
        let full = run(false, FrontierMode::Auto);
        for mode in [
            FrontierMode::Auto,
            FrontierMode::Dense,
            FrontierMode::Sparse,
        ] {
            let out = run(true, mode);
            assert!(out.converged);
            assert_eq!(out.values, full.values, "mode={mode:?}");
            assert!(
                out.edges_touched < full.edges_touched,
                "mode={mode:?}: frontier {} should touch fewer edges than full {}",
                out.edges_touched,
                full.edges_touched
            );
        }
    }

    #[test]
    fn dense_frontier_matches_sparse_on_virtual_overlay() {
        let g = fixture();
        let src = NodeId::new(0);
        let expect = dijkstra(&g, src);
        for overlay in [VirtualGraph::new(&g, 4), VirtualGraph::coalesced(&g, 4)] {
            for mode in [FrontierMode::Dense, FrontierMode::Sparse] {
                let out = run_monotone(
                    &sim(),
                    &Representation::Virtual {
                        graph: &g,
                        overlay: &overlay,
                    },
                    MonotoneProgram::SSSP,
                    Some(src),
                    &PushOptions {
                        frontier: mode,
                        ..PushOptions::default()
                    },
                );
                assert!(out.converged);
                assert_eq!(
                    out.values,
                    expect,
                    "mode={mode:?} coalesced={}",
                    overlay.is_coalesced()
                );
            }
        }
    }

    #[test]
    fn full_sweep_counts_every_edge_every_iteration() {
        let g = fixture();
        let out = run_monotone(
            &sim(),
            &Representation::Original(&g),
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &opts(false, SyncMode::Bsp),
        );
        assert_eq!(
            out.edges_touched,
            g.num_edges() as u64 * out.report.num_iterations() as u64
        );
    }

    #[test]
    fn coalesced_overlay_reduces_memory_transactions() {
        // The §4.4 effect: same work, fewer transactions per iteration.
        let g = tigr_graph::generators::star_graph(20_001); // one huge hub
        let plain = VirtualGraph::new(&g, 10);
        let coal = VirtualGraph::coalesced(&g, 10);
        let o = opts(false, SyncMode::Bsp);
        let run = |ov: &VirtualGraph| {
            run_monotone(
                &sim(),
                &Representation::Virtual {
                    graph: &g,
                    overlay: ov,
                },
                MonotoneProgram::BFS,
                Some(NodeId::new(0)),
                &o,
            )
            .report
            .total()
            .mem_transactions
        };
        let plain_tx = run(&plain);
        let coal_tx = run(&coal);
        assert!(
            coal_tx < plain_tx,
            "coalesced {coal_tx} should be below strided {plain_tx}"
        );
    }
}
