//! Real (wall-clock) parallel CPU execution of the monotone analytics.
//!
//! The simulator measures *GPU-architectural* cost; this module is the
//! complementary "actually run it fast on this machine" path used by the
//! examples and by sanity benches. It executes the same monotone
//! programs with crossbeam-scoped worker threads over node chunks and
//! the same atomic min/max value array.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use tigr_graph::{Csr, NodeId};

use crate::program::MonotoneProgram;
use crate::state::AtomicValues;

/// Result of a CPU-parallel run.
#[derive(Clone, Debug)]
pub struct CpuRunOutput {
    /// Final per-node values.
    pub values: Vec<u32>,
    /// BSP iterations executed.
    pub iterations: usize,
    /// Wall-clock time of the iteration loop.
    pub elapsed: Duration,
}

/// Runs `prog` over `g` with `threads` worker threads until convergence.
///
/// Uses relaxed synchronization (updates visible within an iteration),
/// which is safe for monotone programs and converges fastest.
///
/// # Panics
///
/// Panics if the program needs a source and none is given, if the source
/// is out of range, or if `threads == 0`.
pub fn run_cpu(
    g: &Csr,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    threads: usize,
) -> CpuRunOutput {
    assert!(threads > 0, "need at least one worker thread");
    let n = g.num_nodes();
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let start = Instant::now();
    let mut iterations = 0;

    loop {
        let changed = AtomicBool::new(false);
        let chunk = n.div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for w in 0..threads {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                let values = &values;
                let changed = &changed;
                scope.spawn(move || {
                    for v in lo..hi {
                        let node = NodeId::from_index(v);
                        let d = values.load(v);
                        for (off, &nbr) in g.neighbors(node).iter().enumerate() {
                            let e = g.edge_start(node) + off;
                            let cand = prog.edge_op.apply(d, g.weight(e));
                            if prog.combine.improves(cand, values.load(nbr.index()))
                                && values.try_improve(nbr.index(), cand, prog.combine)
                            {
                                changed.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        iterations += 1;
        if !changed.load(Ordering::Relaxed) || n == 0 {
            break;
        }
    }

    CpuRunOutput {
        values: values.snapshot(),
        iterations,
        elapsed: start.elapsed(),
    }
}

/// Number of worker threads matching the host's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_graph::properties::dijkstra;

    #[test]
    fn cpu_sssp_matches_dijkstra() {
        let g = with_uniform_weights(&rmat(&RmatConfig::graph500(9, 8), 61), 1, 32, 8);
        let expect = dijkstra(&g, NodeId::new(0));
        for threads in [1, 4] {
            let out = run_cpu(&g, MonotoneProgram::SSSP, Some(NodeId::new(0)), threads);
            assert_eq!(out.values, expect, "threads={threads}");
            assert!(out.iterations > 0);
        }
    }

    #[test]
    fn cpu_cc_matches_oracle() {
        let mut b = tigr_graph::CsrBuilder::new(6);
        b.symmetric(true);
        b.edge(0, 1).edge(1, 2).edge(3, 4);
        let g = b.build();
        let out = run_cpu(&g, MonotoneProgram::CC, None, 2);
        assert_eq!(out.values, tigr_graph::properties::connected_components(&g));
    }

    #[test]
    fn empty_graph_terminates() {
        let g = tigr_graph::CsrBuilder::new(0).build();
        let out = run_cpu(&g, MonotoneProgram::CC, None, 2);
        assert!(out.values.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let g = tigr_graph::CsrBuilder::new(1).build();
        let _ = run_cpu(&g, MonotoneProgram::CC, None, 0);
    }
}
