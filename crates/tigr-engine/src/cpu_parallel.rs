//! Real (wall-clock) parallel CPU execution of the analytics.
//!
//! The simulator measures *GPU-architectural* cost; this module is the
//! complementary "actually run it fast on this machine" path used by the
//! examples, `tigr run --cpu`, and the scheduling benches. It executes
//! the same monotone programs (plus push PageRank) over the same atomic
//! min/max value array, with work distributed by a [`CpuSchedule`]
//! policy:
//!
//! * [`CpuSchedule::NodeChunk`] — the legacy baseline: contiguous
//!   equal-*node-count* chunks, executed by threads spawned anew every
//!   BSP iteration ([`pool::SpawnPerEpoch`]). One hub node can pin a
//!   whole chunk on one worker, and short frontier iterations pay thread
//!   creation; kept selectable so the ablation bench can quantify both.
//! * [`CpuSchedule::EdgeBalanced`] — contiguous chunks covering ≈ equal
//!   *edge* counts (split on the `Csr::row_ptr` prefix sums; for
//!   frontier iterations, on the active list's degree prefix), executed
//!   by the persistent work-stealing pool ([`pool::with_pool`]).
//! * [`CpuSchedule::Virtual`] — Tigr's own abstraction (§4): work items
//!   are the degree-bounded virtual nodes of a [`VirtualGraph`], so
//!   every item touches at most `K` edges regardless of the degree
//!   distribution; frontier iterations expand active physical nodes into
//!   their virtual families through
//!   [`VirtualGraph::expand_active_into`]. Also pool-executed.
//!
//! All three policies reach the same fixpoint: the programs are
//! monotone, updates go through atomic `fetch_min`/`fetch_max`, and
//! stealing only changes *which worker* relaxes an edge, never whether
//! it is relaxed (see DESIGN.md §8). [`CpuOptions::frontier`] switches
//! the sweep from all nodes per iteration to only the nodes whose
//! values changed last iteration, collected through the same
//! deterministic [`FrontierBuilder`] the simulated engine uses.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::RwLock;
use std::time::{Duration, Instant};

use tigr_core::{CancelToken, VirtualGraph};
use tigr_graph::{Csr, NodeId};

use crate::algorithms::pr::{PrMode, PrOptions};
use crate::frontier::FrontierBuilder;
use crate::kernel::{
    csr_edges, push_relax, relax_kernel, slice_edges, EdgeFlow, EdgeRef, NoMirror,
};
use crate::pool::{self, EpochRunner};
use crate::program::MonotoneProgram;
use crate::state::{AtomicFloats, AtomicValues};

/// Work-distribution policy for the CPU engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CpuSchedule {
    /// Contiguous equal-node-count chunks, threads spawned per
    /// iteration, no stealing — the legacy baseline.
    NodeChunk,
    /// Contiguous equal-edge-count chunks on the persistent
    /// work-stealing pool (the default).
    #[default]
    EdgeBalanced,
    /// Degree-bounded virtual nodes (paper §4) on the persistent
    /// work-stealing pool.
    Virtual,
}

impl CpuSchedule {
    /// All policies, in ablation order.
    pub const ALL: [CpuSchedule; 3] = [
        CpuSchedule::NodeChunk,
        CpuSchedule::EdgeBalanced,
        CpuSchedule::Virtual,
    ];

    /// Parses a policy name as the CLI and `TIGR_CPU_SCHEDULE` accept it.
    pub fn parse(s: &str) -> Option<CpuSchedule> {
        match s {
            "node-chunk" => Some(CpuSchedule::NodeChunk),
            "edge-balanced" => Some(CpuSchedule::EdgeBalanced),
            "virtual" => Some(CpuSchedule::Virtual),
            _ => None,
        }
    }

    /// The policy's name (`"node-chunk"`, `"edge-balanced"`, `"virtual"`).
    pub fn label(self) -> &'static str {
        match self {
            CpuSchedule::NodeChunk => "node-chunk",
            CpuSchedule::EdgeBalanced => "edge-balanced",
            CpuSchedule::Virtual => "virtual",
        }
    }

    /// The policy named by the `TIGR_CPU_SCHEDULE` environment variable,
    /// if set and valid.
    pub fn from_env() -> Option<CpuSchedule> {
        std::env::var("TIGR_CPU_SCHEDULE")
            .ok()
            .and_then(|s| CpuSchedule::parse(&s))
    }
}

/// Scheduling counters of a CPU run: how evenly the edge work spread
/// over the workers and how often the pool had to rebalance.
#[derive(Clone, Debug, Default)]
pub struct ScheduleStats {
    /// Policy that produced these counters.
    pub schedule: CpuSchedule,
    /// Chunks claimed from another worker's range (always 0 for
    /// [`CpuSchedule::NodeChunk`], which cannot steal).
    pub steals: u64,
    /// Edge relaxations performed by each worker, summed over all
    /// iterations.
    pub worker_edges: Vec<u64>,
}

impl ScheduleStats {
    fn new(schedule: CpuSchedule, worker_edges: Vec<u64>) -> ScheduleStats {
        ScheduleStats {
            schedule,
            steals: 0,
            worker_edges,
        }
    }

    /// Fewest edges any worker relaxed.
    pub fn worker_edges_min(&self) -> u64 {
        self.worker_edges.iter().copied().min().unwrap_or(0)
    }

    /// Most edges any worker relaxed.
    pub fn worker_edges_max(&self) -> u64 {
        self.worker_edges.iter().copied().max().unwrap_or(0)
    }

    /// Load imbalance as `max / mean` over workers (1.0 = perfectly
    /// even; `threads` = all edges on one worker). 1.0 when no edges
    /// were relaxed.
    pub fn imbalance_ratio(&self) -> f64 {
        let total: u64 = self.worker_edges.iter().sum();
        if total == 0 || self.worker_edges.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.worker_edges.len() as f64;
        self.worker_edges_max() as f64 / mean
    }
}

/// Result of a CPU-parallel run.
#[derive(Clone, Debug)]
pub struct CpuRunOutput {
    /// Final per-node values.
    pub values: Vec<u32>,
    /// BSP iterations executed.
    pub iterations: usize,
    /// Wall-clock time of the iteration loop.
    pub elapsed: Duration,
    /// Edge relaxations attempted across all iterations.
    pub edges_touched: u64,
    /// Steal and load-balance counters.
    pub sched: ScheduleStats,
    /// `true` if a [`CancelToken`] fired at a BSP iteration boundary
    /// before the fixpoint was reached; the values hold the consistent
    /// monotone prefix computed so far.
    pub cancelled: bool,
}

/// Knobs for [`run_cpu_with`].
#[derive(Clone, Copy, Debug)]
pub struct CpuOptions {
    /// Worker threads; must be at least 1.
    pub threads: usize,
    /// Sweep only the active frontier each iteration instead of every
    /// node. Same fixpoint, fewer edge relaxations on graphs where
    /// activity is localized.
    pub frontier: bool,
    /// Work-distribution policy.
    pub schedule: CpuSchedule,
    /// Degree bound `K` for [`CpuSchedule::Virtual`] when the overlay is
    /// built internally (ignored otherwise). A CPU work item is a
    /// stealable chunk, not a warp lane, so the sweet spot is far larger
    /// than the paper's GPU-side K: big enough that per-item dispatch
    /// cost stays negligible, small enough that a hub still splinters
    /// into many stealable pieces.
    pub virtual_k: u32,
}

impl Default for CpuOptions {
    fn default() -> CpuOptions {
        CpuOptions {
            threads: default_threads(),
            frontier: false,
            schedule: CpuSchedule::default(),
            virtual_k: 256,
        }
    }
}

/// Runs `prog` over `g` with `threads` worker threads until convergence.
///
/// Full-sweep convenience wrapper around [`run_cpu_with`] using the
/// default (edge-balanced) schedule.
///
/// # Panics
///
/// Panics if the program needs a source and none is given, if the source
/// is out of range, or if `threads == 0`.
pub fn run_cpu(
    g: &Csr,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    threads: usize,
) -> CpuRunOutput {
    run_cpu_with(
        g,
        prog,
        source,
        &CpuOptions {
            threads,
            frontier: false,
            ..CpuOptions::default()
        },
    )
}

/// Runs `prog` over `g` until convergence, per `options`.
///
/// Uses relaxed synchronization (updates visible within an iteration),
/// which is safe for monotone programs and converges fastest. With
/// `options.frontier` set, each iteration relaxes only the out-edges of
/// nodes improved in the previous iteration; the active set is drained
/// in ascending node order, so the *work list* is deterministic
/// regardless of thread interleaving (and the fixpoint values always
/// are). For [`CpuSchedule::Virtual`] the overlay is built internally
/// with `options.virtual_k`; use [`run_cpu_virtual`] to reuse a
/// prebuilt one.
///
/// A run over an empty graph (`num_nodes() == 0`) performs no
/// relaxation work and reports exactly one (empty) inspection pass —
/// `iterations == 1` — without dispatching any worker.
///
/// # Panics
///
/// Panics if the program needs a source and none is given, if the source
/// is out of range, or if `options.threads == 0`.
pub fn run_cpu_with(
    g: &Csr,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    options: &CpuOptions,
) -> CpuRunOutput {
    run_cpu_with_cancellable(g, prog, source, options, &CancelToken::never())
}

/// [`run_cpu_with`] with a cooperative cancellation hook: `cancel` is
/// polled between BSP iterations (never mid-sweep), so a fired token
/// stops the run with `cancelled = true` and a consistent monotone
/// value prefix.
///
/// # Panics
///
/// See [`run_cpu_with`].
pub fn run_cpu_with_cancellable(
    g: &Csr,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    options: &CpuOptions,
    cancel: &CancelToken,
) -> CpuRunOutput {
    match options.schedule {
        CpuSchedule::Virtual => {
            let overlay = VirtualGraph::new(g, options.virtual_k.max(1));
            run_monotone_cpu(g, Some(&overlay), prog, source, options, cancel)
        }
        _ => run_monotone_cpu(g, None, prog, source, options, cancel),
    }
}

/// Runs `prog` over `g` scheduling the virtual nodes of a prebuilt
/// `overlay` (consecutive or coalesced layout), regardless of
/// `options.schedule`.
///
/// # Panics
///
/// Panics if `overlay` was not built for `g`, plus everything
/// [`run_cpu_with`] panics on.
pub fn run_cpu_virtual(
    g: &Csr,
    overlay: &VirtualGraph,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    options: &CpuOptions,
) -> CpuRunOutput {
    run_cpu_virtual_cancellable(g, overlay, prog, source, options, &CancelToken::never())
}

/// [`run_cpu_virtual`] with a cooperative cancellation hook (see
/// [`run_cpu_with_cancellable`] for the contract).
///
/// # Panics
///
/// See [`run_cpu_virtual`].
pub fn run_cpu_virtual_cancellable(
    g: &Csr,
    overlay: &VirtualGraph,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    options: &CpuOptions,
    cancel: &CancelToken,
) -> CpuRunOutput {
    assert!(
        overlay.num_physical_nodes() == g.num_nodes(),
        "overlay built for a different graph"
    );
    run_monotone_cpu(g, Some(overlay), prog, source, options, cancel)
}

/// Shared sweep state the worker body closures capture.
struct SweepState<'a> {
    g: &'a Csr,
    overlay: Option<&'a VirtualGraph>,
    prog: MonotoneProgram,
    values: AtomicValues,
    /// Frontier iterations map epoch indices through this list (node ids
    /// for physical schedules, virtual-node indices under an overlay).
    /// Full sweeps use the identity mapping and never touch it.
    items: RwLock<Vec<u32>>,
    next: FrontierBuilder,
    changed: AtomicBool,
    frontier: bool,
    worker_edges: Vec<AtomicU64>,
}

impl SweepState<'_> {
    /// Worker body: relax every item of `r`, crediting `w`'s counters.
    fn process(&self, w: usize, r: Range<usize>) {
        let mut touched = 0u64;
        if self.frontier {
            let items = self.items.read().unwrap();
            for &item in &items[r] {
                touched += self.relax(item as usize);
            }
        } else {
            for item in r {
                touched += self.relax(item);
            }
        }
        self.worker_edges[w].fetch_add(touched, Ordering::Relaxed);
    }

    fn relax(&self, item: usize) -> u64 {
        match self.overlay {
            None => self.relax_node(item),
            Some(ov) => self.relax_vnode(ov, item),
        }
    }

    fn improved(&self, target: usize) {
        if self.frontier {
            self.next.activate(target);
        } else {
            self.changed.store(true, Ordering::Relaxed);
        }
    }

    /// Relaxes every out-edge of physical node `v`, returning how many
    /// were attempted.
    fn relax_node(&self, v: usize) -> u64 {
        let node = NodeId::from_index(v);
        let d = self.values.load(v);
        // Neighbor and weight slices are loop-invariant: index `row_ptr`
        // once per node, not per edge.
        self.relax_edges(
            d,
            slice_edges(
                self.g.edge_start(node),
                self.g.neighbors(node),
                self.g.neighbor_weights(node),
            ),
        )
    }

    /// Relaxes the ≤ K edges covered by virtual node `i`. Values are
    /// read and written at the *physical* slot, so sibling virtual nodes
    /// observe each other's updates instantly (§4.1).
    fn relax_vnode(&self, ov: &VirtualGraph, i: usize) -> u64 {
        let vn = ov.vnode(i);
        let d = self.values.load(vn.physical.index());
        if vn.stride == 1 {
            // Consecutive cover: the same contiguous-slice inner loop as
            // a physical node, just over ≤ K edges.
            let (lo, hi) = (vn.first_edge as usize, (vn.first_edge + vn.count) as usize);
            let ws = self.g.weights().map(|w| &w[lo..hi]);
            self.relax_edges(d, slice_edges(lo, &self.g.col_idx()[lo..hi], ws))
        } else {
            self.relax_edges(d, csr_edges(self.g, vn.edge_indices()))
        }
    }

    #[inline]
    fn relax_edges(&self, d: u32, edges: impl Iterator<Item = EdgeRef>) -> u64 {
        push_relax(
            &mut NoMirror,
            self.prog,
            &self.values,
            None,
            d,
            edges,
            |_, target| self.improved(target),
        )
    }
}

fn run_monotone_cpu(
    g: &Csr,
    overlay: Option<&VirtualGraph>,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    options: &CpuOptions,
    cancel: &CancelToken,
) -> CpuRunOutput {
    let threads = options.threads;
    assert!(threads > 0, "need at least one worker thread");
    let schedule = if overlay.is_some() {
        CpuSchedule::Virtual
    } else {
        options.schedule
    };
    let n = g.num_nodes();
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let start = Instant::now();
    if n == 0 {
        // Nothing to sweep: report the single empty inspection pass
        // without dispatching a worker (let alone spawning one).
        return CpuRunOutput {
            values: values.snapshot(),
            iterations: 1,
            elapsed: start.elapsed(),
            edges_touched: 0,
            sched: ScheduleStats::new(schedule, vec![0; threads]),
            cancelled: false,
        };
    }

    let state = SweepState {
        g,
        overlay,
        prog,
        values,
        items: RwLock::new(Vec::new()),
        next: FrontierBuilder::new(n),
        changed: AtomicBool::new(false),
        frontier: options.frontier,
        worker_edges: (0..threads).map(|_| AtomicU64::new(0)).collect(),
    };
    let body = |w: usize, r: Range<usize>| state.process(w, r);

    let ((iterations, cancelled), steals) = if schedule == CpuSchedule::NodeChunk {
        let runner = pool::SpawnPerEpoch::new(threads, &body);
        (drive_monotone(&state, &runner, source, schedule, cancel), 0)
    } else {
        pool::with_pool(threads, &body, |p| {
            (
                drive_monotone(&state, p, source, schedule, cancel),
                p.steals(),
            )
        })
    };

    let worker_edges: Vec<u64> = state
        .worker_edges
        .iter()
        .map(|e| e.load(Ordering::Relaxed))
        .collect();
    CpuRunOutput {
        values: state.values.snapshot(),
        iterations,
        elapsed: start.elapsed(),
        edges_touched: worker_edges.iter().sum(),
        sched: ScheduleStats {
            schedule,
            steals,
            worker_edges,
        },
        cancelled,
    }
}

/// The BSP driver loop, shared by all schedules and executors. Returns
/// `(iterations, cancelled)`; the token is polled between epochs only,
/// so a cancelled run still ends on a consistent iteration boundary.
fn drive_monotone(
    state: &SweepState<'_>,
    runner: &dyn EpochRunner,
    source: Option<NodeId>,
    schedule: CpuSchedule,
    cancel: &CancelToken,
) -> (usize, bool) {
    let g = state.g;
    let n = g.num_nodes();
    let threads = runner.workers();
    let mut bounds = vec![(0usize, 0usize); threads];
    let mut iterations = 0usize;

    if state.frontier {
        let mut active: Vec<u32> = state.prog.initial_frontier(n, source);
        active.sort_unstable();
        active.dedup();
        let mut degree_prefix: Vec<u64> = Vec::new();
        while !active.is_empty() {
            if cancel.is_cancelled() {
                return (iterations.max(1), true);
            }
            let nitems = {
                let mut items = state.items.write().unwrap();
                match state.overlay {
                    Some(ov) => ov.expand_active_into(&active, &mut items),
                    None => {
                        items.clear();
                        items.extend_from_slice(&active);
                    }
                }
                items.len()
            };
            match schedule {
                CpuSchedule::EdgeBalanced => {
                    degree_prefix.clear();
                    degree_prefix.push(0);
                    let mut acc = 0u64;
                    for &v in &active {
                        acc += g.out_degree(NodeId::new(v)) as u64;
                        degree_prefix.push(acc);
                    }
                    balanced_cuts(&degree_prefix, &mut bounds);
                }
                // Virtual items are degree-bounded, so an even item
                // split is already edge-balanced to within K.
                _ => count_bounds(nitems, &mut bounds),
            }
            runner.run_epoch(&bounds);
            iterations += 1;
            state.next.drain_into(&mut active);
        }
        // A frontier run with nothing initially active still counts as
        // one (empty) inspection pass, matching the full-sweep loop.
        (iterations.max(1), false)
    } else {
        // Static partition, computed once: the item space never changes.
        match (schedule, state.overlay) {
            (CpuSchedule::EdgeBalanced, None) => {
                let prefix: Vec<u64> = g.row_ptr().iter().map(|&e| e as u64).collect();
                balanced_cuts(&prefix, &mut bounds);
            }
            (_, Some(ov)) => count_bounds(ov.num_virtual_nodes(), &mut bounds),
            _ => count_bounds(n, &mut bounds),
        }
        loop {
            if cancel.is_cancelled() {
                return (iterations, true);
            }
            state.changed.store(false, Ordering::Relaxed);
            runner.run_epoch(&bounds);
            iterations += 1;
            if !state.changed.load(Ordering::Relaxed) {
                break;
            }
        }
        (iterations, false)
    }
}

/// Contiguous equal-item-count partition — the legacy node-chunk split.
/// Shared with the batched executor ([`crate::batch`]).
pub(crate) fn count_bounds(total: usize, bounds: &mut [(usize, usize)]) {
    let chunk = total.div_ceil(bounds.len()).max(1);
    for (w, b) in bounds.iter_mut().enumerate() {
        *b = ((w * chunk).min(total), ((w + 1) * chunk).min(total));
    }
}

/// Contiguous partition of `prefix.len() - 1` items so every part covers
/// ≈ equal weight, where `prefix[i]` is the total weight of items
/// `0..i` (e.g. `Csr::row_ptr`: equal *edge* counts per part).
/// Shared with the batched executor ([`crate::batch`]).
pub(crate) fn balanced_cuts(prefix: &[u64], bounds: &mut [(usize, usize)]) {
    let parts = bounds.len();
    let items = prefix.len() - 1;
    let total = prefix[items];
    if total == 0 {
        count_bounds(items, bounds);
        return;
    }
    let mut prev = 0usize;
    for (w, b) in bounds.iter_mut().enumerate() {
        let hi = if w + 1 == parts {
            items
        } else {
            let target = total * (w as u64 + 1) / parts as u64;
            prefix.partition_point(|&c| c < target).min(items).max(prev)
        };
        *b = (prev, hi);
        prev = hi;
    }
}

/// Result of a CPU PageRank run.
#[derive(Clone, Debug)]
pub struct CpuPrOutput {
    /// Final ranks, summing to ≈ 1.
    pub ranks: Vec<f32>,
    /// Power iterations executed.
    pub iterations: usize,
    /// `false` if `max_iterations` hit before `tolerance`.
    pub converged: bool,
    /// Wall-clock time of the iteration loop.
    pub elapsed: Duration,
    /// Rank contributions scattered (one per out-edge per iteration).
    pub edges_touched: u64,
    /// Steal and load-balance counters.
    pub sched: ScheduleStats,
    /// `true` if a [`CancelToken`] fired between power iterations before
    /// `tolerance` was reached.
    pub cancelled: bool,
}

/// Shared PageRank state; the worker body dispatches on `phase`.
struct PrState<'a> {
    g: &'a Csr,
    overlay: Option<&'a VirtualGraph>,
    ranks: AtomicFloats,
    accum: AtomicFloats,
    out_degrees: Vec<u32>,
    damping: f32,
    /// `(1 - d)/n + d·dangling/n`, published by the driver before each
    /// finalize phase (f32 bits).
    base_bits: AtomicU64,
    /// 0 = scatter, 1 = finalize.
    phase: AtomicU8,
    /// Per-worker L1-delta partials (f64 bits; each slot has a single
    /// writer — the worker that owns it).
    worker_delta: Vec<AtomicU64>,
    worker_edges: Vec<AtomicU64>,
}

const PHASE_SCATTER: u8 = 0;
const PHASE_FINALIZE: u8 = 1;

impl PrState<'_> {
    fn process(&self, w: usize, r: Range<usize>) {
        match self.phase.load(Ordering::Relaxed) {
            PHASE_SCATTER => self.scatter(w, r),
            _ => self.finalize(w, r),
        }
    }

    /// Scatter `rank/outdeg` along the out-edges of the items in `r`
    /// (physical nodes, or virtual nodes under an overlay).
    fn scatter(&self, w: usize, r: Range<usize>) {
        let mut touched = 0u64;
        let spread = |share: f32| {
            move |_: &mut NoMirror, edge: EdgeRef| {
                self.accum.fetch_add(edge.target, share);
                EdgeFlow::Continue
            }
        };
        match self.overlay {
            None => {
                for v in r {
                    let deg = self.out_degrees[v];
                    if deg == 0 {
                        continue;
                    }
                    let share = self.ranks.load(v) / deg as f32;
                    let node = NodeId::from_index(v);
                    touched += relax_kernel(
                        &mut NoMirror,
                        slice_edges(self.g.edge_start(node), self.g.neighbors(node), None),
                        spread(share),
                    );
                }
            }
            Some(ov) => {
                for i in r {
                    let vn = ov.vnode(i);
                    if vn.count == 0 {
                        continue;
                    }
                    let p = vn.physical.index();
                    let share = self.ranks.load(p) / self.out_degrees[p] as f32;
                    touched += if vn.stride == 1 {
                        let (lo, hi) =
                            (vn.first_edge as usize, (vn.first_edge + vn.count) as usize);
                        relax_kernel(
                            &mut NoMirror,
                            slice_edges(lo, &self.g.col_idx()[lo..hi], None),
                            spread(share),
                        )
                    } else {
                        relax_kernel(
                            &mut NoMirror,
                            csr_edges(self.g, vn.edge_indices()),
                            spread(share),
                        )
                    };
                }
            }
        }
        self.worker_edges[w].fetch_add(touched, Ordering::Relaxed);
    }

    /// `rank = base + d·accum` over the node range `r`, accumulating the
    /// worker's share of the L1 delta.
    fn finalize(&self, w: usize, r: Range<usize>) {
        let base = f32::from_bits(self.base_bits.load(Ordering::Relaxed) as u32);
        let mut delta = 0.0f64;
        for v in r {
            let new = base + self.damping * self.accum.load(v);
            let old = self.ranks.load(v);
            self.ranks.store(v, new);
            delta += (new - old).abs() as f64;
        }
        let slot = &self.worker_delta[w];
        let prev = f64::from_bits(slot.load(Ordering::Relaxed));
        slot.store((prev + delta).to_bits(), Ordering::Relaxed);
    }
}

/// Runs push-mode PageRank over `g` on the CPU, scheduled per
/// `cpu_options` — the wall-clock counterpart of
/// [`crate::algorithms::pr::run`]. Dangling mass redistributes
/// uniformly; iteration stops when the L1 rank change drops below
/// `options.tolerance` or at `options.max_iterations`.
///
/// Rank accumulation order varies with worker interleaving, so ranks are
/// deterministic only to floating-point rounding (compare with a
/// tolerance); the monotone analytics in [`run_cpu_with`] have no such
/// caveat.
///
/// # Panics
///
/// Panics if `options.mode` is [`PrMode::Pull`] (the CPU path schedules
/// the forward graph only) or `cpu_options.threads == 0`.
pub fn run_cpu_pr(g: &Csr, options: &PrOptions, cpu_options: &CpuOptions) -> CpuPrOutput {
    run_cpu_pr_cancellable(g, options, cpu_options, &CancelToken::never())
}

/// [`run_cpu_pr`] with a cooperative cancellation hook polled between
/// power iterations (see [`run_cpu_with_cancellable`] for the contract).
///
/// # Panics
///
/// See [`run_cpu_pr`].
pub fn run_cpu_pr_cancellable(
    g: &Csr,
    options: &PrOptions,
    cpu_options: &CpuOptions,
    cancel: &CancelToken,
) -> CpuPrOutput {
    assert!(
        options.mode == PrMode::Push,
        "CPU PageRank supports push mode only"
    );
    let threads = cpu_options.threads;
    assert!(threads > 0, "need at least one worker thread");
    let n = g.num_nodes();
    let start = Instant::now();
    let schedule = cpu_options.schedule;
    if n == 0 {
        return CpuPrOutput {
            ranks: Vec::new(),
            iterations: 0,
            converged: true,
            elapsed: start.elapsed(),
            edges_touched: 0,
            sched: ScheduleStats::new(schedule, vec![0; threads]),
            cancelled: false,
        };
    }

    let overlay = match schedule {
        CpuSchedule::Virtual => Some(VirtualGraph::new(g, cpu_options.virtual_k.max(1))),
        _ => None,
    };
    let state = PrState {
        g,
        overlay: overlay.as_ref(),
        ranks: AtomicFloats::new(n, 1.0 / n as f32),
        accum: AtomicFloats::new(n, 0.0),
        out_degrees: g.nodes().map(|v| g.out_degree(v) as u32).collect(),
        damping: options.damping,
        base_bits: AtomicU64::new(0),
        phase: AtomicU8::new(PHASE_SCATTER),
        worker_delta: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        worker_edges: (0..threads).map(|_| AtomicU64::new(0)).collect(),
    };
    let body = |w: usize, r: Range<usize>| state.process(w, r);

    let ((iterations, converged, cancelled), steals) = if schedule == CpuSchedule::NodeChunk {
        let runner = pool::SpawnPerEpoch::new(threads, &body);
        (drive_pr(&state, &runner, options, schedule, cancel), 0)
    } else {
        pool::with_pool(threads, &body, |p| {
            (drive_pr(&state, p, options, schedule, cancel), p.steals())
        })
    };

    let worker_edges: Vec<u64> = state
        .worker_edges
        .iter()
        .map(|e| e.load(Ordering::Relaxed))
        .collect();
    CpuPrOutput {
        ranks: state.ranks.snapshot(),
        iterations,
        converged,
        elapsed: start.elapsed(),
        edges_touched: worker_edges.iter().sum(),
        sched: ScheduleStats {
            schedule,
            steals,
            worker_edges,
        },
        cancelled,
    }
}

fn drive_pr(
    state: &PrState<'_>,
    runner: &dyn EpochRunner,
    options: &PrOptions,
    schedule: CpuSchedule,
    cancel: &CancelToken,
) -> (usize, bool, bool) {
    let g = state.g;
    let n = g.num_nodes();
    let threads = runner.workers();

    // Scatter partition over the schedule's item space, computed once
    // (PageRank full-sweeps every iteration).
    let mut scatter_bounds = vec![(0usize, 0usize); threads];
    match (schedule, state.overlay) {
        (CpuSchedule::EdgeBalanced, None) => {
            let prefix: Vec<u64> = g.row_ptr().iter().map(|&e| e as u64).collect();
            balanced_cuts(&prefix, &mut scatter_bounds);
        }
        (_, Some(ov)) => count_bounds(ov.num_virtual_nodes(), &mut scatter_bounds),
        _ => count_bounds(n, &mut scatter_bounds),
    }
    // Finalize is O(1) per node: an even node split is balanced.
    let mut finalize_bounds = vec![(0usize, 0usize); threads];
    count_bounds(n, &mut finalize_bounds);
    // Dangling nodes never change; reduce their rank mass on the driver.
    let dangling: Vec<usize> = (0..n).filter(|&v| state.out_degrees[v] == 0).collect();

    let mut iterations = 0usize;
    for _ in 0..options.max_iterations {
        if cancel.is_cancelled() {
            return (iterations, false, true);
        }
        state.accum.fill(0.0);
        state.phase.store(PHASE_SCATTER, Ordering::Relaxed);
        runner.run_epoch(&scatter_bounds);

        let dangling_mass: f64 = dangling.iter().map(|&v| state.ranks.load(v) as f64).sum();
        let base = (1.0 - options.damping) / n as f32
            + options.damping * (dangling_mass as f32) / n as f32;
        state
            .base_bits
            .store(base.to_bits() as u64, Ordering::Relaxed);
        for slot in &state.worker_delta {
            slot.store(0.0f64.to_bits(), Ordering::Relaxed);
        }
        state.phase.store(PHASE_FINALIZE, Ordering::Relaxed);
        runner.run_epoch(&finalize_bounds);

        iterations += 1;
        let delta: f64 = state
            .worker_delta
            .iter()
            .map(|s| f64::from_bits(s.load(Ordering::Relaxed)))
            .sum();
        if delta < options.tolerance as f64 {
            return (iterations, true, false);
        }
    }
    (iterations, false, false)
}

/// Number of worker threads matching the host's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_graph::properties::dijkstra;

    fn opts(threads: usize, frontier: bool, schedule: CpuSchedule) -> CpuOptions {
        CpuOptions {
            threads,
            frontier,
            schedule,
            ..CpuOptions::default()
        }
    }

    #[test]
    fn cpu_sssp_matches_dijkstra_under_every_schedule() {
        let g = with_uniform_weights(&rmat(&RmatConfig::graph500(9, 8), 61), 1, 32, 8);
        let expect = dijkstra(&g, NodeId::new(0));
        for schedule in CpuSchedule::ALL {
            for threads in [1, 4] {
                let out = run_cpu_with(
                    &g,
                    MonotoneProgram::SSSP,
                    Some(NodeId::new(0)),
                    &opts(threads, false, schedule),
                );
                assert_eq!(out.values, expect, "{}/threads={threads}", schedule.label());
                assert!(out.iterations > 0);
                assert_eq!(out.sched.schedule, schedule);
                assert_eq!(
                    out.sched.worker_edges.iter().sum::<u64>(),
                    out.edges_touched
                );
            }
        }
    }

    #[test]
    fn frontier_matches_full_sweep_and_touches_fewer_edges() {
        let g = with_uniform_weights(&rmat(&RmatConfig::graph500(9, 8), 61), 1, 32, 8);
        let src = Some(NodeId::new(0));
        let full = run_cpu_with(
            &g,
            MonotoneProgram::SSSP,
            src,
            &opts(4, false, CpuSchedule::EdgeBalanced),
        );
        for schedule in CpuSchedule::ALL {
            for threads in [1, 4] {
                let frontier = run_cpu_with(
                    &g,
                    MonotoneProgram::SSSP,
                    src,
                    &opts(threads, true, schedule),
                );
                assert_eq!(
                    frontier.values,
                    full.values,
                    "{}/threads={threads}",
                    schedule.label()
                );
                assert!(
                    frontier.edges_touched < full.edges_touched,
                    "{}/threads={threads}: frontier {} vs full {}",
                    schedule.label(),
                    frontier.edges_touched,
                    full.edges_touched
                );
            }
        }
    }

    #[test]
    fn full_sweep_charges_all_edges_every_iteration() {
        let g = with_uniform_weights(&rmat(&RmatConfig::graph500(8, 8), 7), 1, 32, 8);
        let out = run_cpu(&g, MonotoneProgram::SSSP, Some(NodeId::new(0)), 2);
        assert_eq!(
            out.edges_touched,
            g.num_edges() as u64 * out.iterations as u64
        );
    }

    #[test]
    fn cpu_cc_matches_oracle() {
        let mut b = tigr_graph::CsrBuilder::new(6);
        b.symmetric(true);
        b.edge(0, 1).edge(1, 2).edge(3, 4);
        let g = b.build();
        for schedule in CpuSchedule::ALL {
            let out = run_cpu_with(&g, MonotoneProgram::CC, None, &opts(2, false, schedule));
            assert_eq!(
                out.values,
                tigr_graph::properties::connected_components(&g),
                "{}",
                schedule.label()
            );
        }
    }

    #[test]
    fn frontier_cc_matches_oracle() {
        let mut b = tigr_graph::CsrBuilder::new(7);
        b.symmetric(true);
        b.edge(0, 1).edge(1, 2).edge(3, 4).edge(5, 5);
        let g = b.build();
        let out = run_cpu_with(
            &g,
            MonotoneProgram::CC,
            None,
            &opts(3, true, CpuSchedule::Virtual),
        );
        assert_eq!(out.values, tigr_graph::properties::connected_components(&g));
    }

    #[test]
    fn prebuilt_coalesced_overlay_is_accepted() {
        let g = with_uniform_weights(&rmat(&RmatConfig::graph500(8, 8), 5), 1, 16, 3);
        let expect = dijkstra(&g, NodeId::new(0));
        let ov = VirtualGraph::coalesced(&g, 4);
        let out = run_cpu_virtual(
            &g,
            &ov,
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &opts(3, true, CpuSchedule::EdgeBalanced), // schedule is overridden
        );
        assert_eq!(out.values, expect);
        assert_eq!(out.sched.schedule, CpuSchedule::Virtual);
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn mismatched_overlay_rejected() {
        let g = tigr_graph::generators::star_graph(10);
        let other = tigr_graph::generators::star_graph(11);
        let ov = VirtualGraph::new(&other, 4);
        let _ = run_cpu_virtual(&g, &ov, MonotoneProgram::CC, None, &CpuOptions::default());
    }

    #[test]
    fn empty_graph_terminates_without_dispatch() {
        let g = tigr_graph::CsrBuilder::new(0).build();
        for schedule in CpuSchedule::ALL {
            for frontier in [false, true] {
                let out = run_cpu_with(&g, MonotoneProgram::CC, None, &opts(2, frontier, schedule));
                assert!(out.values.is_empty());
                assert_eq!(out.iterations, 1);
                assert_eq!(out.edges_touched, 0);
            }
        }
    }

    #[test]
    fn schedule_parsing_round_trips() {
        for schedule in CpuSchedule::ALL {
            assert_eq!(CpuSchedule::parse(schedule.label()), Some(schedule));
        }
        assert_eq!(CpuSchedule::parse("chunked"), None);
        assert_eq!(CpuSchedule::default(), CpuSchedule::EdgeBalanced);
    }

    #[test]
    fn stats_report_imbalance() {
        let even = ScheduleStats {
            schedule: CpuSchedule::EdgeBalanced,
            steals: 0,
            worker_edges: vec![100, 100, 100, 100],
        };
        assert_eq!(even.worker_edges_min(), 100);
        assert_eq!(even.worker_edges_max(), 100);
        assert!((even.imbalance_ratio() - 1.0).abs() < 1e-12);
        let skewed = ScheduleStats {
            schedule: CpuSchedule::NodeChunk,
            steals: 0,
            worker_edges: vec![400, 0, 0, 0],
        };
        assert!((skewed.imbalance_ratio() - 4.0).abs() < 1e-12);
        assert_eq!(ScheduleStats::default().imbalance_ratio(), 1.0);
    }

    #[test]
    fn balanced_cuts_split_by_weight() {
        // Items with weights 10, 0, 0, 0, 10: two parts should split the
        // hub items apart instead of 3-vs-2 by count.
        let prefix = [0u64, 10, 10, 10, 10, 20];
        let mut bounds = vec![(0, 0); 2];
        balanced_cuts(&prefix, &mut bounds);
        assert_eq!(bounds, vec![(0, 1), (1, 5)]);
        // Degenerate: all weight zero falls back to count split.
        let mut bounds = vec![(0, 0); 2];
        balanced_cuts(&[0u64, 0, 0, 0, 0], &mut bounds);
        assert_eq!(bounds, vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn cpu_pr_matches_power_iteration_under_every_schedule() {
        let g = rmat(&RmatConfig::graph500(7, 6), 41);
        let expect = tigr_graph::properties::pagerank(&g, 0.85, 60);
        let pr_opts = PrOptions {
            damping: 0.85,
            tolerance: 1e-7,
            max_iterations: 60,
            mode: PrMode::Push,
        };
        for schedule in CpuSchedule::ALL {
            for threads in [1, 4] {
                let out = run_cpu_pr(&g, &pr_opts, &opts(threads, false, schedule));
                assert!(out.converged, "{}/threads={threads}", schedule.label());
                for (i, (&got, &want)) in out.ranks.iter().zip(&expect).enumerate() {
                    assert!(
                        (got as f64 - want).abs() < 1e-4,
                        "{}/threads={threads}: rank[{i}] {got} vs {want}",
                        schedule.label()
                    );
                }
                let total: f32 = out.ranks.iter().sum();
                assert!((total - 1.0).abs() < 1e-3, "ranks sum to {total}");
                assert!(out.edges_touched >= g.num_edges() as u64);
            }
        }
    }

    #[test]
    fn cpu_pr_empty_graph() {
        let g = tigr_graph::CsrBuilder::new(0).build();
        let out = run_cpu_pr(&g, &PrOptions::default(), &CpuOptions::default());
        assert!(out.ranks.is_empty());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    #[should_panic(expected = "push mode only")]
    fn cpu_pr_rejects_pull() {
        let g = tigr_graph::generators::star_graph(4);
        let _ = run_cpu_pr(
            &g,
            &PrOptions {
                mode: PrMode::Pull,
                ..PrOptions::default()
            },
            &CpuOptions::default(),
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let g = tigr_graph::CsrBuilder::new(1).build();
        let _ = run_cpu(&g, MonotoneProgram::CC, None, 0);
    }
}
