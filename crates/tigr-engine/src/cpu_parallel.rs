//! Real (wall-clock) parallel CPU execution of the monotone analytics.
//!
//! The simulator measures *GPU-architectural* cost; this module is the
//! complementary "actually run it fast on this machine" path used by the
//! examples and by sanity benches. It executes the same monotone
//! programs with scoped worker threads over node chunks and the same
//! atomic min/max value array. [`CpuOptions::frontier`] switches the
//! sweep from all nodes per iteration to only the nodes whose values
//! changed last iteration, collected through the same deterministic
//! [`FrontierBuilder`] the simulated engine uses.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tigr_graph::{Csr, NodeId};

use crate::frontier::{FrontierBuilder, FrontierMode};
use crate::program::MonotoneProgram;
use crate::state::AtomicValues;

/// Result of a CPU-parallel run.
#[derive(Clone, Debug)]
pub struct CpuRunOutput {
    /// Final per-node values.
    pub values: Vec<u32>,
    /// BSP iterations executed.
    pub iterations: usize,
    /// Wall-clock time of the iteration loop.
    pub elapsed: Duration,
    /// Edge relaxations attempted across all iterations.
    pub edges_touched: u64,
}

/// Knobs for [`run_cpu_with`].
#[derive(Clone, Copy, Debug)]
pub struct CpuOptions {
    /// Worker threads; must be at least 1.
    pub threads: usize,
    /// Sweep only the active frontier each iteration instead of every
    /// node. Same fixpoint, fewer edge relaxations on graphs where
    /// activity is localized.
    pub frontier: bool,
}

impl Default for CpuOptions {
    fn default() -> CpuOptions {
        CpuOptions {
            threads: default_threads(),
            frontier: false,
        }
    }
}

/// Runs `prog` over `g` with `threads` worker threads until convergence.
///
/// Full-sweep convenience wrapper around [`run_cpu_with`].
///
/// # Panics
///
/// Panics if the program needs a source and none is given, if the source
/// is out of range, or if `threads == 0`.
pub fn run_cpu(
    g: &Csr,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    threads: usize,
) -> CpuRunOutput {
    run_cpu_with(
        g,
        prog,
        source,
        &CpuOptions {
            threads,
            frontier: false,
        },
    )
}

/// Runs `prog` over `g` until convergence, per `options`.
///
/// Uses relaxed synchronization (updates visible within an iteration),
/// which is safe for monotone programs and converges fastest. With
/// `options.frontier` set, each iteration relaxes only the out-edges of
/// nodes improved in the previous iteration; the active set is drained
/// in ascending node order, so the schedule is deterministic regardless
/// of thread interleaving.
///
/// # Panics
///
/// Panics if the program needs a source and none is given, if the source
/// is out of range, or if `options.threads == 0`.
pub fn run_cpu_with(
    g: &Csr,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    options: &CpuOptions,
) -> CpuRunOutput {
    let threads = options.threads;
    assert!(threads > 0, "need at least one worker thread");
    let n = g.num_nodes();
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let edges_touched = AtomicU64::new(0);
    let start = Instant::now();
    let mut iterations = 0;

    // Relaxes every out-edge of `v`, returning how many were attempted
    // and reporting each improved target to `improved`.
    let relax = |v: usize, improved: &dyn Fn(usize)| -> u64 {
        let node = NodeId::from_index(v);
        let d = values.load(v);
        let nbrs = g.neighbors(node);
        for (off, &nbr) in nbrs.iter().enumerate() {
            let e = g.edge_start(node) + off;
            let cand = prog.edge_op.apply(d, g.weight(e));
            if prog.combine.improves(cand, values.load(nbr.index()))
                && values.try_improve(nbr.index(), cand, prog.combine)
            {
                improved(nbr.index());
            }
        }
        nbrs.len() as u64
    };

    if options.frontier {
        let mut active: Vec<u32> = prog.initial_frontier(n, source);
        active.sort_unstable();
        active.dedup();
        let next = FrontierBuilder::new(n);
        while !active.is_empty() {
            let chunk = active.len().div_ceil(threads).max(1);
            std::thread::scope(|scope| {
                for slice in active.chunks(chunk) {
                    let (next, edges_touched, relax) = (&next, &edges_touched, &relax);
                    scope.spawn(move || {
                        let mut touched = 0;
                        for &v in slice {
                            touched += relax(v as usize, &|t| {
                                next.activate(t);
                            });
                        }
                        edges_touched.fetch_add(touched, Ordering::Relaxed);
                    });
                }
            });
            iterations += 1;
            active = next.take(FrontierMode::Sparse).nodes().to_vec();
        }
        // A frontier run with nothing initially active still counts as
        // one (empty) inspection pass, matching the full-sweep loop.
        iterations = iterations.max(1);
    } else {
        loop {
            let changed = AtomicBool::new(false);
            let chunk = n.div_ceil(threads).max(1);
            std::thread::scope(|scope| {
                for w in 0..threads {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    if lo >= hi {
                        continue;
                    }
                    let (changed, edges_touched, relax) = (&changed, &edges_touched, &relax);
                    scope.spawn(move || {
                        let mut touched = 0;
                        for v in lo..hi {
                            touched += relax(v, &|_| {
                                changed.store(true, Ordering::Relaxed);
                            });
                        }
                        edges_touched.fetch_add(touched, Ordering::Relaxed);
                    });
                }
            });
            iterations += 1;
            if !changed.load(Ordering::Relaxed) || n == 0 {
                break;
            }
        }
    }

    CpuRunOutput {
        values: values.snapshot(),
        iterations,
        elapsed: start.elapsed(),
        edges_touched: edges_touched.into_inner(),
    }
}

/// Number of worker threads matching the host's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_graph::properties::dijkstra;

    #[test]
    fn cpu_sssp_matches_dijkstra() {
        let g = with_uniform_weights(&rmat(&RmatConfig::graph500(9, 8), 61), 1, 32, 8);
        let expect = dijkstra(&g, NodeId::new(0));
        for threads in [1, 4] {
            let out = run_cpu(&g, MonotoneProgram::SSSP, Some(NodeId::new(0)), threads);
            assert_eq!(out.values, expect, "threads={threads}");
            assert!(out.iterations > 0);
        }
    }

    #[test]
    fn frontier_matches_full_sweep_and_touches_fewer_edges() {
        let g = with_uniform_weights(&rmat(&RmatConfig::graph500(9, 8), 61), 1, 32, 8);
        let src = Some(NodeId::new(0));
        let full = run_cpu_with(
            &g,
            MonotoneProgram::SSSP,
            src,
            &CpuOptions {
                threads: 4,
                frontier: false,
            },
        );
        for threads in [1, 4] {
            let frontier = run_cpu_with(
                &g,
                MonotoneProgram::SSSP,
                src,
                &CpuOptions {
                    threads,
                    frontier: true,
                },
            );
            assert_eq!(frontier.values, full.values, "threads={threads}");
            assert!(
                frontier.edges_touched < full.edges_touched,
                "threads={threads}: frontier {} vs full {}",
                frontier.edges_touched,
                full.edges_touched
            );
        }
    }

    #[test]
    fn full_sweep_charges_all_edges_every_iteration() {
        let g = with_uniform_weights(&rmat(&RmatConfig::graph500(8, 8), 7), 1, 32, 8);
        let out = run_cpu(&g, MonotoneProgram::SSSP, Some(NodeId::new(0)), 2);
        assert_eq!(
            out.edges_touched,
            g.num_edges() as u64 * out.iterations as u64
        );
    }

    #[test]
    fn cpu_cc_matches_oracle() {
        let mut b = tigr_graph::CsrBuilder::new(6);
        b.symmetric(true);
        b.edge(0, 1).edge(1, 2).edge(3, 4);
        let g = b.build();
        let out = run_cpu(&g, MonotoneProgram::CC, None, 2);
        assert_eq!(out.values, tigr_graph::properties::connected_components(&g));
    }

    #[test]
    fn frontier_cc_matches_oracle() {
        let mut b = tigr_graph::CsrBuilder::new(7);
        b.symmetric(true);
        b.edge(0, 1).edge(1, 2).edge(3, 4).edge(5, 5);
        let g = b.build();
        let out = run_cpu_with(
            &g,
            MonotoneProgram::CC,
            None,
            &CpuOptions {
                threads: 3,
                frontier: true,
            },
        );
        assert_eq!(out.values, tigr_graph::properties::connected_components(&g));
    }

    #[test]
    fn empty_graph_terminates() {
        let g = tigr_graph::CsrBuilder::new(0).build();
        for frontier in [false, true] {
            let out = run_cpu_with(
                &g,
                MonotoneProgram::CC,
                None,
                &CpuOptions {
                    threads: 2,
                    frontier,
                },
            );
            assert!(out.values.is_empty());
            assert_eq!(out.iterations, 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let g = tigr_graph::CsrBuilder::new(1).build();
        let _ = run_cpu(&g, MonotoneProgram::CC, None, 0);
    }
}
