//! Simulated device-memory layout.
//!
//! Kernels report every load, store, and atomic to the simulator with a
//! *simulated byte address* so the coalescing model can group a warp's
//! accesses into transactions. This module fixes where each logical array
//! lives in the simulated address space. Regions are far apart, so
//! accesses to different arrays never share a cache line — matching the
//! separate `cudaMalloc` allocations of the original implementation.

/// Base address of the per-node value array (`distance[]` in Algorithm 2).
pub const VALUE_BASE: u64 = 0x1000_0000;

/// Base address of the flat edge array. Each entry is 8 bytes — the
/// `{nbr, weight}` struct the paper's kernels read per edge.
pub const EDGE_BASE: u64 = 0x2000_0000;

/// Base address of the virtual node array (Figure 10b).
pub const VNODE_BASE: u64 = 0x3000_0000;

/// Base address of the CSR row-pointer (`nodes[]`) array.
pub const ROW_PTR_BASE: u64 = 0x4000_0000;

/// Base address of the worklist / frontier array.
pub const FRONTIER_BASE: u64 = 0x5000_0000;

/// Base address of auxiliary per-node arrays (σ, δ, out-degrees…); each
/// of the eight arrays gets a 256 MiB region.
pub const AUX_BASE: u64 = 0x1_0000_0000;

/// Address of the global `finished` flag.
pub const FLAG_ADDR: u64 = 0x9_0000_0000;

/// Byte width of one edge entry (`{nbr: u32, weight: u32}`).
pub const EDGE_ENTRY_BYTES: u64 = 8;

/// Address of the value slot of node `v`.
pub const fn value_addr(v: usize) -> u64 {
    VALUE_BASE + (v as u64) * 4
}

/// Address of the edge entry at flat index `e`.
pub const fn edge_addr(e: usize) -> u64 {
    EDGE_BASE + (e as u64) * EDGE_ENTRY_BYTES
}

/// Address of virtual-node-array entry `i` (8-byte entries; the coalesced
/// layout's 12-byte entries use the same stride for address modeling —
/// the extra field rides in the same cache line).
pub const fn vnode_addr(i: usize) -> u64 {
    VNODE_BASE + (i as u64) * 8
}

/// Address of row-pointer entry `v`.
pub const fn row_ptr_addr(v: usize) -> u64 {
    ROW_PTR_BASE + (v as u64) * 4
}

/// Address of frontier slot `i`.
pub const fn frontier_addr(i: usize) -> u64 {
    FRONTIER_BASE + (i as u64) * 4
}

/// Base address of the dense frontier bitmap (one bit per node), placed
/// past the compacted-list region so the two forms never share lines.
pub const FRONTIER_BITMAP_BASE: u64 = 0x5800_0000;

/// Address of the bitmap word holding node `v`'s active bit (32 bits per
/// 4-byte word, so 32 consecutive nodes share one word).
pub const fn frontier_bit_addr(v: usize) -> u64 {
    FRONTIER_BITMAP_BASE + (v as u64 / 32) * 4
}

/// Address of auxiliary array slot `v` (array `which` ∈ 0..8).
pub const fn aux_addr(which: u64, v: usize) -> u64 {
    AUX_BASE + which * 0x1000_0000 + (v as u64) * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap_at_scale() {
        // 16M nodes / edges stay within their regions.
        let n = 16_000_000;
        assert!(value_addr(n) < EDGE_BASE);
        assert!(edge_addr(n) < VNODE_BASE);
        assert!(vnode_addr(n) < ROW_PTR_BASE);
        assert!(row_ptr_addr(n) < FRONTIER_BASE);
        assert!(frontier_addr(n) < FRONTIER_BITMAP_BASE);
        assert!(frontier_bit_addr(n) < AUX_BASE);
        assert!(aux_addr(7, n) < FLAG_ADDR);
    }

    #[test]
    fn consecutive_nodes_share_cache_lines() {
        // 32 consecutive values span 128 bytes: one transaction.
        assert_eq!(value_addr(32) - value_addr(0), 128);
        assert_eq!(edge_addr(16) - edge_addr(0), 128);
    }

    #[test]
    fn aux_arrays_are_disjoint() {
        assert!(aux_addr(0, 16_000_000) < aux_addr(1, 0));
    }
}
