//! Monotone execution over an abstract [`GraphView`] — the kernel path
//! for snapshot-isolated queries against base+delta overlays.
//!
//! The serving layer's mutation subsystem exposes a mutated graph as a
//! zero-copy view (immutable base CSR + in-memory delta) rather than a
//! materialized CSR. The monotone programs don't care: their fixpoints
//! are order-independent (each combine is monotone and commutative over
//! candidate arrival order), so streaming a node's base edges before its
//! delta edges computes exactly the values a from-scratch CSR of the
//! merged edge list would. This module is the small deterministic
//! worklist driver that makes that claim executable — and the
//! differential tests against the simulator-backed push engine keep it
//! honest.

use tigr_graph::view::GraphView;
use tigr_graph::NodeId;

use crate::program::MonotoneProgram;

/// Result of a [`run_monotone_view`] fixpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewOutput {
    /// Final per-node values, indexed by node id (length
    /// `view.num_nodes()`).
    pub values: Vec<u32>,
    /// Worklist rounds until quiescence.
    pub iterations: u64,
    /// Edge relaxations attempted.
    pub edges_relaxed: u64,
}

/// Runs a monotone push program to fixpoint over `view` with a
/// deterministic round-based worklist. Values match the prepared-path
/// engines byte-for-byte on the same logical graph.
///
/// # Panics
///
/// Panics if `prog` needs a source and none is given, or the source is
/// out of range — same contract as
/// [`MonotoneProgram::initial_values`].
pub fn run_monotone_view(
    view: &dyn GraphView,
    prog: MonotoneProgram,
    source: Option<NodeId>,
) -> ViewOutput {
    let n = view.num_nodes();
    let mut values = prog.initial_values(n, source);
    let mut frontier = prog.initial_frontier(n, source);
    let mut queued = vec![false; n];
    let mut iterations = 0u64;
    let mut edges_relaxed = 0u64;

    while !frontier.is_empty() {
        iterations += 1;
        let mut next: Vec<u32> = Vec::new();
        for &u in &frontier {
            let val = values[u as usize];
            view.for_each_edge(NodeId::new(u), &mut |v, w| {
                edges_relaxed += 1;
                let cand = prog.edge_op.apply(val, w);
                let slot = &mut values[v.index()];
                if prog.combine.improves(cand, *slot) {
                    *slot = cand;
                    if !queued[v.index()] {
                        queued[v.index()] = true;
                        next.push(v.raw());
                    }
                }
            });
        }
        for &v in &next {
            queued[v as usize] = false;
        }
        frontier = next;
    }
    ViewOutput {
        values,
        iterations,
        edges_relaxed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push::{run_monotone, PushOptions};
    use crate::representation::Representation;
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_sim::{GpuConfig, GpuSimulator};

    #[test]
    fn view_fixpoints_match_the_push_engine() {
        let unit = rmat(&RmatConfig::graph500(8, 6), 97);
        let weighted = with_uniform_weights(&unit, 1, 32, 3);
        let sim = GpuSimulator::new(GpuConfig::default());
        let opts = PushOptions::default();
        let src = Some(NodeId::new(5));

        for (g, prog, source) in [
            (&unit, MonotoneProgram::BFS, src),
            (&unit, MonotoneProgram::CC, None),
            (&unit, MonotoneProgram::KHOP, src),
            (&weighted, MonotoneProgram::SSSP, src),
            (&weighted, MonotoneProgram::SSWP, src),
        ] {
            let expect = run_monotone(&sim, &Representation::Original(g), prog, source, &opts);
            let got = run_monotone_view(g, prog, source);
            assert_eq!(got.values, expect.values, "{}", prog.name);
            assert!(got.iterations > 0);
        }
    }

    #[test]
    fn unreachable_nodes_keep_the_identity() {
        // 3 → (nothing); 0 → 1 → 2, node 3 unreachable from 0.
        let g = tigr_graph::CsrBuilder::new(4).edge(0, 1).edge(1, 2).build();
        let out = run_monotone_view(&g, MonotoneProgram::BFS, Some(NodeId::new(0)));
        assert_eq!(out.values, vec![0, 1, 2, u32::MAX]);
    }
}
