//! Executors that run an [`ExecutionPlan`]: the warp-lockstep simulator,
//! the work-stealing CPU pool, and a deterministic sequential sweep.
//!
//! The [`Backend`] trait closes the Plan → Kernel → Backend loop: a plan
//! describes *what* to run (representation, direction, frontier,
//! schedule), the [`crate::kernel`] module owns the single per-edge relax
//! loop, and a backend decides *where* the iterations execute. All three
//! backends validate the plan against the paper's theorems before
//! launching and produce the same [`MonotoneOutput`] shape, so
//! differential tests can pit any cell of the plan matrix against the
//! sequential reference.
//!
//! This module also hosts the generalized direction-optimizing driver
//! ([`Direction::Auto`]): Beamer's α/β density switch, lifted from the
//! bespoke BFS implementation to any monotone program (pull steps over
//! split views are taken only when Theorem 3 licenses them).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tigr_core::VirtualGraph;
use tigr_graph::reverse::transpose;
use tigr_graph::{Csr, NodeId};
use tigr_sim::{GpuConfig, GpuSimulator, SimReport};

use crate::frontier::{Frontier, FrontierBuilder, FrontierRep};
use crate::kernel::{csr_edges, pull_gather, push_relax, GatherFilter, NoMirror};
use crate::plan::{BackendKind, Direction, ExecutionPlan};
use crate::program::{EdgeOp, InitKind, MonotoneProgram};
use crate::pull::{pull_step, run_monotone_pull_cancellable, GatherCtx, PullOptions};
use crate::push::{run_monotone_cancellable, worklist_sweep, IterCtx, MonotoneOutput, SyncMode};
use crate::representation::Representation;
use crate::runner::EngineError;
use crate::state::{AtomicValues, Combine};

/// An executor capable of running a validated [`ExecutionPlan`].
pub trait Backend: fmt::Debug {
    /// Stable backend label (matches [`BackendKind::label`]).
    fn name(&self) -> &'static str;

    /// Runs `prog` over `rep` according to `plan`, validating the plan
    /// first (invalid combinations return
    /// [`EngineError::InvalidPlan`]).
    fn run_monotone(
        &self,
        rep: &Representation<'_>,
        prog: MonotoneProgram,
        source: Option<NodeId>,
        plan: &ExecutionPlan,
    ) -> Result<MonotoneOutput, EngineError>;
}

/// Prebuilt transpose-side structures for the auto driver: callers that
/// already hold the reverse CSR (and possibly its overlay) skip the lazy
/// construction.
pub(crate) struct PullSide<'a> {
    /// The transpose of the forward graph.
    pub(crate) reverse: &'a Csr,
    /// Virtual overlay built over `reverse`, when the forward
    /// representation is virtual.
    pub(crate) overlay: Option<&'a VirtualGraph>,
}

/// Runs `plan` on the simulator, dispatching on direction. Pull runs
/// over a transpose view mirroring the forward representation (Theorem 3
/// overlays included) — supplied via `pull_side` when the caller holds
/// prepared views, built internally otherwise; auto interleaves both.
pub(crate) fn run_sim_plan(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    pull_side: Option<PullSide<'_>>,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    plan: &ExecutionPlan,
) -> MonotoneOutput {
    let cancel = &plan.cancel;
    match plan.direction {
        Direction::Push => run_monotone_cancellable(sim, rep, prog, source, &plan.push, cancel),
        Direction::Pull => {
            let options = PullOptions {
                worklist: plan.push.worklist,
                max_iterations: plan.push.max_iterations,
            };
            match rep {
                // Let the pull driver reject the split with its canonical
                // message.
                Representation::Physical(_) => {
                    run_monotone_pull_cancellable(sim, rep, prog, source, &options, cancel)
                }
                Representation::Original(g) => {
                    let rev_owned;
                    let rev = match &pull_side {
                        Some(ps) => ps.reverse,
                        None => {
                            rev_owned = transpose(g);
                            &rev_owned
                        }
                    };
                    run_monotone_pull_cancellable(
                        sim,
                        &Representation::Original(rev),
                        prog,
                        source,
                        &options,
                        cancel,
                    )
                }
                Representation::Virtual { graph, overlay } => {
                    let rev_owned;
                    let rev = match &pull_side {
                        Some(ps) => ps.reverse,
                        None => {
                            rev_owned = transpose(graph);
                            &rev_owned
                        }
                    };
                    let rov_owned;
                    let rov = match &pull_side {
                        Some(PullSide {
                            overlay: Some(o), ..
                        }) => *o,
                        _ => {
                            rov_owned = transpose_overlay(rev, overlay);
                            &rov_owned
                        }
                    };
                    run_monotone_pull_cancellable(
                        sim,
                        &Representation::Virtual {
                            graph: rev,
                            overlay: rov,
                        },
                        prog,
                        source,
                        &options,
                        cancel,
                    )
                }
                Representation::OnTheFly { graph, mapper } => {
                    let rev = transpose(graph);
                    let m = tigr_core::OnTheFlyMapper::new(&rev, mapper.k());
                    run_monotone_pull_cancellable(
                        sim,
                        &Representation::OnTheFly {
                            graph: &rev,
                            mapper: m,
                        },
                        prog,
                        source,
                        &options,
                        cancel,
                    )
                }
            }
        }
        Direction::Auto => run_monotone_auto(sim, rep, pull_side, prog, source, plan),
    }
}

/// Builds the transpose-side overlay matching the forward overlay's
/// layout (stride coalescing) and chunk size.
fn transpose_overlay(rev: &Csr, forward: &VirtualGraph) -> VirtualGraph {
    if forward.is_coalesced() {
        VirtualGraph::coalesced(rev, forward.k())
    } else {
        VirtualGraph::new(rev, forward.k())
    }
}

/// Whether a pull step may early-exit per slot (the bottom-up BFS
/// shape): level-synchronous unweighted single-source min-plus runs set
/// each value exactly once to its final level, so skipping claimed slots
/// and stopping at the first improving parent is exact.
fn bottom_up_exact(prog: &MonotoneProgram, g: &Csr) -> bool {
    let unit_distance = match prog.edge_op {
        // Unweighted min-plus: every edge contributes 1.
        EdgeOp::AddWeight => g.weights().is_none(),
        // Hop counting ignores weights entirely.
        EdgeOp::AddUnit => true,
        _ => false,
    };
    unit_distance && prog.combine == Combine::Min && prog.init == InitKind::SourceZero
}

/// The generalized direction-optimizing driver: worklist push iterations
/// with Beamer's α/β density switch into gather (pull) iterations over
/// the transpose, falling back to push as the frontier thins.
///
/// Degrades to plain push when the hybrid has nothing to optimize or the
/// theorems do not license a pull side: no worklist, BSP double
/// buffering, physical splits, on-the-fly mapping, non-associative
/// programs over virtual views, or `alpha <= 0`.
pub(crate) fn run_monotone_auto(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    pull_side: Option<PullSide<'_>>,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    plan: &ExecutionPlan,
) -> MonotoneOutput {
    let can_pull = match rep {
        Representation::Original(_) => true,
        // Theorem 3: split folds need an associative combine.
        Representation::Virtual { .. } => prog.associative,
        Representation::Physical(_) | Representation::OnTheFly { .. } => false,
    };
    if !plan.push.worklist || plan.push.sync == SyncMode::Bsp || !can_pull || plan.auto.alpha <= 0.0
    {
        return run_monotone_cancellable(sim, rep, prog, source, &plan.push, &plan.cancel);
    }

    let g = rep.graph();
    let n = rep.num_value_slots();
    let early_exit = bottom_up_exact(&prog, g);
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let mut report = SimReport::new();
    let mut directions = Vec::new();
    let mut converged = false;
    let edges_touched = AtomicU64::new(0);
    let next = FrontierBuilder::new(n);
    let mut frontier =
        Frontier::from_active(n, prog.initial_frontier(n, source), plan.push.frontier);
    // Out-edges not yet owned by any frontier: the denominator of the
    // density switch.
    let mut remaining = g.num_edges() as u64;
    let out_edges = |nodes: &[u32]| -> u64 {
        nodes
            .iter()
            .map(|&v| g.out_degree(NodeId::new(v)) as u64)
            .sum()
    };

    // Transpose side, built on the first pull step unless supplied.
    let mut rev_owned: Option<Csr> = None;
    let mut rev_ov_owned: Option<VirtualGraph> = None;

    let mut cancelled = false;
    for _ in 0..plan.push.max_iterations {
        if frontier.is_empty() {
            converged = true;
            break;
        }
        if plan.cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        let frontier_edges = out_edges(frontier.nodes());
        let pull_now = frontier_edges as f64 * plan.auto.alpha > remaining as f64
            && frontier.len() > n.div_ceil(plan.auto.beta.max(1.0) as usize).max(1);

        let changed = AtomicBool::new(false);
        let (threads, metrics) = if pull_now {
            let reverse: &Csr = match &pull_side {
                Some(ps) => ps.reverse,
                None => rev_owned.get_or_insert_with(|| transpose(g)),
            };
            let pull_rep = match rep {
                Representation::Virtual { overlay, .. } => {
                    let rov: &VirtualGraph = match &pull_side {
                        Some(PullSide {
                            overlay: Some(o), ..
                        }) => o,
                        _ => {
                            rev_ov_owned.get_or_insert_with(|| transpose_overlay(reverse, overlay))
                        }
                    };
                    Representation::Virtual {
                        graph: reverse,
                        overlay: rov,
                    }
                }
                _ => Representation::Original(reverse),
            };
            let ctx = GatherCtx {
                prog,
                values: &values,
                frontier: Some(&frontier),
                next: Some(&next),
                changed: &changed,
                edges_touched: &edges_touched,
                early_exit,
            };
            directions.push(Direction::Pull);
            (pull_rep.full_threads(), pull_step(sim, &pull_rep, &ctx))
        } else {
            let ctx = IterCtx {
                graph: g,
                prog,
                values: &values,
                prev: None,
                changed: &changed,
                next_frontier: Some(&next),
                edges_touched: &edges_touched,
            };
            let threads = match frontier.rep() {
                FrontierRep::Sparse => frontier.len(),
                FrontierRep::Dense => rep.full_threads(),
            };
            directions.push(Direction::Push);
            (threads, worklist_sweep(sim, rep, &ctx, &frontier))
        };
        report.push(threads, metrics);

        frontier = next.take(plan.push.frontier);
        remaining = remaining.saturating_sub(out_edges(frontier.nodes()));
        if plan.push.sort_frontier_by_degree {
            frontier.sort_by_degree(g);
        }
        if !changed.load(Ordering::Relaxed) {
            converged = true;
            break;
        }
    }

    MonotoneOutput {
        values: values.snapshot(),
        report,
        converged,
        edges_touched: edges_touched.into_inner(),
        directions,
        cancelled,
    }
}

/// The warp-lockstep simulator backend: architectural metrics per
/// iteration, every direction supported.
pub struct WarpSim {
    sim: GpuSimulator,
}

impl WarpSim {
    /// Simulator backend over a fresh sequential simulator.
    pub fn new(config: GpuConfig) -> Self {
        WarpSim {
            sim: GpuSimulator::new(config),
        }
    }

    /// Simulator backend over the host-parallel simulator.
    pub fn parallel(config: GpuConfig) -> Self {
        WarpSim {
            sim: GpuSimulator::new_parallel(config),
        }
    }

    /// The wrapped simulator.
    pub fn sim(&self) -> &GpuSimulator {
        &self.sim
    }
}

impl fmt::Debug for WarpSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WarpSim").finish_non_exhaustive()
    }
}

impl Backend for WarpSim {
    fn name(&self) -> &'static str {
        BackendKind::WarpSim.label()
    }

    fn run_monotone(
        &self,
        rep: &Representation<'_>,
        prog: MonotoneProgram,
        source: Option<NodeId>,
        plan: &ExecutionPlan,
    ) -> Result<MonotoneOutput, EngineError> {
        plan.validate(rep, &prog)?;
        Ok(run_sim_plan(&self.sim, rep, None, prog, source, plan))
    }
}

/// The wall-clock CPU backend over the persistent work-stealing pool.
/// Push runs the dedicated solo engine; pull and auto route through the
/// one-lane case of the parallel batched executor, which carries the
/// pool's gather side and the Beamer density switch. Architectural
/// metrics are absent, so the returned report is empty.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuPool;

impl Backend for CpuPool {
    fn name(&self) -> &'static str {
        BackendKind::CpuPool.label()
    }

    fn run_monotone(
        &self,
        rep: &Representation<'_>,
        prog: MonotoneProgram,
        source: Option<NodeId>,
        plan: &ExecutionPlan,
    ) -> Result<MonotoneOutput, EngineError> {
        let mut plan = plan.clone();
        plan.backend = BackendKind::CpuPool;
        plan.validate(rep, &prog)?;
        if plan.direction != Direction::Push {
            // Pull and auto share the batched executor's gather side;
            // K = 1 degenerates to a solo run.
            let batch = crate::batch::BatchProgram {
                prog,
                lanes: vec![crate::batch::BatchLane::with_cancel(
                    source,
                    plan.cancel.clone(),
                )],
            };
            let mut arena = crate::batch::BatchArena::new();
            let mut out = crate::batch::run_batch_cpu_pool(rep, None, &batch, &plan, &mut arena);
            return Ok(out.lanes.pop().expect("one lane in, one lane out"));
        }
        let cancel = &plan.cancel;
        let out = match rep {
            Representation::Virtual { graph, overlay } => {
                crate::cpu_parallel::run_cpu_virtual_cancellable(
                    graph, overlay, prog, source, &plan.cpu, cancel,
                )
            }
            Representation::Physical(t) => crate::cpu_parallel::run_cpu_with_cancellable(
                t.graph(),
                prog,
                source,
                &plan.cpu,
                cancel,
            ),
            Representation::Original(g) | Representation::OnTheFly { graph: g, .. } => {
                crate::cpu_parallel::run_cpu_with_cancellable(g, prog, source, &plan.cpu, cancel)
            }
        };
        Ok(MonotoneOutput {
            values: out.values,
            report: SimReport::new(),
            converged: !out.cancelled,
            edges_touched: out.edges_touched,
            directions: vec![Direction::Push; out.iterations],
            cancelled: out.cancelled,
        })
    }
}

/// Deterministic single-threaded backend: nodes processed in id order,
/// no atomic contention, no simulator accounting. The reference
/// executor the plan-matrix differential tests compare against.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sequential;

impl Backend for Sequential {
    fn name(&self) -> &'static str {
        BackendKind::Sequential.label()
    }

    fn run_monotone(
        &self,
        rep: &Representation<'_>,
        prog: MonotoneProgram,
        source: Option<NodeId>,
        plan: &ExecutionPlan,
    ) -> Result<MonotoneOutput, EngineError> {
        plan.validate(rep, &prog)?;
        Ok(match plan.direction {
            // Auto's fixpoint equals push's; the sequential reference
            // keeps the simpler schedule.
            Direction::Push | Direction::Auto => sequential_push(rep, prog, source, plan),
            Direction::Pull => sequential_pull(rep, prog, source, plan),
        })
    }
}

/// Sequential scatter sweeps over the representation's CSR (virtual
/// overlays share the fixpoint and are ignored here; physical splits use
/// their split CSR and slots).
fn sequential_push(
    rep: &Representation<'_>,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    plan: &ExecutionPlan,
) -> MonotoneOutput {
    let g = rep.graph();
    let n = rep.num_value_slots();
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let next = FrontierBuilder::new(n);
    let mut active = prog.initial_frontier(n, source);
    let mut edges_touched = 0u64;
    let mut iterations = 0usize;
    let mut converged = false;
    let mut cancelled = false;
    // BSP double buffering mirrors the simulator driver: reads see only
    // the previous iteration's values.
    let mut prev_snapshot: Option<Vec<u32>> = match plan.push.sync {
        SyncMode::Bsp => Some(values.snapshot()),
        SyncMode::Relaxed => None,
    };
    for _ in 0..plan.push.max_iterations {
        if plan.push.worklist && active.is_empty() {
            converged = true;
            break;
        }
        if plan.cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        iterations += 1;
        let mut changed = false;
        let prev = prev_snapshot.as_deref();
        let mut relax = |slot: usize| {
            let v = NodeId::from_index(slot);
            let d = match prev {
                Some(p) => p[slot],
                None => values.load(slot),
            };
            edges_touched += push_relax(
                &mut NoMirror,
                prog,
                &values,
                prev,
                d,
                csr_edges(g, g.edge_start(v)..g.edge_end(v)),
                |_, t| {
                    changed = true;
                    next.activate(t);
                },
            );
        };
        if plan.push.worklist {
            for &v in &active {
                relax(v as usize);
            }
        } else {
            for slot in 0..n {
                relax(slot);
            }
        }
        active.clear();
        next.drain_into(&mut active);
        if !changed {
            converged = true;
            break;
        }
        if let Some(snapshot) = &mut prev_snapshot {
            *snapshot = values.snapshot();
        }
    }
    MonotoneOutput {
        values: values.snapshot(),
        report: SimReport::new(),
        converged,
        edges_touched,
        directions: vec![Direction::Push; iterations],
        cancelled,
    }
}

/// Sequential gather sweeps over an internally built transpose.
fn sequential_pull(
    rep: &Representation<'_>,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    plan: &ExecutionPlan,
) -> MonotoneOutput {
    let g = rep.graph();
    let n = rep.num_value_slots();
    let rev = transpose(g);
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let next = FrontierBuilder::new(n);
    let mut frontier: Option<Frontier> = plan.push.worklist.then(|| {
        Frontier::from_active(
            n,
            prog.initial_frontier(n, source),
            crate::frontier::FrontierMode::Dense,
        )
    });
    let mut edges_touched = 0u64;
    let mut iterations = 0usize;
    let mut converged = false;
    let mut cancelled = false;
    for _ in 0..plan.push.max_iterations {
        if let Some(f) = &frontier {
            if f.is_empty() {
                converged = true;
                break;
            }
        }
        if plan.cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        iterations += 1;
        let mut changed = false;
        for slot in 0..n {
            let v = NodeId::from_index(slot);
            edges_touched += pull_gather(
                &mut NoMirror,
                prog,
                &values,
                slot,
                csr_edges(&rev, rev.edge_start(v)..rev.edge_end(v)),
                GatherFilter {
                    active: frontier.as_ref(),
                    early_exit: false,
                },
                |_, s| {
                    changed = true;
                    next.activate(s);
                },
            );
        }
        if frontier.is_some() {
            frontier = Some(next.take(crate::frontier::FrontierMode::Dense));
        }
        if !changed {
            converged = true;
            break;
        }
    }
    MonotoneOutput {
        values: values.snapshot(),
        report: SimReport::new(),
        converged,
        edges_touched,
        directions: vec![Direction::Pull; iterations],
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::FrontierMode;
    use crate::push::PushOptions;
    use tigr_graph::generators::{barabasi_albert, with_uniform_weights, BarabasiAlbertConfig};
    use tigr_graph::properties::dijkstra;

    fn fixture() -> Csr {
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 250,
                edges_per_node: 3,
                symmetric: true,
            },
            11,
        );
        with_uniform_weights(&g, 1, 24, 3)
    }

    #[test]
    fn every_backend_agrees_on_sssp() {
        let g = fixture();
        let src = NodeId::new(0);
        let expect = dijkstra(&g, src);
        let rep = Representation::Original(&g);
        let plan = ExecutionPlan::default();
        let backends: Vec<Box<dyn Backend>> = vec![
            Box::new(WarpSim::new(GpuConfig::default())),
            Box::new(CpuPool),
            Box::new(Sequential),
        ];
        for b in &backends {
            let out = b
                .run_monotone(&rep, MonotoneProgram::SSSP, Some(src), &plan)
                .unwrap();
            assert_eq!(out.values, expect, "backend {}", b.name());
        }
    }

    #[test]
    fn sequential_pull_matches_push() {
        let g = fixture();
        let src = NodeId::new(4);
        let rep = Representation::Original(&g);
        for worklist in [false, true] {
            let plan = |direction| ExecutionPlan {
                direction,
                push: PushOptions {
                    worklist,
                    ..PushOptions::default()
                },
                ..ExecutionPlan::default()
            };
            let push = Sequential
                .run_monotone(
                    &rep,
                    MonotoneProgram::SSSP,
                    Some(src),
                    &plan(Direction::Push),
                )
                .unwrap();
            let pull = Sequential
                .run_monotone(
                    &rep,
                    MonotoneProgram::SSSP,
                    Some(src),
                    &plan(Direction::Pull),
                )
                .unwrap();
            assert!(push.converged && pull.converged);
            assert_eq!(push.values, pull.values, "worklist={worklist}");
        }
    }

    #[test]
    fn auto_matches_push_and_mixes_directions() {
        let g = fixture().without_weights();
        let src = NodeId::new(0);
        let rep = Representation::Original(&g);
        let sim = WarpSim::new(GpuConfig::default());
        let push = sim
            .run_monotone(
                &rep,
                MonotoneProgram::BFS,
                Some(src),
                &ExecutionPlan::default(),
            )
            .unwrap();
        let auto = sim
            .run_monotone(
                &rep,
                MonotoneProgram::BFS,
                Some(src),
                &ExecutionPlan {
                    direction: Direction::Auto,
                    ..ExecutionPlan::default()
                },
            )
            .unwrap();
        assert_eq!(push.values, auto.values);
        assert_eq!(auto.directions.len(), auto.report.num_iterations());
        assert!(
            auto.directions.contains(&Direction::Pull),
            "dense symmetric BA graph should engage pull: {:?}",
            auto.directions
        );
    }

    #[test]
    fn auto_over_virtual_overlay_matches() {
        let g = fixture();
        let src = NodeId::new(0);
        let expect = dijkstra(&g, src);
        let ov = VirtualGraph::coalesced(&g, 4);
        let rep = Representation::Virtual {
            graph: &g,
            overlay: &ov,
        };
        let out = WarpSim::new(GpuConfig::default())
            .run_monotone(
                &rep,
                MonotoneProgram::SSSP,
                Some(src),
                &ExecutionPlan {
                    direction: Direction::Auto,
                    push: PushOptions {
                        frontier: FrontierMode::Sparse,
                        ..PushOptions::default()
                    },
                    ..ExecutionPlan::default()
                },
            )
            .unwrap();
        assert!(out.converged);
        assert_eq!(out.values, expect);
    }

    #[test]
    fn sim_pull_plan_builds_its_own_transpose() {
        let g = fixture();
        let src = NodeId::new(2);
        let expect = dijkstra(&g, src);
        // NOTE: the pull plan takes the *forward* representation and
        // transposes internally — unlike run_monotone_pull's raw API.
        let out = WarpSim::new(GpuConfig::default())
            .run_monotone(
                &Representation::Original(&g),
                MonotoneProgram::SSSP,
                Some(src),
                &ExecutionPlan {
                    direction: Direction::Pull,
                    ..ExecutionPlan::default()
                },
            )
            .unwrap();
        assert_eq!(out.values, expect);
        assert!(out.directions.iter().all(|&d| d == Direction::Pull));
    }

    #[test]
    fn cpu_pool_pull_and_auto_match_sequential_values() {
        let g = fixture();
        let src = NodeId::new(0);
        let rep = Representation::Original(&g);
        let reference = Sequential
            .run_monotone(
                &rep,
                MonotoneProgram::SSSP,
                Some(src),
                &ExecutionPlan::default(),
            )
            .unwrap();
        for direction in [Direction::Pull, Direction::Auto] {
            let out = CpuPool
                .run_monotone(
                    &rep,
                    MonotoneProgram::SSSP,
                    Some(src),
                    &ExecutionPlan {
                        direction,
                        ..ExecutionPlan::default()
                    },
                )
                .unwrap();
            assert_eq!(out.values, reference.values, "{direction:?}");
            assert!(out.converged && !out.cancelled, "{direction:?}");
            if direction == Direction::Pull {
                assert!(out.directions.iter().all(|&d| d == Direction::Pull));
            }
        }
    }
}
