//! Batched multi-source execution: K same-program runs fused into one
//! sequence of sweeps over the CSR.
//!
//! The serving workload runs the *same* monotone program from many
//! sources over one shared graph. Executed one query at a time, every
//! run streams the whole edge array again — which is why serving
//! throughput stays flat as workers are added on a memory-bound host.
//! This module applies the "multiple frontiers" idea (Gunrock): give
//! each query its own **lane** — a private value array, frontier
//! builder, and worklist — and advance all lanes in lockstep, merging
//! their sorted active lists node-major so each node's adjacency range
//! is hot in cache for every lane that needs it in a sweep.
//!
//! The contract is strict **byte-equality** with the single-source
//! reference: each lane replicates the state machine of the sequential
//! push backend exactly — the same pre-iteration checks in the same
//! order, the same ascending relaxation order (per-lane active lists
//! are ascending, and the node-major merge preserves that per lane),
//! and a private value array — so a lane's `values`, iteration count,
//! `converged`, `cancelled`, and `edges_touched` are identical to what
//! a solo run would have produced. Duplicate sources are just duplicate
//! lanes; `K = 1` degenerates to the solo schedule (and is how the
//! server runs *all* monotone queries, so the arena's allocation reuse
//! benefits the non-batched path too).
//!
//! Lane layout is SoA (one value array per lane) rather than
//! interleaved `values[v * K + k]`: lanes of one batch converge at
//! different iterations, and SoA lets finished lanes drop out of the
//! sweep without leaving holes, keeps `snapshot` a straight copy, and
//! lets [`BatchArena`] recycle arrays across batches of different
//! widths. See DESIGN.md §12 for the measured comparison.

use tigr_core::CancelToken;
use tigr_graph::{Csr, NodeId};
use tigr_sim::SimReport;

use crate::frontier::FrontierBuilder;
use crate::kernel::{csr_edges, push_relax, NoMirror};
use crate::plan::Direction;
use crate::program::MonotoneProgram;
use crate::push::{MonotoneOutput, PushOptions};
use crate::representation::Representation;
use crate::state::AtomicValues;

/// One query's slot in a batch: its source and its own cancellation
/// token, so a deadline poisons only this lane.
#[derive(Clone, Debug)]
pub struct BatchLane {
    /// Source node (`None` for source-free programs like CC).
    pub source: Option<NodeId>,
    /// Per-lane cancellation, polled at the lane's iteration
    /// boundaries exactly like the solo driver polls the plan token.
    pub cancel: CancelToken,
}

impl BatchLane {
    /// A lane with no deadline.
    pub fn new(source: Option<NodeId>) -> Self {
        BatchLane {
            source,
            cancel: CancelToken::never(),
        }
    }

    /// A lane carrying its own cancellation token.
    pub fn with_cancel(source: Option<NodeId>, cancel: CancelToken) -> Self {
        BatchLane { source, cancel }
    }
}

/// K runs of one monotone program, executed as a single multi-source
/// sweep sequence.
#[derive(Clone, Debug)]
pub struct BatchProgram {
    /// The shared vertex program (batch compatibility: all lanes run
    /// the same program over the same representation).
    pub prog: MonotoneProgram,
    /// One lane per query; duplicates are allowed.
    pub lanes: Vec<BatchLane>,
}

impl BatchProgram {
    /// A batch of `prog` from the given sources, no deadlines.
    pub fn from_sources(
        prog: MonotoneProgram,
        sources: impl IntoIterator<Item = Option<NodeId>>,
    ) -> Self {
        BatchProgram {
            prog,
            lanes: sources.into_iter().map(BatchLane::new).collect(),
        }
    }
}

/// Result of a batched run: one [`MonotoneOutput`] per lane, in lane
/// order, each byte-equal to the solo sequential push run.
#[derive(Debug)]
pub struct BatchOutput {
    /// Per-lane outputs (same order as [`BatchProgram::lanes`]).
    pub lanes: Vec<MonotoneOutput>,
    /// Fused sweeps executed — one per round in which at least one lane
    /// ran an iteration. `max` over lanes of their iteration count.
    pub sweeps: usize,
}

/// Reusable per-lane storage (value arrays, frontier builders,
/// worklists), so a worker thread executing a stream of batches stops
/// allocating per query. Slots are grown lazily to the widest batch
/// seen and rebuilt only when the slot count of the graph changes.
#[derive(Debug, Default)]
pub struct BatchArena {
    slots: Vec<LaneSlot>,
}

#[derive(Debug)]
struct LaneSlot {
    values: AtomicValues,
    next: FrontierBuilder,
    active: Vec<u32>,
}

impl BatchArena {
    /// An empty arena; storage appears on first use.
    pub fn new() -> Self {
        BatchArena::default()
    }

    /// Ensures `k` lane slots sized for `n` value slots exist.
    fn ensure(&mut self, k: usize, n: usize) {
        self.slots.retain(|s| s.values.len() == n);
        while self.slots.len() < k {
            self.slots.push(LaneSlot {
                values: AtomicValues::new(n, 0),
                next: FrontierBuilder::new(n),
                active: Vec::new(),
            });
        }
    }
}

/// The per-lane run state while a batch is in flight.
struct LaneRun<'a> {
    values: &'a AtomicValues,
    next: &'a FrontierBuilder,
    active: &'a mut Vec<u32>,
    cancel: &'a CancelToken,
    /// Position in `active` during the node-major merge.
    cursor: usize,
    iterations: usize,
    edges_touched: u64,
    changed: bool,
    converged: bool,
    cancelled: bool,
    done: bool,
    runnable: bool,
}

impl LaneRun<'_> {
    /// One scatter relaxation of `slot` in this lane — the body of the
    /// solo sequential push sweep, verbatim.
    fn relax(&mut self, g: &Csr, prog: MonotoneProgram) {
        let slot = if let Some(&v) = self.active.get(self.cursor) {
            v as usize
        } else {
            return;
        };
        self.relax_slot(g, prog, slot);
    }

    fn relax_slot(&mut self, g: &Csr, prog: MonotoneProgram, slot: usize) {
        let v = NodeId::from_index(slot);
        let d = self.values.load(slot);
        let next = self.next;
        let mut changed = false;
        let touched = push_relax(
            &mut NoMirror,
            prog,
            self.values,
            None,
            d,
            csr_edges(g, g.edge_start(v)..g.edge_end(v)),
            |_, t| {
                changed = true;
                next.activate(t);
            },
        );
        self.edges_touched += touched;
        if changed {
            self.changed = true;
        }
    }
}

/// Runs `batch` over `rep` with the deterministic single-threaded push
/// schedule, all lanes in lockstep. Every lane's output is byte-equal
/// to what the sequential backend's push driver returns for that
/// source alone under the same `options`.
///
/// # Panics
///
/// Panics if the program needs a source and a lane has none, or a
/// lane's source is out of range — the same contract as
/// [`MonotoneProgram::initial_values`].
pub fn run_batch_sequential_push(
    rep: &Representation<'_>,
    batch: &BatchProgram,
    options: &PushOptions,
    arena: &mut BatchArena,
) -> BatchOutput {
    let g = rep.graph();
    let n = rep.num_value_slots();
    let prog = batch.prog;
    let k = batch.lanes.len();
    arena.ensure(k, n);

    // Wire each lane to its arena slot and re-initialize in place:
    // values and the seed worklist exactly as `initial_values` /
    // `initial_frontier` produce them, without the per-query
    // allocations.
    let mut lanes: Vec<LaneRun<'_>> = arena
        .slots
        .iter_mut()
        .take(k)
        .zip(&batch.lanes)
        .map(|(slot, lane)| {
            let LaneSlot {
                values,
                next,
                active,
            } = slot;
            init_lane(prog, lane.source, n, values, active);
            next.clear();
            LaneRun {
                values,
                next,
                active,
                cancel: &lane.cancel,
                cursor: 0,
                iterations: 0,
                edges_touched: 0,
                changed: false,
                converged: false,
                cancelled: false,
                done: false,
                runnable: false,
            }
        })
        .collect();

    let mut sweeps = 0usize;
    loop {
        // Per-lane pre-iteration checks, in the solo driver's order:
        // iteration cap, worklist emptiness (convergence), then the
        // cancellation poll.
        let mut any = false;
        for lane in &mut lanes {
            lane.runnable = false;
            if lane.done {
                continue;
            }
            if lane.iterations == options.max_iterations {
                lane.done = true;
                continue;
            }
            if options.worklist && lane.active.is_empty() {
                lane.converged = true;
                lane.done = true;
                continue;
            }
            if lane.cancel.is_cancelled() {
                lane.cancelled = true;
                lane.done = true;
                continue;
            }
            lane.iterations += 1;
            lane.changed = false;
            lane.cursor = 0;
            lane.runnable = true;
            any = true;
        }
        if !any {
            break;
        }
        sweeps += 1;

        if options.worklist {
            // Node-major k-way merge of the per-lane sorted worklists:
            // each node's adjacency range is walked back-to-back for
            // every lane in which it is active, and each lane still
            // sees its nodes in ascending order.
            loop {
                let mut cur: Option<u32> = None;
                for lane in lanes.iter().filter(|l| l.runnable) {
                    if let Some(&v) = lane.active.get(lane.cursor) {
                        cur = Some(cur.map_or(v, |c| c.min(v)));
                    }
                }
                let Some(v) = cur else { break };
                for lane in lanes.iter_mut().filter(|l| l.runnable) {
                    if lane.active.get(lane.cursor) == Some(&v) {
                        lane.relax(g, prog);
                        lane.cursor += 1;
                    }
                }
            }
        } else {
            // Full sweeps: every slot, every runnable lane.
            for slot in 0..n {
                for lane in lanes.iter_mut().filter(|l| l.runnable) {
                    lane.relax_slot(g, prog, slot);
                }
            }
        }

        for lane in lanes.iter_mut().filter(|l| l.runnable) {
            lane.active.clear();
            lane.next.drain_into(lane.active);
            if !lane.changed {
                lane.converged = true;
                lane.done = true;
            }
        }
    }

    let outputs = lanes
        .into_iter()
        .map(|lane| MonotoneOutput {
            values: lane.values.snapshot(),
            report: SimReport::new(),
            converged: lane.converged,
            edges_touched: lane.edges_touched,
            directions: vec![Direction::Push; lane.iterations],
            cancelled: lane.cancelled,
        })
        .collect();
    BatchOutput {
        lanes: outputs,
        sweeps,
    }
}

/// In-place lane initialization: the allocation-free twin of
/// [`MonotoneProgram::initial_values`] + `initial_frontier`.
fn init_lane(
    prog: MonotoneProgram,
    source: Option<NodeId>,
    n: usize,
    values: &AtomicValues,
    active: &mut Vec<u32>,
) {
    use crate::program::InitKind;
    active.clear();
    match prog.init {
        InitKind::OwnId => {
            for i in 0..n {
                values.store(i, i as u32);
            }
            active.extend(0..n as u32);
        }
        InitKind::SourceZero | InitKind::SourceMax => {
            let src = source.expect("program requires a source node");
            assert!(src.index() < n, "source out of range");
            let (src_val, rest) = match prog.init {
                InitKind::SourceZero => (0, u32::MAX),
                _ => (u32::MAX, 0),
            };
            values.fill(rest);
            values.store(src.index(), src_val);
            active.push(src.raw());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, Sequential};
    use crate::plan::ExecutionPlan;
    use tigr_graph::generators::{barabasi_albert, with_uniform_weights, BarabasiAlbertConfig};

    fn fixture() -> Csr {
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 300,
                edges_per_node: 3,
                symmetric: false,
            },
            7,
        );
        with_uniform_weights(&g, 1, 31, 5)
    }

    fn solo(
        rep: &Representation<'_>,
        prog: MonotoneProgram,
        source: Option<u32>,
    ) -> MonotoneOutput {
        Sequential
            .run_monotone(
                rep,
                prog,
                source.map(NodeId::new),
                &ExecutionPlan::default(),
            )
            .unwrap()
    }

    fn assert_lane_equal(lane: &MonotoneOutput, solo: &MonotoneOutput, label: &str) {
        assert_eq!(lane.values, solo.values, "{label}: values");
        assert_eq!(lane.directions, solo.directions, "{label}: iterations");
        assert_eq!(lane.converged, solo.converged, "{label}: converged");
        assert_eq!(lane.cancelled, solo.cancelled, "{label}: cancelled");
        assert_eq!(
            lane.edges_touched, solo.edges_touched,
            "{label}: edges_touched"
        );
    }

    #[test]
    fn batched_lanes_match_solo_runs_including_duplicates() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let sources = [0u32, 17, 17, 250, 3];
        for prog in [
            MonotoneProgram::BFS,
            MonotoneProgram::SSSP,
            MonotoneProgram::SSWP,
        ] {
            let batch =
                BatchProgram::from_sources(prog, sources.iter().map(|&s| Some(NodeId::new(s))));
            let mut arena = BatchArena::new();
            let out = run_batch_sequential_push(&rep, &batch, &PushOptions::default(), &mut arena);
            assert_eq!(out.lanes.len(), sources.len());
            for (i, &s) in sources.iter().enumerate() {
                let reference = solo(&rep, prog, Some(s));
                assert_lane_equal(&out.lanes[i], &reference, &format!("{}/{s}", prog.name));
            }
            assert_eq!(
                out.sweeps,
                out.lanes
                    .iter()
                    .map(|l| l.directions.len())
                    .max()
                    .unwrap_or(0)
            );
        }
    }

    #[test]
    fn source_free_cc_lanes_match() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let batch = BatchProgram::from_sources(MonotoneProgram::CC, [None, None]);
        let mut arena = BatchArena::new();
        let out = run_batch_sequential_push(&rep, &batch, &PushOptions::default(), &mut arena);
        let reference = solo(&rep, MonotoneProgram::CC, None);
        assert_lane_equal(&out.lanes[0], &reference, "cc lane 0");
        assert_lane_equal(&out.lanes[1], &reference, "cc lane 1");
    }

    #[test]
    fn degenerate_single_lane_matches_and_arena_is_reused() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let mut arena = BatchArena::new();
        // A stream of K=1 batches through one arena — the server's
        // non-batched fast path. Byte-equal every time, no state leaks
        // between runs.
        for &s in &[5u32, 42, 5, 299] {
            let batch = BatchProgram::from_sources(MonotoneProgram::SSSP, [Some(NodeId::new(s))]);
            let out = run_batch_sequential_push(&rep, &batch, &PushOptions::default(), &mut arena);
            let reference = solo(&rep, MonotoneProgram::SSSP, Some(s));
            assert_lane_equal(&out.lanes[0], &reference, &format!("sssp/{s}"));
        }
    }

    #[test]
    fn iteration_cap_applies_per_lane() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let options = PushOptions {
            max_iterations: 2,
            ..PushOptions::default()
        };
        let plan = ExecutionPlan {
            push: options,
            ..ExecutionPlan::default()
        };
        let batch = BatchProgram::from_sources(
            MonotoneProgram::SSSP,
            [Some(NodeId::new(0)), Some(NodeId::new(100))],
        );
        let mut arena = BatchArena::new();
        let out = run_batch_sequential_push(&rep, &batch, &options, &mut arena);
        for (lane, src) in out.lanes.iter().zip([0u32, 100]) {
            let reference = Sequential
                .run_monotone(&rep, MonotoneProgram::SSSP, Some(NodeId::new(src)), &plan)
                .unwrap();
            assert_lane_equal(lane, &reference, &format!("capped/{src}"));
            assert!(lane.directions.len() <= 2);
        }
    }

    #[test]
    fn cancelled_lane_stops_alone() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let doomed = CancelToken::new();
        doomed.cancel();
        let batch = BatchProgram {
            prog: MonotoneProgram::BFS,
            lanes: vec![
                BatchLane::with_cancel(Some(NodeId::new(0)), doomed),
                BatchLane::new(Some(NodeId::new(1))),
            ],
        };
        let mut arena = BatchArena::new();
        let out = run_batch_sequential_push(&rep, &batch, &PushOptions::default(), &mut arena);
        assert!(out.lanes[0].cancelled && !out.lanes[0].converged);
        // Pre-cancelled lane holds exactly its initial values.
        assert_eq!(out.lanes[0].values[0], 0);
        assert!(out.lanes[0].values[1..].iter().all(|&v| v == u32::MAX));
        // The surviving lane is untouched by its neighbor's fate.
        let reference = solo(&rep, MonotoneProgram::BFS, Some(1));
        assert_lane_equal(&out.lanes[1], &reference, "survivor");
    }

    #[test]
    fn full_sweep_mode_matches_solo() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let options = PushOptions {
            worklist: false,
            ..PushOptions::default()
        };
        let plan = ExecutionPlan {
            push: options,
            ..ExecutionPlan::default()
        };
        let batch = BatchProgram::from_sources(
            MonotoneProgram::SSSP,
            [Some(NodeId::new(0)), Some(NodeId::new(9))],
        );
        let mut arena = BatchArena::new();
        let out = run_batch_sequential_push(&rep, &batch, &options, &mut arena);
        for (lane, src) in out.lanes.iter().zip([0u32, 9]) {
            let reference = Sequential
                .run_monotone(&rep, MonotoneProgram::SSSP, Some(NodeId::new(src)), &plan)
                .unwrap();
            assert_lane_equal(lane, &reference, &format!("dense/{src}"));
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let batch = BatchProgram::from_sources(MonotoneProgram::BFS, []);
        let mut arena = BatchArena::new();
        let out = run_batch_sequential_push(&rep, &batch, &PushOptions::default(), &mut arena);
        assert!(out.lanes.is_empty());
        assert_eq!(out.sweeps, 0);
    }
}
