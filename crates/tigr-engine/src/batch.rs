//! Batched multi-source execution: K same-program runs fused into one
//! sequence of sweeps over the CSR.
//!
//! The serving workload runs the *same* monotone program from many
//! sources over one shared graph. Executed one query at a time, every
//! run streams the whole edge array again — which is why serving
//! throughput stays flat as workers are added on a memory-bound host.
//! This module applies the "multiple frontiers" idea (Gunrock): give
//! each query its own **lane** — a private value array, frontier
//! builder, and worklist — and advance all lanes in lockstep, merging
//! their sorted active lists node-major so each node's adjacency range
//! is hot in cache for every lane that needs it in a sweep.
//!
//! The contract is strict **byte-equality** with the single-source
//! reference: each lane replicates the state machine of the sequential
//! push backend exactly — the same pre-iteration checks in the same
//! order, the same ascending relaxation order (per-lane active lists
//! are ascending, and the node-major merge preserves that per lane),
//! and a private value array — so a lane's `values`, iteration count,
//! `converged`, `cancelled`, and `edges_touched` are identical to what
//! a solo run would have produced. Duplicate sources are just duplicate
//! lanes; `K = 1` degenerates to the solo schedule (and is how the
//! server runs *all* monotone queries, so the arena's allocation reuse
//! benefits the non-batched path too).
//!
//! Two executors share the lane abstraction:
//!
//! * [`run_batch_sequential_push`] — the deterministic reference. Lane
//!   layout is SoA (one value array per lane): lanes converge at
//!   different iterations, SoA lets finished lanes drop out without
//!   holes, and `snapshot` is a straight copy.
//! * [`run_batch_cpu_pool`] — the parallel executor (DESIGN.md §13).
//!   Values are interleaved **lane-major per node**
//!   (`values[v * K + lane]`), so one edge walk relaxes every live
//!   lane over contiguous memory; sweeps run on the work-stealing pool
//!   under any [`crate::cpu_parallel::CpuSchedule`], the per-sweep
//!   direction follows the Beamer density rule over the **merged**
//!   live-lane frontier (one transpose pass gathers for all lanes when
//!   it is dense), and per-worker scratch lives in [`BatchArena`].
//!   Its contract is *value* equality with the solo sequential run —
//!   `values`, checksum, `converged`, `cancelled` — while iteration
//!   and edge counts reflect the fused schedule, exactly like the solo
//!   CpuPool backend relative to Sequential.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, RwLock};

use tigr_core::{CancelToken, VirtualGraph};
use tigr_graph::{reverse::transpose, Csr, NodeId};
use tigr_sim::SimReport;

use crate::cpu_parallel::{balanced_cuts, count_bounds, CpuSchedule};
use crate::frontier::FrontierBuilder;
use crate::kernel::{csr_edges, pull_gather_lanes, push_relax, push_relax_lanes, NoMirror};
use crate::plan::{Direction, ExecutionPlan};
use crate::pool::{with_pool, EpochRunner};
use crate::program::{InitKind, MonotoneProgram};
use crate::push::{MonotoneOutput, PushOptions, SyncMode};
use crate::representation::Representation;
use crate::state::AtomicValues;

/// One query's slot in a batch: its source and its own cancellation
/// token, so a deadline poisons only this lane.
#[derive(Clone, Debug)]
pub struct BatchLane {
    /// Source node (`None` for source-free programs like CC).
    pub source: Option<NodeId>,
    /// Per-lane cancellation, polled at the lane's iteration
    /// boundaries exactly like the solo driver polls the plan token.
    pub cancel: CancelToken,
}

impl BatchLane {
    /// A lane with no deadline.
    pub fn new(source: Option<NodeId>) -> Self {
        BatchLane {
            source,
            cancel: CancelToken::never(),
        }
    }

    /// A lane carrying its own cancellation token.
    pub fn with_cancel(source: Option<NodeId>, cancel: CancelToken) -> Self {
        BatchLane { source, cancel }
    }
}

/// K runs of one monotone program, executed as a single multi-source
/// sweep sequence.
#[derive(Clone, Debug)]
pub struct BatchProgram {
    /// The shared vertex program (batch compatibility: all lanes run
    /// the same program over the same representation).
    pub prog: MonotoneProgram,
    /// One lane per query; duplicates are allowed.
    pub lanes: Vec<BatchLane>,
}

impl BatchProgram {
    /// A batch of `prog` from the given sources, no deadlines.
    pub fn from_sources(
        prog: MonotoneProgram,
        sources: impl IntoIterator<Item = Option<NodeId>>,
    ) -> Self {
        BatchProgram {
            prog,
            lanes: sources.into_iter().map(BatchLane::new).collect(),
        }
    }
}

/// Result of a batched run: one [`MonotoneOutput`] per lane, in lane
/// order, each byte-equal to the solo sequential push run.
#[derive(Debug)]
pub struct BatchOutput {
    /// Per-lane outputs (same order as [`BatchProgram::lanes`]).
    pub lanes: Vec<MonotoneOutput>,
    /// Fused sweeps executed — one per round in which at least one lane
    /// ran an iteration. `max` over lanes of their iteration count.
    pub sweeps: usize,
}

/// Reusable batch storage, so a worker thread executing a stream of
/// batches stops allocating per query: per-lane slots (value array,
/// frontier builder, worklist) for the sequential executor, plus the
/// interleaved lane-major value buffer, merged-frontier structures,
/// and per-worker scratch rows of the parallel executor. Storage grows
/// lazily to the widest batch seen; a retain cap (see
/// [`BatchArena::with_retain_cap`]) bounds what survives a wide batch
/// so alternating wide/narrow batches cannot ratchet peak memory.
#[derive(Debug)]
pub struct BatchArena {
    slots: Vec<LaneSlot>,
    /// Interleaved values for the parallel path: lane `l` of node `v`
    /// lives at `v * k + l`. May be retained larger than `n * k`; only
    /// the prefix is used (stride is always the current batch width).
    lane_major: AtomicValues,
    /// Merged next-frontier collector (union over live lanes).
    union_next: FrontierBuilder,
    /// Node count `union_next` was built for.
    union_n: usize,
    /// Merged current-frontier node list, ascending.
    union_active: Vec<u32>,
    /// Merged current-frontier bitmap (pull-sweep source filter).
    union_bits: Vec<u64>,
    /// Expanded work items (virtual-node schedule).
    items: Vec<u32>,
    /// Per-worker scratch rows (hoisted lane values, gather folds,
    /// per-lane edge counters).
    workers: Vec<Mutex<WorkerScratch>>,
    /// Max lane slots retained across batches; 0 = unbounded.
    retain_cap: usize,
}

#[derive(Debug)]
struct LaneSlot {
    values: AtomicValues,
    next: FrontierBuilder,
    active: Vec<u32>,
}

/// One pool worker's private scratch: reused across sweeps so the hot
/// loops never allocate.
#[derive(Debug, Default)]
struct WorkerScratch {
    /// Live lanes with a non-identity value at the node being relaxed.
    lanes: Vec<u32>,
    /// Hoisted per-lane source values, parallel to `lanes` (push), or
    /// gather start values parallel to the live list (pull).
    dv: Vec<u32>,
    /// Per-lane gather folds (pull).
    best: Vec<u32>,
    /// Per-lane edges-touched accumulators, flushed after the run.
    edges: Vec<u64>,
}

impl Default for BatchArena {
    fn default() -> Self {
        BatchArena {
            slots: Vec::new(),
            lane_major: AtomicValues::new(0, 0),
            union_next: FrontierBuilder::new(0),
            union_n: 0,
            union_active: Vec::new(),
            union_bits: Vec::new(),
            items: Vec::new(),
            workers: Vec::new(),
            retain_cap: 0,
        }
    }
}

impl BatchArena {
    /// An empty arena; storage appears on first use.
    pub fn new() -> Self {
        BatchArena::default()
    }

    /// An empty arena that, between batches, retains storage for at
    /// most `cap` lanes (a batch wider than `cap` still runs; the
    /// excess is released when the next batch begins). `0` retains
    /// everything. Servers pass ~2× their `batch_max` so one wide
    /// burst does not pin peak memory forever.
    pub fn with_retain_cap(cap: usize) -> Self {
        BatchArena {
            retain_cap: cap,
            ..BatchArena::default()
        }
    }

    /// The configured retain cap (0 = unbounded).
    pub fn retain_cap(&self) -> usize {
        self.retain_cap
    }

    /// Lane slots currently held for the sequential executor.
    pub fn retained_lanes(&self) -> usize {
        self.slots.len()
    }

    /// Total `u32` value slots currently held (sequential lane arrays
    /// plus the parallel interleaved buffer) — the figure the retain
    /// cap bounds between batches.
    pub fn retained_values(&self) -> usize {
        self.slots.iter().map(|s| s.values.len()).sum::<usize>() + self.lane_major.len()
    }

    /// Lane budget storage may occupy after sizing for a `k`-lane
    /// batch.
    fn lane_budget(&self, k: usize) -> usize {
        if self.retain_cap == 0 {
            usize::MAX
        } else {
            self.retain_cap.max(k)
        }
    }

    /// Ensures `k` lane slots sized for `n` value slots exist,
    /// releasing retained slots beyond the cap first.
    fn ensure(&mut self, k: usize, n: usize) {
        self.slots.retain(|s| s.values.len() == n);
        self.slots.truncate(self.lane_budget(k));
        while self.slots.len() < k {
            self.slots.push(LaneSlot {
                values: AtomicValues::new(n, 0),
                next: FrontierBuilder::new(n),
                active: Vec::new(),
            });
        }
    }

    /// Sizes the parallel-path storage for a `k`-lane batch over `n`
    /// value slots swept by `threads` workers.
    fn ensure_parallel(&mut self, k: usize, n: usize, threads: usize) {
        let needed = n * k;
        let budget = n.saturating_mul(self.lane_budget(k));
        if self.lane_major.len() < needed || self.lane_major.len() > budget {
            self.lane_major = AtomicValues::new(needed, 0);
        }
        if self.union_n != n {
            self.union_next = FrontierBuilder::new(n);
            self.union_n = n;
        } else {
            self.union_next.clear();
        }
        if self.workers.len() < threads {
            self.workers.resize_with(threads, Mutex::default);
        }
        for ws in self.workers.iter_mut().take(threads) {
            let ws = ws.get_mut().unwrap();
            ws.lanes.clear();
            ws.dv.clear();
            ws.best.clear();
            ws.edges.clear();
            ws.edges.resize(k, 0);
        }
    }
}

/// The per-lane run state while a batch is in flight.
struct LaneRun<'a> {
    values: &'a AtomicValues,
    next: &'a FrontierBuilder,
    active: &'a mut Vec<u32>,
    cancel: &'a CancelToken,
    /// Position in `active` during the node-major merge.
    cursor: usize,
    iterations: usize,
    edges_touched: u64,
    changed: bool,
    converged: bool,
    cancelled: bool,
    done: bool,
    runnable: bool,
}

impl LaneRun<'_> {
    /// One scatter relaxation of `slot` in this lane — the body of the
    /// solo sequential push sweep, verbatim.
    fn relax(&mut self, g: &Csr, prog: MonotoneProgram) {
        let slot = if let Some(&v) = self.active.get(self.cursor) {
            v as usize
        } else {
            return;
        };
        self.relax_slot(g, prog, slot);
    }

    fn relax_slot(&mut self, g: &Csr, prog: MonotoneProgram, slot: usize) {
        let v = NodeId::from_index(slot);
        let d = self.values.load(slot);
        let next = self.next;
        let mut changed = false;
        let touched = push_relax(
            &mut NoMirror,
            prog,
            self.values,
            None,
            d,
            csr_edges(g, g.edge_start(v)..g.edge_end(v)),
            |_, t| {
                changed = true;
                next.activate(t);
            },
        );
        self.edges_touched += touched;
        if changed {
            self.changed = true;
        }
    }
}

/// Runs `batch` over `rep` with the deterministic single-threaded push
/// schedule, all lanes in lockstep. Every lane's output is byte-equal
/// to what the sequential backend's push driver returns for that
/// source alone under the same `options`.
///
/// # Panics
///
/// Panics if the program needs a source and a lane has none, or a
/// lane's source is out of range — the same contract as
/// [`MonotoneProgram::initial_values`].
pub fn run_batch_sequential_push(
    rep: &Representation<'_>,
    batch: &BatchProgram,
    options: &PushOptions,
    arena: &mut BatchArena,
) -> BatchOutput {
    let g = rep.graph();
    let n = rep.num_value_slots();
    let prog = batch.prog;
    let k = batch.lanes.len();
    arena.ensure(k, n);

    // Wire each lane to its arena slot and re-initialize in place:
    // values and the seed worklist exactly as `initial_values` /
    // `initial_frontier` produce them, without the per-query
    // allocations.
    let mut lanes: Vec<LaneRun<'_>> = arena
        .slots
        .iter_mut()
        .take(k)
        .zip(&batch.lanes)
        .map(|(slot, lane)| {
            let LaneSlot {
                values,
                next,
                active,
            } = slot;
            init_lane(prog, lane.source, n, values, active);
            next.clear();
            LaneRun {
                values,
                next,
                active,
                cancel: &lane.cancel,
                cursor: 0,
                iterations: 0,
                edges_touched: 0,
                changed: false,
                converged: false,
                cancelled: false,
                done: false,
                runnable: false,
            }
        })
        .collect();

    let mut sweeps = 0usize;
    loop {
        // Per-lane pre-iteration checks, in the solo driver's order:
        // iteration cap, worklist emptiness (convergence), then the
        // cancellation poll.
        let mut any = false;
        for lane in &mut lanes {
            lane.runnable = false;
            if lane.done {
                continue;
            }
            if lane.iterations == options.max_iterations {
                lane.done = true;
                continue;
            }
            if options.worklist && lane.active.is_empty() {
                lane.converged = true;
                lane.done = true;
                continue;
            }
            if lane.cancel.is_cancelled() {
                lane.cancelled = true;
                lane.done = true;
                continue;
            }
            lane.iterations += 1;
            lane.changed = false;
            lane.cursor = 0;
            lane.runnable = true;
            any = true;
        }
        if !any {
            break;
        }
        sweeps += 1;

        if options.worklist {
            // Node-major k-way merge of the per-lane sorted worklists:
            // each node's adjacency range is walked back-to-back for
            // every lane in which it is active, and each lane still
            // sees its nodes in ascending order.
            loop {
                let mut cur: Option<u32> = None;
                for lane in lanes.iter().filter(|l| l.runnable) {
                    if let Some(&v) = lane.active.get(lane.cursor) {
                        cur = Some(cur.map_or(v, |c| c.min(v)));
                    }
                }
                let Some(v) = cur else { break };
                for lane in lanes.iter_mut().filter(|l| l.runnable) {
                    if lane.active.get(lane.cursor) == Some(&v) {
                        lane.relax(g, prog);
                        lane.cursor += 1;
                    }
                }
            }
        } else {
            // Full sweeps: every slot, every runnable lane.
            for slot in 0..n {
                for lane in lanes.iter_mut().filter(|l| l.runnable) {
                    lane.relax_slot(g, prog, slot);
                }
            }
        }

        for lane in lanes.iter_mut().filter(|l| l.runnable) {
            lane.active.clear();
            lane.next.drain_into(lane.active);
            if !lane.changed {
                lane.converged = true;
                lane.done = true;
            }
        }
    }

    let outputs = lanes
        .into_iter()
        .map(|lane| MonotoneOutput {
            values: lane.values.snapshot(),
            report: SimReport::new(),
            converged: lane.converged,
            edges_touched: lane.edges_touched,
            directions: vec![Direction::Push; lane.iterations],
            cancelled: lane.cancelled,
        })
        .collect();
    BatchOutput {
        lanes: outputs,
        sweeps,
    }
}

/// In-place lane initialization: the allocation-free twin of
/// [`MonotoneProgram::initial_values`] + `initial_frontier`.
fn init_lane(
    prog: MonotoneProgram,
    source: Option<NodeId>,
    n: usize,
    values: &AtomicValues,
    active: &mut Vec<u32>,
) {
    active.clear();
    match prog.init {
        InitKind::OwnId => {
            for i in 0..n {
                values.store(i, i as u32);
            }
            active.extend(0..n as u32);
        }
        InitKind::SourceZero | InitKind::SourceMax => {
            let src = source.expect("program requires a source node");
            assert!(src.index() < n, "source out of range");
            let (src_val, rest) = match prog.init {
                InitKind::SourceZero => (0, u32::MAX),
                _ => (u32::MAX, 0),
            };
            values.fill(rest);
            values.store(src.index(), src_val);
            active.push(src.raw());
        }
    }
}

/// Sweep-body dispatch codes for [`BatchSweepState::process`]: the pool
/// body is fixed at spawn, so the driver publishes the mode of each
/// epoch through an atomic (the CPU PageRank driver's phase pattern).
const MODE_PUSH_LIST: u8 = 0;
const MODE_PUSH_FULL: u8 = 1;
const MODE_PUSH_VLIST: u8 = 2;
const MODE_PUSH_VFULL: u8 = 3;
const MODE_PULL_LIST: u8 = 4;
const MODE_PULL_FULL: u8 = 5;

/// Shared state of one parallel batched run. Workers read the epoch's
/// mode, live-lane list, work items, and merged-frontier bitmap; the
/// driver rewrites them between epochs while the pool is parked at the
/// barrier.
struct BatchSweepState<'a> {
    g: &'a Csr,
    overlay: Option<&'a VirtualGraph>,
    /// Caller-supplied transpose (prepared graphs).
    rev_ext: Option<&'a Csr>,
    /// Transpose built lazily by the driver before the first pull
    /// epoch.
    rev_built: RwLock<Option<Csr>>,
    prog: MonotoneProgram,
    k: usize,
    /// The combine identity: lanes holding it at a node have nothing
    /// to push from there.
    identity: u32,
    /// Interleaved lane-major values, `values[v * k + lane]`.
    values: &'a AtomicValues,
    /// Lanes running this sweep, ascending.
    live: RwLock<Vec<u32>>,
    /// Work items of the current epoch (merged active nodes, or
    /// expanded virtual-node indices).
    items: RwLock<Vec<u32>>,
    /// Merged current-frontier bitmap (pull-sweep source filter).
    bits: RwLock<Vec<u64>>,
    /// Per-lane "improved something this sweep" flags.
    changed: Vec<AtomicBool>,
    /// Merged next-frontier collector.
    union_next: &'a FrontierBuilder,
    /// Whether sweeps track the next frontier (worklist mode).
    track: bool,
    mode: AtomicU8,
    workers: &'a [Mutex<WorkerScratch>],
}

impl BatchSweepState<'_> {
    fn process(&self, w: usize, r: Range<usize>) {
        match self.mode.load(Ordering::Relaxed) {
            MODE_PUSH_LIST => self.push_sweep(w, r, true, false),
            MODE_PUSH_FULL => self.push_sweep(w, r, false, false),
            MODE_PUSH_VLIST => self.push_sweep(w, r, true, true),
            MODE_PUSH_VFULL => self.push_sweep(w, r, false, true),
            MODE_PULL_LIST => self.pull_sweep(w, r, true),
            _ => self.pull_sweep(w, r, false),
        }
    }

    /// One push chunk: for each item, hoist the live lanes' source
    /// values (skipping lanes still at the identity — they have no
    /// path to push), then walk the adjacency once for all of them.
    fn push_sweep(&self, w: usize, r: Range<usize>, list: bool, vnodes: bool) {
        let live = self.live.read().unwrap();
        let items = self.items.read().unwrap();
        let mut guard = self.workers[w].lock().unwrap();
        let WorkerScratch {
            lanes, dv, edges, ..
        } = &mut *guard;
        let k = self.k;
        let g = self.g;
        let on_improve = |lane: usize, t: usize| {
            self.changed[lane].store(true, Ordering::Relaxed);
            if self.track {
                self.union_next.activate(t);
            }
        };
        for idx in r {
            let item = if list { items[idx] as usize } else { idx };
            let (v, vn) = if vnodes {
                let vn = self
                    .overlay
                    .expect("virtual mode requires an overlay")
                    .vnode(item);
                if vn.count == 0 {
                    continue;
                }
                (vn.physical.index(), Some(vn))
            } else {
                (item, None)
            };
            // Hoist per-lane source values once per item.
            lanes.clear();
            dv.clear();
            let base = v * k;
            for &lane in live.iter() {
                let d = self.values.load(base + lane as usize);
                if d != self.identity {
                    lanes.push(lane);
                    dv.push(d);
                }
            }
            if lanes.is_empty() {
                continue;
            }
            let touched = match vn {
                Some(vn) if vn.stride == 1 => {
                    let lo = vn.first_edge as usize;
                    push_relax_lanes(
                        self.prog,
                        self.values,
                        k,
                        lanes,
                        dv,
                        csr_edges(g, lo..lo + vn.count as usize),
                        &on_improve,
                    )
                }
                Some(vn) => push_relax_lanes(
                    self.prog,
                    self.values,
                    k,
                    lanes,
                    dv,
                    csr_edges(g, vn.edge_indices()),
                    &on_improve,
                ),
                None => {
                    let node = NodeId::from_index(v);
                    push_relax_lanes(
                        self.prog,
                        self.values,
                        k,
                        lanes,
                        dv,
                        csr_edges(g, g.edge_start(node)..g.edge_end(node)),
                        &on_improve,
                    )
                }
            };
            for &lane in lanes.iter() {
                edges[lane as usize] += touched;
            }
        }
    }

    /// One pull chunk: every node in the range gathers over its
    /// transpose in-edges once for all live lanes, folding locally and
    /// publishing at most one atomic per lane.
    fn pull_sweep(&self, w: usize, r: Range<usize>, filtered: bool) {
        let live = self.live.read().unwrap();
        let bits_guard = self.bits.read().unwrap();
        let bits: Option<&[u64]> = if filtered { Some(&bits_guard) } else { None };
        let rev_guard = self.rev_built.read().unwrap();
        let rev: &Csr = match self.rev_ext {
            Some(r) => r,
            None => rev_guard
                .as_ref()
                .expect("driver publishes the transpose before a pull epoch"),
        };
        let mut guard = self.workers[w].lock().unwrap();
        let WorkerScratch {
            dv, best, edges, ..
        } = &mut *guard;
        let k = self.k;
        for v in r {
            let base = v * k;
            dv.clear();
            best.clear();
            for &lane in live.iter() {
                let s = self.values.load(base + lane as usize);
                dv.push(s);
                best.push(s);
            }
            let node = NodeId::from_index(v);
            let touched = pull_gather_lanes(
                self.prog,
                self.values,
                k,
                &live,
                csr_edges(rev, rev.edge_start(node)..rev.edge_end(node)),
                bits,
                best,
            );
            if touched > 0 {
                for &lane in live.iter() {
                    edges[lane as usize] += touched;
                }
            }
            for (i, &lane) in live.iter().enumerate() {
                if best[i] != dv[i]
                    && self
                        .values
                        .try_improve(base + lane as usize, best[i], self.prog.combine)
                {
                    self.changed[lane as usize].store(true, Ordering::Relaxed);
                    if self.track {
                        self.union_next.activate(v);
                    }
                }
            }
        }
    }
}

/// Driver-side per-lane bookkeeping of the parallel executor.
struct LaneCtl {
    iterations: usize,
    dirs: Vec<Direction>,
    converged: bool,
    cancelled: bool,
    done: bool,
}

/// Runs `batch` over `rep` on the work-stealing CPU pool: one fused
/// sweep over the merged live-lane frontier relaxes every lane per
/// edge through the interleaved lane-major value buffer, partitioned
/// by the plan's [`CpuSchedule`], with the per-sweep direction chosen
/// by the Beamer α/β density rule over the merged frontier (when the
/// plan says [`Direction::Auto`] and the representation licenses a
/// pull side — the same rules as the solo auto driver). `pull`
/// supplies a prebuilt transpose; otherwise one is built lazily on the
/// first pull sweep.
///
/// The contract is **value equality** with the solo sequential run:
/// per-lane `values`, `converged`, and `cancelled` match, while
/// iteration and edge counts reflect the fused schedule (merged
/// frontiers, relaxed intra-sweep visibility, direction switching) —
/// exactly the solo CpuPool backend's contract versus Sequential.
/// Callers are expected to have validated the plan
/// ([`ExecutionPlan::validate`]) against this representation first.
///
/// # Panics
///
/// Panics if the program needs a source and a lane has none, or a
/// lane's source is out of range.
pub fn run_batch_cpu_pool(
    rep: &Representation<'_>,
    pull: Option<&Csr>,
    batch: &BatchProgram,
    plan: &ExecutionPlan,
    arena: &mut BatchArena,
) -> BatchOutput {
    let g = rep.graph();
    let n = rep.num_value_slots();
    let prog = batch.prog;
    let k = batch.lanes.len();
    if k == 0 || n == 0 {
        // Degenerate shapes carry no parallel work; the sequential
        // executor's byte-exact handling is the better answer.
        return run_batch_sequential_push(rep, batch, &plan.push, arena);
    }
    let threads = plan.cpu.threads.max(1);
    let worklist = plan.push.worklist;

    // Direction capabilities, mirroring the solo auto driver: pull
    // needs the whole-node gather (Original) or Theorem 3 associativity
    // over virtual views; physical splits and on-the-fly mapping have
    // no CPU gather side.
    let can_pull = match rep {
        Representation::Original(_) => true,
        Representation::Virtual { .. } => prog.associative,
        Representation::Physical(_) | Representation::OnTheFly { .. } => false,
    };
    let forced = match plan.direction {
        // A forced pull was licensed by plan validation.
        Direction::Pull => Direction::Pull,
        Direction::Auto
            if worklist && plan.push.sync != SyncMode::Bsp && can_pull && plan.auto.alpha > 0.0 =>
        {
            Direction::Auto
        }
        _ => Direction::Push,
    };

    // Virtual-node scheduling: the representation's own overlay, or
    // one built for the virtual schedule over a flat representation.
    let built_overlay;
    let overlay: Option<&VirtualGraph> = match rep {
        Representation::Virtual { overlay, .. } => Some(overlay),
        _ if plan.cpu.schedule == CpuSchedule::Virtual => {
            built_overlay = VirtualGraph::new(g, plan.cpu.virtual_k.max(1));
            Some(&built_overlay)
        }
        _ => None,
    };
    let edge_balanced = plan.cpu.schedule == CpuSchedule::EdgeBalanced;

    arena.ensure_parallel(k, n, threads);
    let BatchArena {
        lane_major,
        union_next,
        union_active,
        union_bits,
        items,
        workers,
        ..
    } = arena;
    let values: &AtomicValues = lane_major;

    // Initialize the interleaved values and the merged seed frontier.
    match prog.init {
        InitKind::OwnId => {
            for v in 0..n {
                let base = v * k;
                for l in 0..k {
                    values.store(base + l, v as u32);
                }
            }
            union_active.clear();
            union_active.extend(0..n as u32);
        }
        InitKind::SourceZero | InitKind::SourceMax => {
            let (src_val, rest) = match prog.init {
                InitKind::SourceZero => (0, u32::MAX),
                _ => (u32::MAX, 0),
            };
            values.fill(rest);
            union_active.clear();
            for (l, lane) in batch.lanes.iter().enumerate() {
                let src = lane.source.expect("program requires a source node");
                assert!(src.index() < n, "source out of range");
                values.store(src.index() * k + l, src_val);
                union_active.push(src.raw());
            }
            union_active.sort_unstable();
            union_active.dedup();
        }
    }

    let state = BatchSweepState {
        g,
        overlay,
        rev_ext: pull,
        rev_built: RwLock::new(None),
        prog,
        k,
        identity: prog.combine.identity(),
        values,
        live: RwLock::new(Vec::new()),
        items: RwLock::new(std::mem::take(items)),
        bits: RwLock::new(std::mem::take(union_bits)),
        changed: (0..k).map(|_| AtomicBool::new(false)).collect(),
        union_next,
        track: worklist,
        mode: AtomicU8::new(MODE_PUSH_LIST),
        workers: &workers[..threads],
    };

    let mut ctl: Vec<LaneCtl> = (0..k)
        .map(|_| LaneCtl {
            iterations: 0,
            dirs: Vec::new(),
            converged: false,
            cancelled: false,
            done: false,
        })
        .collect();

    let mut sweeps = 0usize;
    let mut bounds = vec![(0usize, 0usize); threads];
    let mut live_buf: Vec<u32> = Vec::new();
    let mut degree_prefix: Vec<u64> = Vec::new();
    let mut fwd_prefix: Option<Vec<u64>> = None;
    let mut rev_prefix: Option<Vec<u64>> = None;
    // Out-edges not yet owned by any merged frontier: the denominator
    // of the density switch.
    let mut remaining = g.num_edges() as u64;
    let out_edges = |nodes: &[u32]| -> u64 {
        nodes
            .iter()
            .map(|&v| g.out_degree(NodeId::new(v)) as u64)
            .sum()
    };

    let body = |w: usize, r: Range<usize>| state.process(w, r);
    with_pool(threads, &body, |pool| {
        loop {
            // Per-lane pre-sweep checks, the solo driver's order:
            // iteration cap, then the cancellation poll. (Worklist
            // emptiness is per-lane `changed` at sweep end here — a
            // lane that improved nothing has an empty own-frontier.)
            live_buf.clear();
            for (l, c) in ctl.iter_mut().enumerate() {
                if c.done {
                    continue;
                }
                if c.iterations == plan.push.max_iterations {
                    c.done = true;
                    continue;
                }
                if batch.lanes[l].cancel.is_cancelled() {
                    c.cancelled = true;
                    c.done = true;
                    continue;
                }
                live_buf.push(l as u32);
            }
            if live_buf.is_empty() {
                break;
            }
            if worklist && union_active.is_empty() {
                // Unreachable in practice (lanes retire the sweep they
                // stop improving), but never sweep an empty frontier.
                break;
            }

            let dir = match forced {
                Direction::Auto => {
                    let frontier_edges = out_edges(union_active);
                    let pull_now = frontier_edges as f64 * plan.auto.alpha > remaining as f64
                        && union_active.len() > n.div_ceil(plan.auto.beta.max(1.0) as usize).max(1);
                    if pull_now {
                        Direction::Pull
                    } else {
                        Direction::Push
                    }
                }
                d => d,
            };
            sweeps += 1;
            for &l in &live_buf {
                let c = &mut ctl[l as usize];
                c.iterations += 1;
                c.dirs.push(dir);
                state.changed[l as usize].store(false, Ordering::Relaxed);
            }
            state.live.write().unwrap().clone_from(&live_buf);

            // Partition the epoch and publish its mode.
            match dir {
                Direction::Pull => {
                    if state.rev_ext.is_none() && state.rev_built.read().unwrap().is_none() {
                        let rev = transpose(g);
                        *state.rev_built.write().unwrap() = Some(rev);
                    }
                    if edge_balanced && rev_prefix.is_none() {
                        let guard = state.rev_built.read().unwrap();
                        let rev = state.rev_ext.or(guard.as_ref()).expect("transpose exists");
                        rev_prefix = Some(rev.row_ptr().iter().map(|&e| e as u64).collect());
                    }
                    match &rev_prefix {
                        Some(p) => balanced_cuts(p, &mut bounds),
                        None => count_bounds(n, &mut bounds),
                    }
                    if worklist {
                        let mut bits = state.bits.write().unwrap();
                        bits.clear();
                        bits.resize(n.div_ceil(64), 0);
                        for &v in union_active.iter() {
                            bits[v as usize / 64] |= 1 << (v % 64);
                        }
                        state.mode.store(MODE_PULL_LIST, Ordering::Relaxed);
                    } else {
                        state.mode.store(MODE_PULL_FULL, Ordering::Relaxed);
                    }
                }
                _ => {
                    if worklist {
                        if let Some(ov) = overlay {
                            let mut it = state.items.write().unwrap();
                            ov.expand_active_into(union_active, &mut it);
                            let nitems = it.len();
                            drop(it);
                            count_bounds(nitems, &mut bounds);
                            state.mode.store(MODE_PUSH_VLIST, Ordering::Relaxed);
                        } else {
                            if edge_balanced {
                                degree_prefix.clear();
                                degree_prefix.push(0);
                                let mut acc = 0u64;
                                for &v in union_active.iter() {
                                    acc += g.out_degree(NodeId::new(v)) as u64;
                                    degree_prefix.push(acc);
                                }
                                balanced_cuts(&degree_prefix, &mut bounds);
                            } else {
                                count_bounds(union_active.len(), &mut bounds);
                            }
                            let mut it = state.items.write().unwrap();
                            it.clear();
                            it.extend_from_slice(union_active);
                            drop(it);
                            state.mode.store(MODE_PUSH_LIST, Ordering::Relaxed);
                        }
                    } else {
                        match overlay {
                            Some(ov) => {
                                count_bounds(ov.num_virtual_nodes(), &mut bounds);
                                state.mode.store(MODE_PUSH_VFULL, Ordering::Relaxed);
                            }
                            None => {
                                if edge_balanced {
                                    let p = fwd_prefix.get_or_insert_with(|| {
                                        g.row_ptr().iter().map(|&e| e as u64).collect()
                                    });
                                    balanced_cuts(p, &mut bounds);
                                } else {
                                    count_bounds(n, &mut bounds);
                                }
                                state.mode.store(MODE_PUSH_FULL, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
            pool.run_epoch(&bounds);

            if worklist {
                state.union_next.drain_into(union_active);
                if forced == Direction::Auto {
                    remaining = remaining.saturating_sub(out_edges(union_active));
                }
            }
            for &l in &live_buf {
                if !state.changed[l as usize].load(Ordering::Relaxed) {
                    let c = &mut ctl[l as usize];
                    c.converged = true;
                    c.done = true;
                }
            }
        }
    });

    // Return the scratch vectors to the arena for the next batch.
    *items = state.items.into_inner().unwrap();
    *union_bits = state.bits.into_inner().unwrap();

    let mut lane_edges = vec![0u64; k];
    for ws in workers.iter().take(threads) {
        let s = ws.lock().unwrap();
        for (l, &e) in s.edges.iter().enumerate() {
            lane_edges[l] += e;
        }
    }
    let lanes = ctl
        .into_iter()
        .enumerate()
        .map(|(l, c)| MonotoneOutput {
            values: (0..n).map(|v| values.load(v * k + l)).collect(),
            report: SimReport::new(),
            converged: c.converged,
            edges_touched: lane_edges[l],
            directions: c.dirs,
            cancelled: c.cancelled,
        })
        .collect();
    BatchOutput { lanes, sweeps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, Sequential};
    use crate::plan::ExecutionPlan;
    use tigr_graph::generators::{barabasi_albert, with_uniform_weights, BarabasiAlbertConfig};

    fn fixture() -> Csr {
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 300,
                edges_per_node: 3,
                symmetric: false,
            },
            7,
        );
        with_uniform_weights(&g, 1, 31, 5)
    }

    fn solo(
        rep: &Representation<'_>,
        prog: MonotoneProgram,
        source: Option<u32>,
    ) -> MonotoneOutput {
        Sequential
            .run_monotone(
                rep,
                prog,
                source.map(NodeId::new),
                &ExecutionPlan::default(),
            )
            .unwrap()
    }

    fn assert_lane_equal(lane: &MonotoneOutput, solo: &MonotoneOutput, label: &str) {
        assert_eq!(lane.values, solo.values, "{label}: values");
        assert_eq!(lane.directions, solo.directions, "{label}: iterations");
        assert_eq!(lane.converged, solo.converged, "{label}: converged");
        assert_eq!(lane.cancelled, solo.cancelled, "{label}: cancelled");
        assert_eq!(
            lane.edges_touched, solo.edges_touched,
            "{label}: edges_touched"
        );
    }

    #[test]
    fn batched_lanes_match_solo_runs_including_duplicates() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let sources = [0u32, 17, 17, 250, 3];
        for prog in [
            MonotoneProgram::BFS,
            MonotoneProgram::SSSP,
            MonotoneProgram::SSWP,
        ] {
            let batch =
                BatchProgram::from_sources(prog, sources.iter().map(|&s| Some(NodeId::new(s))));
            let mut arena = BatchArena::new();
            let out = run_batch_sequential_push(&rep, &batch, &PushOptions::default(), &mut arena);
            assert_eq!(out.lanes.len(), sources.len());
            for (i, &s) in sources.iter().enumerate() {
                let reference = solo(&rep, prog, Some(s));
                assert_lane_equal(&out.lanes[i], &reference, &format!("{}/{s}", prog.name));
            }
            assert_eq!(
                out.sweeps,
                out.lanes
                    .iter()
                    .map(|l| l.directions.len())
                    .max()
                    .unwrap_or(0)
            );
        }
    }

    #[test]
    fn source_free_cc_lanes_match() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let batch = BatchProgram::from_sources(MonotoneProgram::CC, [None, None]);
        let mut arena = BatchArena::new();
        let out = run_batch_sequential_push(&rep, &batch, &PushOptions::default(), &mut arena);
        let reference = solo(&rep, MonotoneProgram::CC, None);
        assert_lane_equal(&out.lanes[0], &reference, "cc lane 0");
        assert_lane_equal(&out.lanes[1], &reference, "cc lane 1");
    }

    #[test]
    fn degenerate_single_lane_matches_and_arena_is_reused() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let mut arena = BatchArena::new();
        // A stream of K=1 batches through one arena — the server's
        // non-batched fast path. Byte-equal every time, no state leaks
        // between runs.
        for &s in &[5u32, 42, 5, 299] {
            let batch = BatchProgram::from_sources(MonotoneProgram::SSSP, [Some(NodeId::new(s))]);
            let out = run_batch_sequential_push(&rep, &batch, &PushOptions::default(), &mut arena);
            let reference = solo(&rep, MonotoneProgram::SSSP, Some(s));
            assert_lane_equal(&out.lanes[0], &reference, &format!("sssp/{s}"));
        }
    }

    #[test]
    fn parallel_batch_matches_solo_values_across_directions_and_schedules() {
        use crate::cpu_parallel::{CpuOptions, CpuSchedule};
        use crate::plan::{BackendKind, Direction};
        let g = fixture();
        let rep = Representation::Original(&g);
        let sources = [0u32, 17, 17, 250];
        for prog in [MonotoneProgram::SSSP, MonotoneProgram::SSWP] {
            let batch =
                BatchProgram::from_sources(prog, sources.iter().map(|&s| Some(NodeId::new(s))));
            let references: Vec<MonotoneOutput> =
                sources.iter().map(|&s| solo(&rep, prog, Some(s))).collect();
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                for sched in [
                    CpuSchedule::NodeChunk,
                    CpuSchedule::EdgeBalanced,
                    CpuSchedule::Virtual,
                ] {
                    let plan = ExecutionPlan {
                        backend: BackendKind::CpuPool,
                        direction: dir,
                        cpu: CpuOptions {
                            threads: 2,
                            schedule: sched,
                            ..CpuOptions::default()
                        },
                        ..ExecutionPlan::default()
                    };
                    let mut arena = BatchArena::new();
                    let out = run_batch_cpu_pool(&rep, None, &batch, &plan, &mut arena);
                    for (i, reference) in references.iter().enumerate() {
                        let label = format!("{}/{}/{dir:?}/{sched:?}", prog.name, sources[i]);
                        // The parallel sweep reaches the same unique
                        // fixpoint; iteration and edge counts may
                        // differ from the solo schedule.
                        assert_eq!(out.lanes[i].values, reference.values, "{label}: values");
                        assert!(out.lanes[i].converged, "{label}: converged");
                        assert!(!out.lanes[i].cancelled, "{label}: cancelled");
                    }
                }
            }
        }
    }

    #[test]
    fn retain_cap_releases_wide_batch_storage_on_the_next_batch() {
        use crate::cpu_parallel::CpuOptions;
        use crate::plan::BackendKind;
        let g = fixture();
        let rep = Representation::Original(&g);
        let n = g.num_nodes();
        let cap = 4;
        let wide = || {
            BatchProgram::from_sources(
                MonotoneProgram::BFS,
                (0..12u32).map(|i| Some(NodeId::new(i * 7))),
            )
        };
        let narrow = || {
            BatchProgram::from_sources(
                MonotoneProgram::BFS,
                [Some(NodeId::new(1)), Some(NodeId::new(2))],
            )
        };

        // Uncapped: the wide burst's 12 lanes stay resident forever.
        let mut unbounded = BatchArena::new();
        run_batch_sequential_push(&rep, &wide(), &PushOptions::default(), &mut unbounded);
        run_batch_sequential_push(&rep, &narrow(), &PushOptions::default(), &mut unbounded);
        assert_eq!(unbounded.retained_lanes(), 12);

        // Capped: alternating wide/narrow batches settle at the cap
        // instead of ratcheting peak memory to the widest batch ever
        // seen.
        let mut arena = BatchArena::with_retain_cap(cap);
        assert_eq!(arena.retain_cap(), cap);
        for round in 0..3 {
            run_batch_sequential_push(&rep, &wide(), &PushOptions::default(), &mut arena);
            run_batch_sequential_push(&rep, &narrow(), &PushOptions::default(), &mut arena);
            assert_eq!(arena.retained_lanes(), cap, "round {round}");
            assert!(
                arena.retained_values() <= cap * n,
                "round {round}: retained {} value slots, cap allows {}",
                arena.retained_values(),
                cap * n
            );
        }

        // The parallel path's interleaved lane-major buffer obeys the
        // same budget.
        let plan = ExecutionPlan {
            backend: BackendKind::CpuPool,
            cpu: CpuOptions {
                threads: 2,
                ..CpuOptions::default()
            },
            ..ExecutionPlan::default()
        };
        let mut par = BatchArena::with_retain_cap(cap);
        for round in 0..3 {
            run_batch_cpu_pool(&rep, None, &wide(), &plan, &mut par);
            run_batch_cpu_pool(&rep, None, &narrow(), &plan, &mut par);
            assert!(
                par.retained_values() <= cap * n,
                "round {round}: parallel retained {} value slots, cap allows {}",
                par.retained_values(),
                cap * n
            );
        }
    }

    #[test]
    fn iteration_cap_applies_per_lane() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let options = PushOptions {
            max_iterations: 2,
            ..PushOptions::default()
        };
        let plan = ExecutionPlan {
            push: options,
            ..ExecutionPlan::default()
        };
        let batch = BatchProgram::from_sources(
            MonotoneProgram::SSSP,
            [Some(NodeId::new(0)), Some(NodeId::new(100))],
        );
        let mut arena = BatchArena::new();
        let out = run_batch_sequential_push(&rep, &batch, &options, &mut arena);
        for (lane, src) in out.lanes.iter().zip([0u32, 100]) {
            let reference = Sequential
                .run_monotone(&rep, MonotoneProgram::SSSP, Some(NodeId::new(src)), &plan)
                .unwrap();
            assert_lane_equal(lane, &reference, &format!("capped/{src}"));
            assert!(lane.directions.len() <= 2);
        }
    }

    #[test]
    fn cancelled_lane_stops_alone() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let doomed = CancelToken::new();
        doomed.cancel();
        let batch = BatchProgram {
            prog: MonotoneProgram::BFS,
            lanes: vec![
                BatchLane::with_cancel(Some(NodeId::new(0)), doomed),
                BatchLane::new(Some(NodeId::new(1))),
            ],
        };
        let mut arena = BatchArena::new();
        let out = run_batch_sequential_push(&rep, &batch, &PushOptions::default(), &mut arena);
        assert!(out.lanes[0].cancelled && !out.lanes[0].converged);
        // Pre-cancelled lane holds exactly its initial values.
        assert_eq!(out.lanes[0].values[0], 0);
        assert!(out.lanes[0].values[1..].iter().all(|&v| v == u32::MAX));
        // The surviving lane is untouched by its neighbor's fate.
        let reference = solo(&rep, MonotoneProgram::BFS, Some(1));
        assert_lane_equal(&out.lanes[1], &reference, "survivor");
    }

    #[test]
    fn full_sweep_mode_matches_solo() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let options = PushOptions {
            worklist: false,
            ..PushOptions::default()
        };
        let plan = ExecutionPlan {
            push: options,
            ..ExecutionPlan::default()
        };
        let batch = BatchProgram::from_sources(
            MonotoneProgram::SSSP,
            [Some(NodeId::new(0)), Some(NodeId::new(9))],
        );
        let mut arena = BatchArena::new();
        let out = run_batch_sequential_push(&rep, &batch, &options, &mut arena);
        for (lane, src) in out.lanes.iter().zip([0u32, 9]) {
            let reference = Sequential
                .run_monotone(&rep, MonotoneProgram::SSSP, Some(NodeId::new(src)), &plan)
                .unwrap();
            assert_lane_equal(lane, &reference, &format!("dense/{src}"));
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let g = fixture();
        let rep = Representation::Original(&g);
        let batch = BatchProgram::from_sources(MonotoneProgram::BFS, []);
        let mut arena = BatchArena::new();
        let out = run_batch_sequential_push(&rep, &batch, &PushOptions::default(), &mut arena);
        assert!(out.lanes.is_empty());
        assert_eq!(out.sweeps, 0);
    }
}
