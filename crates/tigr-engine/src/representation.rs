//! Graph representations the engine can schedule over.

use std::fmt;

use tigr_core::{OnTheFlyMapper, TransformedGraph, VirtualGraph};
use tigr_graph::Csr;

/// The graph form a kernel is launched against — the x-axis of Figure 13.
pub enum Representation<'a> {
    /// The untouched CSR, one thread per node: the paper's `baseline`.
    Original(&'a Csr),
    /// A physically transformed graph (`Tigr-UDT` when built with
    /// [`tigr_core::udt_transform`]), one thread per (possibly split) node.
    Physical(&'a TransformedGraph),
    /// The virtual node array over the untouched CSR: `Tigr-V` for a
    /// consecutive overlay, `Tigr-V+` for a coalesced one. One thread per
    /// virtual node.
    Virtual {
        /// The physical graph (value propagation layer).
        graph: &'a Csr,
        /// The virtual overlay (scheduling layer).
        overlay: &'a VirtualGraph,
    },
    /// Dynamic mapping reasoning (§4.1's second design): edge blocks of
    /// `K` resolved at kernel time, zero mapping storage.
    OnTheFly {
        /// The physical graph.
        graph: &'a Csr,
        /// The block mapper.
        mapper: OnTheFlyMapper,
    },
}

impl<'a> Representation<'a> {
    /// The natural representation of a [`tigr_core::PreparedGraph`]:
    /// `Physical` when a split transform was prepared, `Virtual` when an
    /// overlay was, `Original` otherwise.
    pub fn from_prepared(p: &'a tigr_core::PreparedGraph) -> Self {
        if let Some(t) = p.transformed() {
            Representation::Physical(t)
        } else if let Some(ov) = p.overlay() {
            Representation::Virtual {
                graph: p.graph(),
                overlay: ov,
            }
        } else {
            Representation::Original(p.graph())
        }
    }

    /// The CSR whose edges the kernels walk.
    pub fn graph(&self) -> &'a Csr {
        match self {
            Representation::Original(g) => g,
            Representation::Physical(t) => t.graph(),
            Representation::Virtual { graph, .. } => graph,
            Representation::OnTheFly { graph, .. } => graph,
        }
    }

    /// Number of value slots (the size of the per-node value array).
    pub fn num_value_slots(&self) -> usize {
        self.graph().num_nodes()
    }

    /// Threads launched for a full (non-worklist) sweep.
    pub fn full_threads(&self) -> usize {
        match self {
            Representation::Original(g) => g.num_nodes(),
            Representation::Physical(t) => t.graph().num_nodes(),
            Representation::Virtual { overlay, .. } => overlay.num_virtual_nodes(),
            Representation::OnTheFly { mapper, .. } => mapper.num_threads(),
        }
    }

    /// Short label for reports ("original", "physical", "virtual",
    /// "virtual+", "otf").
    pub fn label(&self) -> &'static str {
        match self {
            Representation::Original(_) => "original",
            Representation::Physical(_) => "physical",
            Representation::Virtual { overlay, .. } => {
                if overlay.is_coalesced() {
                    "virtual+"
                } else {
                    "virtual"
                }
            }
            Representation::OnTheFly { .. } => "otf",
        }
    }

    /// Simulated device-memory footprint in bytes: the CSR plus any
    /// overlay structures, plus one 4-byte value slot per node — the
    /// quantity checked against the 8 GB budget in Table 4.
    pub fn device_footprint_bytes(&self) -> u64 {
        let values = (self.num_value_slots() * 4) as u64;
        let base = self.graph().csr_size_bytes() as u64;
        let overlay = match self {
            Representation::Virtual { overlay, .. } => overlay.size_bytes() as u64,
            _ => 0,
        };
        base + overlay + values
    }
}

impl fmt::Debug for Representation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Representation")
            .field("kind", &self.label())
            .field("nodes", &self.graph().num_nodes())
            .field("edges", &self.graph().num_edges())
            .field("threads", &self.full_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::{udt_transform, DumbWeight, VirtualGraph};
    use tigr_graph::generators::star_graph;

    #[test]
    fn labels_and_threads() {
        let g = star_graph(101);
        assert_eq!(Representation::Original(&g).label(), "original");
        assert_eq!(Representation::Original(&g).full_threads(), 101);

        let t = udt_transform(&g, 10, DumbWeight::Zero);
        let rep = Representation::Physical(&t);
        assert_eq!(rep.label(), "physical");
        assert!(rep.full_threads() > 101);

        let ov = VirtualGraph::new(&g, 10);
        let rep = Representation::Virtual {
            graph: &g,
            overlay: &ov,
        };
        assert_eq!(rep.label(), "virtual");
        assert_eq!(rep.full_threads(), ov.num_virtual_nodes());

        let ovc = VirtualGraph::coalesced(&g, 10);
        let rep = Representation::Virtual {
            graph: &g,
            overlay: &ovc,
        };
        assert_eq!(rep.label(), "virtual+");

        let mapper = OnTheFlyMapper::new(&g, 10);
        let rep = Representation::OnTheFly { graph: &g, mapper };
        assert_eq!(rep.label(), "otf");
        assert_eq!(rep.full_threads(), 10);
    }

    #[test]
    fn virtual_footprint_exceeds_original() {
        let g = star_graph(101);
        let ov = VirtualGraph::new(&g, 10);
        let orig = Representation::Original(&g).device_footprint_bytes();
        let virt = Representation::Virtual {
            graph: &g,
            overlay: &ov,
        }
        .device_footprint_bytes();
        assert!(virt > orig);
        assert_eq!(virt - orig, ov.size_bytes() as u64);
    }
}
