//! The single edge-relaxation inner loop (§5, Algorithm 2 lines 6–10).
//!
//! Every driver in this crate — simulated push ([`crate::push`]),
//! simulated pull ([`crate::pull`]), the wall-clock CPU engine
//! ([`crate::cpu_parallel`]), PageRank and betweenness centrality
//! ([`crate::algorithms`]) — routes its per-edge work through
//! [`relax_kernel`]. The loop is parameterized along two axes:
//!
//! * an **edge source**: any `Iterator<Item = EdgeRef>` — a contiguous
//!   CSR range, a strided virtual-node cursor, or a slice zip on the CPU
//!   fast path (see [`csr_edges`] and friends);
//! * an **access mirror**: how each architectural memory access is
//!   accounted. [`LaneMirror`] charges a simulator [`Lane`]; [`NoMirror`]
//!   compiles every charge away for the wall-clock CPU backends, so both
//!   executors share one loop with zero overhead on the native path.
//!
//! On top of the raw loop sit the two monotone functor bodies,
//! [`push_relax`] (scatter: one atomic per improving edge) and
//! [`pull_gather`] (gather: local fold, at most one atomic per slot) —
//! direction is a *schedule*, not a reimplementation.

use tigr_graph::{Csr, Weight};
use tigr_sim::Lane;

use crate::addr::{edge_addr, frontier_bit_addr, value_addr, EDGE_ENTRY_BYTES};
use crate::frontier::Frontier;
use crate::program::MonotoneProgram;
use crate::state::AtomicValues;

/// One edge as seen by the kernel: its CSR index (for address
/// accounting), the slot it leads to, and its weight.
#[derive(Clone, Copy, Debug)]
pub struct EdgeRef {
    /// Global edge index (addresses the `{target, weight}` entry).
    pub index: usize,
    /// Destination slot (push: the neighbor written; pull: the source
    /// read).
    pub target: usize,
    /// Edge weight (1 on unweighted graphs).
    pub weight: Weight,
}

/// Control flow returned by a per-edge body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeFlow {
    /// The edge was processed: count it and continue.
    Continue,
    /// The edge was skipped (e.g. inactive source under a worklist
    /// filter): do not count it.
    Skip,
    /// The edge was processed; stop walking the range (bottom-up BFS
    /// early exit).
    Stop,
}

/// How a kernel's memory traffic is accounted. The methods mirror the
/// simulator's [`Lane`]; the CPU backends plug in [`NoMirror`] and the
/// optimizer deletes every call.
pub trait AccessMirror {
    /// Mirror of [`Lane::load`].
    fn load(&mut self, addr: u64, bytes: u64);
    /// Mirror of [`Lane::store`].
    fn store(&mut self, addr: u64, bytes: u64);
    /// Mirror of [`Lane::atomic`].
    fn atomic(&mut self, addr: u64, bytes: u64);
    /// Mirror of [`Lane::compute`].
    fn compute(&mut self, n: u64);
}

/// Mirrors accesses onto a simulator lane (warp-lockstep accounting).
#[derive(Debug)]
pub struct LaneMirror<'a>(pub &'a mut Lane);

impl AccessMirror for LaneMirror<'_> {
    #[inline]
    fn load(&mut self, addr: u64, bytes: u64) {
        self.0.load(addr, bytes);
    }
    #[inline]
    fn store(&mut self, addr: u64, bytes: u64) {
        self.0.store(addr, bytes);
    }
    #[inline]
    fn atomic(&mut self, addr: u64, bytes: u64) {
        self.0.atomic(addr, bytes);
    }
    #[inline]
    fn compute(&mut self, n: u64) {
        self.0.compute(n);
    }
}

/// Zero-cost mirror for the wall-clock CPU backends.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMirror;

impl AccessMirror for NoMirror {
    #[inline]
    fn load(&mut self, _addr: u64, _bytes: u64) {}
    #[inline]
    fn store(&mut self, _addr: u64, _bytes: u64) {}
    #[inline]
    fn atomic(&mut self, _addr: u64, _bytes: u64) {}
    #[inline]
    fn compute(&mut self, _n: u64) {}
}

/// THE edge-relaxation inner loop: charges the `{target, weight}` entry
/// load for every edge and hands it to `per_edge`. Returns how many
/// edges were processed (relaxation attempted, [`EdgeFlow::Skip`] not
/// counted).
///
/// This is the only per-edge loop in the engine; every driver builds its
/// body as a `per_edge` closure over it.
#[inline]
pub fn relax_kernel<M, I, F>(mirror: &mut M, edges: I, mut per_edge: F) -> u64
where
    M: AccessMirror,
    I: Iterator<Item = EdgeRef>,
    F: FnMut(&mut M, EdgeRef) -> EdgeFlow,
{
    let mut touched = 0u64;
    for edge in edges {
        mirror.load(edge_addr(edge.index), EDGE_ENTRY_BYTES);
        match per_edge(mirror, edge) {
            EdgeFlow::Continue => touched += 1,
            EdgeFlow::Skip => {}
            EdgeFlow::Stop => {
                touched += 1;
                break;
            }
        }
    }
    touched
}

/// Push-relaxes `edges` whose owning slot currently holds `d`: computes
/// the candidate, compares against the destination (through `prev` under
/// BSP double buffering), and atomically improves it. `on_improve` runs
/// once per newly improving edge, after the value atomic is charged —
/// callers hang frontier activation and finished-flag traffic there.
///
/// Returns the number of edges relaxed.
#[inline]
pub fn push_relax<M: AccessMirror>(
    mirror: &mut M,
    prog: MonotoneProgram,
    values: &AtomicValues,
    prev: Option<&[u32]>,
    d: u32,
    edges: impl Iterator<Item = EdgeRef>,
    mut on_improve: impl FnMut(&mut M, usize),
) -> u64 {
    relax_kernel(mirror, edges, |m, edge| {
        let cand = prog.edge_op.apply(d, edge.weight);
        // alt computation + comparison (Algorithm 2 lines 7-8).
        m.compute(2);
        m.load(value_addr(edge.target), 4);
        let cur = match prev {
            Some(p) => p[edge.target],
            None => values.load(edge.target),
        };
        if prog.combine.improves(cand, cur) && values.try_improve(edge.target, cand, prog.combine) {
            // atomicMin (Algorithm 2 line 9).
            m.atomic(value_addr(edge.target), 4);
            on_improve(m, edge.target);
        }
        EdgeFlow::Continue
    })
}

/// Worklist filter and early-exit policy of a [`pull_gather`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct GatherFilter<'a> {
    /// Fold only candidates from sources active last iteration,
    /// consulting this dense bitmap per in-edge.
    pub active: Option<&'a Frontier>,
    /// Bottom-up BFS shape: skip already-claimed slots entirely and stop
    /// at the first improving candidate. Sound only for unweighted
    /// source-zero min-plus programs under a worklist — the level of a
    /// claimed node can never improve again, and any active parent
    /// offers the same `level + 1`.
    pub early_exit: bool,
}

/// Pull-gathers `edges` (in-edges of `slot`, i.e. a transpose range):
/// folds candidates locally and issues at most **one** value atomic on
/// the slot — the Theorem 3 gather scheme. `on_improve` runs after that
/// atomic when the slot improved.
///
/// Returns the number of candidates folded (edges skipped by the
/// worklist filter are not counted).
#[inline]
pub fn pull_gather<M: AccessMirror>(
    mirror: &mut M,
    prog: MonotoneProgram,
    values: &AtomicValues,
    slot: usize,
    edges: impl Iterator<Item = EdgeRef>,
    filter: GatherFilter<'_>,
    mut on_improve: impl FnMut(&mut M, usize),
) -> u64 {
    mirror.load(value_addr(slot), 4);
    let start = values.load(slot);
    if filter.early_exit && start != u32::MAX {
        // Already claimed: a monotone level never improves again.
        return 0;
    }
    let mut best = start;
    let mut improved_locally = false;
    let touched = relax_kernel(mirror, edges, |m, edge| {
        if let Some(f) = filter.active {
            m.load(frontier_bit_addr(edge.target), 4);
            if !f.contains(edge.target) {
                return EdgeFlow::Skip;
            }
        }
        m.load(value_addr(edge.target), 4);
        let cand = prog.edge_op.apply(values.load(edge.target), edge.weight);
        m.compute(2);
        if prog.combine.improves(cand, best) {
            best = cand;
            improved_locally = true;
            if filter.early_exit {
                return EdgeFlow::Stop;
            }
        }
        EdgeFlow::Continue
    });
    if improved_locally && values.try_improve(slot, best, prog.combine) {
        mirror.atomic(value_addr(slot), 4);
        on_improve(mirror, slot);
    }
    touched
}

/// Lane-fused scatter for batched execution: relaxes `edges` **once**
/// for every lane in `lanes`, whose hoisted source values sit in `dv`
/// (parallel arrays). Destination values are interleaved lane-major,
/// `values[target * k + lane]`, so the inner per-lane loop walks
/// contiguous memory. `on_improve(lane, target)` runs once per newly
/// improving `(lane, edge)` pair.
///
/// This is the wall-clock CPU batch kernel — no [`AccessMirror`]
/// parameter, because the simulator never runs fused batches.
///
/// Returns the number of edges walked (each counted once, however many
/// lanes it relaxed).
#[inline]
pub fn push_relax_lanes(
    prog: MonotoneProgram,
    values: &AtomicValues,
    k: usize,
    lanes: &[u32],
    dv: &[u32],
    edges: impl Iterator<Item = EdgeRef>,
    mut on_improve: impl FnMut(usize, usize),
) -> u64 {
    debug_assert_eq!(lanes.len(), dv.len());
    let mut touched = 0u64;
    for edge in edges {
        touched += 1;
        let base = edge.target * k;
        for (&lane, &d) in lanes.iter().zip(dv) {
            let cand = prog.edge_op.apply(d, edge.weight);
            let slot = base + lane as usize;
            let cur = values.load(slot);
            if prog.combine.improves(cand, cur) && values.try_improve(slot, cand, prog.combine) {
                on_improve(lane as usize, edge.target);
            }
        }
    }
    touched
}

/// Lane-fused gather for batched execution: folds `edges` (in-edges of
/// one node, i.e. a transpose range) **once** for every lane in
/// `lanes`, reading interleaved lane-major `values[source * k + lane]`
/// and accumulating into `best` (parallel to `lanes`, pre-seeded with
/// the gathering node's current per-lane values). With `filter_bits`,
/// edges whose source is not set in the merged-frontier bitmap are
/// skipped for every lane.
///
/// The caller publishes `best` with one `try_improve` per lane — the
/// Theorem 3 single-atomic gather scheme, K lanes wide.
///
/// Returns the number of edges folded (filtered edges not counted).
#[inline]
pub fn pull_gather_lanes(
    prog: MonotoneProgram,
    values: &AtomicValues,
    k: usize,
    lanes: &[u32],
    edges: impl Iterator<Item = EdgeRef>,
    filter_bits: Option<&[u64]>,
    best: &mut [u32],
) -> u64 {
    debug_assert_eq!(lanes.len(), best.len());
    let mut touched = 0u64;
    for edge in edges {
        if let Some(bits) = filter_bits {
            if bits[edge.target / 64] & (1 << (edge.target % 64)) == 0 {
                continue;
            }
        }
        touched += 1;
        let base = edge.target * k;
        for (i, &lane) in lanes.iter().enumerate() {
            let cand = prog
                .edge_op
                .apply(values.load(base + lane as usize), edge.weight);
            if prog.combine.improves(cand, best[i]) {
                best[i] = cand;
            }
        }
    }
    touched
}

/// Walks a contiguous global edge range `[lo, hi)` that may span node
/// boundaries — the on-the-fly mapping shape (Algorithm 4) — invoking
/// `body` once per `(owning node, edge subrange)` segment and charging
/// one `row_ptr` boundary load per crossing. The binary-search probe
/// traffic that *found* the range differs per caller (push charges
/// scattered loads, gather charges compute) and is charged before
/// calling this.
#[inline]
pub fn walk_segments<M: AccessMirror>(
    mirror: &mut M,
    graph: &Csr,
    range: (usize, usize),
    first_src: tigr_graph::NodeId,
    mut body: impl FnMut(&mut M, usize, std::ops::Range<usize>),
) {
    let (lo, hi) = range;
    let mut src = first_src.index();
    let mut src_end = graph.edge_end(first_src);
    let mut e = lo;
    while e < hi {
        while e >= src_end {
            src += 1;
            src_end = graph.edge_end(tigr_graph::NodeId::from_index(src));
            mirror.load(crate::addr::row_ptr_addr(src + 1), 4);
        }
        let seg_end = src_end.min(hi);
        body(mirror, src, e..seg_end);
        e = seg_end;
    }
}

/// Edge source over global CSR edge indices: the common case for
/// simulated kernels (contiguous `edge_start..edge_end` ranges and
/// strided [`tigr_core::EdgeCursor`]s alike).
#[inline]
pub fn csr_edges<'a>(
    g: &'a Csr,
    indices: impl Iterator<Item = usize> + 'a,
) -> impl Iterator<Item = EdgeRef> + 'a {
    indices.map(move |e| EdgeRef {
        index: e,
        target: g.edge_target(e).index(),
        weight: g.weight(e),
    })
}

/// Edge source over pre-sliced neighbor/weight arrays — the CPU hot
/// path, which indexes `row_ptr` once per node and then walks
/// contiguous slices.
#[inline]
pub fn slice_edges<'a>(
    first_edge: usize,
    targets: &'a [tigr_graph::NodeId],
    weights: Option<&'a [Weight]>,
) -> impl Iterator<Item = EdgeRef> + 'a {
    let mut ws = weights.map(|w| w.iter());
    targets.iter().enumerate().map(move |(i, &t)| EdgeRef {
        index: first_edge + i,
        target: t.index(),
        weight: match &mut ws {
            Some(it) => *it.next().expect("weights cover targets"),
            None => 1,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Combine;
    use tigr_graph::CsrBuilder;

    #[test]
    fn relax_kernel_counts_and_stops() {
        let g = CsrBuilder::new(4)
            .weighted_edge(0, 1, 5)
            .weighted_edge(0, 2, 7)
            .weighted_edge(0, 3, 9)
            .build();
        let mut seen = Vec::new();
        let touched = relax_kernel(&mut NoMirror, csr_edges(&g, 0..3), |_, e| {
            seen.push((e.target, e.weight));
            if e.target == 2 {
                EdgeFlow::Stop
            } else {
                EdgeFlow::Continue
            }
        });
        assert_eq!(touched, 2, "stop counts the stopping edge");
        assert_eq!(seen, vec![(1, 5), (2, 7)]);
        let skipped = relax_kernel(&mut NoMirror, csr_edges(&g, 0..3), |_, _| EdgeFlow::Skip);
        assert_eq!(skipped, 0, "skips are not counted");
    }

    #[test]
    fn push_relax_improves_and_reports() {
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 4)
            .weighted_edge(0, 2, 2)
            .build();
        let values = AtomicValues::from_values(vec![0, u32::MAX, 1]);
        let mut improved = Vec::new();
        let touched = push_relax(
            &mut NoMirror,
            MonotoneProgram::SSSP,
            &values,
            None,
            0,
            csr_edges(&g, 0..2),
            |_, t| improved.push(t),
        );
        assert_eq!(touched, 2);
        assert_eq!(improved, vec![1], "slot 2 already held a better value");
        assert_eq!(values.snapshot(), vec![0, 4, 1]);
    }

    #[test]
    fn pull_gather_folds_locally() {
        // Transpose view of 1->0 (w=3), 2->0 (w=1): node 0 gathers.
        let rev = CsrBuilder::new(3)
            .weighted_edge(0, 1, 3)
            .weighted_edge(0, 2, 1)
            .build();
        let values = AtomicValues::from_values(vec![u32::MAX, 2, 5]);
        let mut improved = Vec::new();
        let touched = pull_gather(
            &mut NoMirror,
            MonotoneProgram::SSSP,
            &values,
            0,
            csr_edges(&rev, 0..2),
            GatherFilter::default(),
            |_, s| improved.push(s),
        );
        assert_eq!(touched, 2);
        assert_eq!(improved, vec![0]);
        assert_eq!(values.load(0), 5, "min(2+3, 5+1)");
        assert!(MonotoneProgram::SSSP.combine == Combine::Min);
    }

    #[test]
    fn early_exit_skips_claimed_slots() {
        let rev = CsrBuilder::new(2).edge(0, 1).build();
        let values = AtomicValues::from_values(vec![3, 0]);
        let filter = GatherFilter {
            active: None,
            early_exit: true,
        };
        let touched = pull_gather(
            &mut NoMirror,
            MonotoneProgram::BFS,
            &values,
            0,
            csr_edges(&rev, 0..1),
            filter,
            |_, _| {},
        );
        assert_eq!(touched, 0, "claimed slot folds nothing");
        assert_eq!(values.load(0), 3);
    }

    #[test]
    fn push_relax_lanes_fuses_one_edge_walk() {
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 4)
            .weighted_edge(0, 2, 2)
            .build();
        // Two live lanes out of k = 3, interleaved values[v * 3 + lane].
        let values = AtomicValues::from_values(vec![
            0,
            u32::MAX,
            5, // node 0: lane0=0, lane2=5
            u32::MAX,
            u32::MAX,
            6, // node 1
            1,
            u32::MAX,
            u32::MAX, // node 2
        ]);
        let mut improved = Vec::new();
        let touched = push_relax_lanes(
            MonotoneProgram::SSSP,
            &values,
            3,
            &[0, 2],
            &[0, 5],
            csr_edges(&g, 0..2),
            |lane, t| improved.push((lane, t)),
        );
        assert_eq!(touched, 2, "two edges walked once each");
        // lane 0: 0+4 improves node1 (MAX), 0+2 improves node2? cur=1, no.
        // lane 2: 5+4=9 improves node1's 6? no. 5+2=7 vs node2 MAX: yes.
        assert_eq!(improved, vec![(0, 1), (2, 2)]);
        assert_eq!(values.load(3), 4, "node 1, lane 0");
        assert_eq!(values.load(8), 7, "node 2, lane 2");
        assert_eq!(values.load(5), 6, "node 1, lane 2 kept the better 6");
    }

    #[test]
    fn pull_gather_lanes_folds_and_filters() {
        // Transpose view: node 0 gathers from 1 (w=3) and 2 (w=1).
        let rev = CsrBuilder::new(3)
            .weighted_edge(0, 1, 3)
            .weighted_edge(0, 2, 1)
            .build();
        let values = AtomicValues::from_values(vec![
            u32::MAX,
            u32::MAX, // node 0, lanes {0,1}
            2,
            7, // node 1
            5,
            0, // node 2
        ]);
        let mut best = vec![u32::MAX, u32::MAX];
        let touched = pull_gather_lanes(
            MonotoneProgram::SSSP,
            &values,
            2,
            &[0, 1],
            csr_edges(&rev, 0..2),
            None,
            &mut best,
        );
        assert_eq!(touched, 2);
        assert_eq!(best, vec![5, 1], "min(2+3, 5+1) and min(7+3, 0+1)");
        // Bitmap admitting only node 2 skips the fold from node 1.
        let bits = [0b100u64];
        let mut best = vec![u32::MAX, u32::MAX];
        let touched = pull_gather_lanes(
            MonotoneProgram::SSSP,
            &values,
            2,
            &[0, 1],
            csr_edges(&rev, 0..2),
            Some(&bits),
            &mut best,
        );
        assert_eq!(touched, 1);
        assert_eq!(best, vec![6, 1]);
    }

    #[test]
    fn slice_edges_matches_csr_edges() {
        let g = CsrBuilder::new(4)
            .weighted_edge(1, 2, 8)
            .weighted_edge(1, 3, 9)
            .build();
        let v = tigr_graph::NodeId::new(1);
        let lo = g.edge_start(v);
        let a: Vec<(usize, usize, Weight)> = csr_edges(&g, lo..g.edge_end(v))
            .map(|e| (e.index, e.target, e.weight))
            .collect();
        let b: Vec<(usize, usize, Weight)> = slice_edges(lo, g.neighbors(v), g.neighbor_weights(v))
            .map(|e| (e.index, e.target, e.weight))
            .collect();
        assert_eq!(a, b);
    }
}
