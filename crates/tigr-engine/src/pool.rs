//! Persistent worker pool with barrier-synchronized BSP epochs and
//! chunked work-stealing.
//!
//! The CPU engine's BSP loop runs many short epochs (one per frontier
//! iteration); spawning OS threads inside that loop costs more than the
//! relaxation work of a sparse iteration. [`with_pool`] instead spawns
//! the workers **once per run**: each epoch is a pair of barrier phases
//! (release, join) over long-lived threads, so the per-iteration cost is
//! a couple of futex wakes rather than thread creation.
//!
//! Work is distributed as index ranges. The driver hands each worker an
//! initial `[lo, hi)` range per epoch; workers carve their range into
//! chunks with an atomic cursor and, when their own range is exhausted,
//! *steal* chunks from other workers' cursors round-robin. Because a
//! claim is a single `fetch_add` on a monotone cursor, owner and thief
//! claims are the same operation — there is no deque juggling and no
//! ABA. A hub-heavy range therefore drains across all idle workers
//! instead of pinning its owner (the load-balance argument of the
//! paper's §4, applied to CPU scheduling).
//!
//! [`SpawnPerEpoch`] is the legacy executor kept as the ablation
//! baseline: it implements the same [`EpochRunner`] contract by spawning
//! scoped threads every epoch and never steals — exactly the engine's
//! historical behavior, so benchmarks can quantify what the pool buys.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Executes BSP epochs over per-worker index ranges.
///
/// `bounds[w]` is worker `w`'s initial `[lo, hi)` slice of an abstract
/// index space; how indices map to work items (physical nodes, active
/// list slots, virtual nodes) is the caller's business. `run_epoch`
/// returns only after every index of every range has been processed by
/// exactly one worker.
pub trait EpochRunner: Sync {
    /// Number of workers (and required length of `bounds`).
    fn workers(&self) -> usize;

    /// Runs one epoch.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len() != self.workers()` or a range has
    /// `lo > hi`.
    fn run_epoch(&self, bounds: &[(usize, usize)]);

    /// Cumulative chunks claimed from another worker's range.
    fn steals(&self) -> u64;
}

/// One worker's share of an epoch: a monotone claim cursor over
/// `[next, end)`. Owner and thieves all claim with `fetch_add`.
struct StealQueue {
    next: AtomicUsize,
    end: AtomicUsize,
}

struct Shared<'b> {
    queues: Vec<StealQueue>,
    /// Claim granularity for the current epoch, in items.
    chunk: AtomicUsize,
    /// Entered twice per epoch (release + join) by workers and driver.
    barrier: Barrier,
    stop: AtomicBool,
    steals: AtomicU64,
    body: &'b (dyn Fn(usize, Range<usize>) + Sync),
}

/// The persistent pool: driver-side handle implementing [`EpochRunner`].
///
/// Constructed by [`with_pool`]; workers live for the whole closure.
pub struct WorkerPool<'b> {
    shared: Shared<'b>,
}

impl std::fmt::Debug for WorkerPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.shared.queues.len())
            .field("steals", &self.shared.steals.load(Ordering::Relaxed))
            .finish()
    }
}

/// Spawns `threads` workers executing `body(worker_id, index_range)` for
/// every claimed chunk, runs `driver` with the pool handle, then shuts
/// the workers down. No thread is spawned after this returns control to
/// `driver` — each [`EpochRunner::run_epoch`] call only cycles the
/// already-running workers through a barrier pair.
///
/// # Panics
///
/// Panics if `threads == 0`. `body` must not panic: a worker that
/// unwinds mid-epoch would leave the driver waiting on the join barrier.
pub fn with_pool<R>(
    threads: usize,
    body: &(dyn Fn(usize, Range<usize>) + Sync),
    driver: impl FnOnce(&WorkerPool<'_>) -> R,
) -> R {
    assert!(threads > 0, "need at least one worker thread");
    let pool = WorkerPool {
        shared: Shared {
            queues: (0..threads)
                .map(|_| StealQueue {
                    next: AtomicUsize::new(0),
                    end: AtomicUsize::new(0),
                })
                .collect(),
            chunk: AtomicUsize::new(1),
            barrier: Barrier::new(threads + 1),
            stop: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            body,
        },
    };
    std::thread::scope(|scope| {
        for w in 0..threads {
            let shared = &pool.shared;
            scope.spawn(move || worker_loop(w, shared));
        }
        // Releases the workers even if `driver` unwinds, so the scope's
        // implicit join cannot deadlock on an assertion failure.
        let _stop = StopGuard(&pool.shared);
        driver(&pool)
    })
}

struct StopGuard<'a, 'b>(&'a Shared<'b>);

impl Drop for StopGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Ordering::Release);
        self.0.barrier.wait();
    }
}

fn worker_loop(me: usize, shared: &Shared<'_>) {
    loop {
        shared.barrier.wait(); // epoch start (or shutdown)
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let chunk = shared.chunk.load(Ordering::Relaxed);
        let mut stolen = 0u64;
        while let Some((range, theft)) = claim(shared, me, chunk) {
            stolen += theft as u64;
            (shared.body)(me, range);
        }
        if stolen > 0 {
            shared.steals.fetch_add(stolen, Ordering::Relaxed);
        }
        shared.barrier.wait(); // epoch join
    }
}

/// Claims the next chunk: own queue first, then other queues
/// round-robin. Returns the claimed range and whether it was stolen.
fn claim(shared: &Shared<'_>, me: usize, chunk: usize) -> Option<(Range<usize>, bool)> {
    let nq = shared.queues.len();
    for i in 0..nq {
        let q = &shared.queues[(me + i) % nq];
        let end = q.end.load(Ordering::Relaxed);
        if q.next.load(Ordering::Relaxed) >= end {
            continue;
        }
        let lo = q.next.fetch_add(chunk, Ordering::Relaxed);
        if lo < end {
            return Some((lo..(lo + chunk).min(end), i != 0));
        }
    }
    None
}

/// Claim granularity: enough chunks per worker that stealing can
/// rebalance, large enough that cursor traffic stays cold.
fn chunk_size(total: usize, workers: usize) -> usize {
    (total / (workers * 8)).clamp(1, 2048)
}

impl EpochRunner for WorkerPool<'_> {
    fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    fn run_epoch(&self, bounds: &[(usize, usize)]) {
        let sh = &self.shared;
        assert_eq!(bounds.len(), sh.queues.len(), "one bound per worker");
        let mut total = 0;
        for (q, &(lo, hi)) in sh.queues.iter().zip(bounds) {
            assert!(lo <= hi, "invalid bound [{lo}, {hi})");
            total += hi - lo;
            q.next.store(lo, Ordering::Relaxed);
            q.end.store(hi, Ordering::Relaxed);
        }
        sh.chunk
            .store(chunk_size(total, bounds.len()), Ordering::Relaxed);
        // The barrier's internal lock publishes the queue stores to the
        // workers it releases.
        sh.barrier.wait(); // release
        sh.barrier.wait(); // join
    }

    fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }
}

/// The legacy executor: spawns scoped threads **every epoch**, one per
/// non-empty range, with no stealing — the engine's historical
/// node-chunk behavior, preserved as the scheduling-ablation baseline.
pub struct SpawnPerEpoch<'b> {
    threads: usize,
    body: &'b (dyn Fn(usize, Range<usize>) + Sync),
}

impl std::fmt::Debug for SpawnPerEpoch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpawnPerEpoch")
            .field("threads", &self.threads)
            .finish()
    }
}

impl<'b> SpawnPerEpoch<'b> {
    /// A spawning executor with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize, body: &'b (dyn Fn(usize, Range<usize>) + Sync)) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        SpawnPerEpoch { threads, body }
    }
}

impl EpochRunner for SpawnPerEpoch<'_> {
    fn workers(&self) -> usize {
        self.threads
    }

    fn run_epoch(&self, bounds: &[(usize, usize)]) {
        assert_eq!(bounds.len(), self.threads, "one bound per worker");
        std::thread::scope(|scope| {
            for (w, &(lo, hi)) in bounds.iter().enumerate() {
                assert!(lo <= hi, "invalid bound [{lo}, {hi})");
                if lo >= hi {
                    continue;
                }
                let body = self.body;
                scope.spawn(move || body(w, lo..hi));
            }
        });
    }

    fn steals(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Every index of every bound is processed exactly once.
    fn coverage_check(runner: &dyn EpochRunner, hits: &[AtomicU64], bounds: &[(usize, usize)]) {
        runner.run_epoch(bounds);
        for (i, h) in hits.iter().enumerate() {
            let expected = bounds.iter().any(|&(lo, hi)| lo <= i && i < hi) as u64;
            assert_eq!(h.swap(0, Ordering::Relaxed), expected, "index {i}");
        }
    }

    #[test]
    fn pool_processes_every_index_exactly_once() {
        let hits: Vec<AtomicU64> = (0..10_000).map(|_| AtomicU64::new(0)).collect();
        let body = |_w: usize, r: Range<usize>| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        };
        with_pool(4, &body, |pool| {
            assert_eq!(pool.workers(), 4);
            // Even split, hub-heavy split, empty epoch, tiny epoch.
            coverage_check(
                pool,
                &hits,
                &[(0, 2500), (2500, 5000), (5000, 7500), (7500, 10_000)],
            );
            coverage_check(
                pool,
                &hits,
                &[(0, 9700), (9700, 9800), (9800, 9900), (9900, 10_000)],
            );
            coverage_check(pool, &hits, &[(0, 0), (0, 0), (0, 0), (0, 0)]);
            coverage_check(pool, &hits, &[(0, 1), (1, 2), (2, 3), (3, 3)]);
        });
    }

    #[test]
    fn skewed_bounds_are_stolen() {
        let done = AtomicU64::new(0);
        let body = |_w: usize, r: Range<usize>| {
            done.fetch_add(r.len() as u64, Ordering::Relaxed);
            // Yield the core between claims so sibling workers get
            // scheduled mid-epoch even on a single-CPU host.
            std::thread::sleep(std::time::Duration::from_micros(200));
        };
        let steals = with_pool(4, &body, |pool| {
            // All work on worker 0: the others must steal (each claim is
            // chunked, so a 10k-item queue yields many chunks).
            pool.run_epoch(&[(0, 10_000), (0, 0), (0, 0), (0, 0)]);
            pool.steals()
        });
        assert_eq!(done.load(Ordering::Relaxed), 10_000);
        assert!(steals > 0, "idle workers never stole");
    }

    #[test]
    fn pool_reuses_workers_across_epochs() {
        let sum = AtomicU64::new(0);
        let body = |_w: usize, r: Range<usize>| {
            sum.fetch_add(r.map(|i| i as u64).sum(), Ordering::Relaxed);
        };
        with_pool(2, &body, |pool| {
            for _ in 0..100 {
                pool.run_epoch(&[(0, 50), (50, 100)]);
            }
        });
        // 100 epochs × sum(0..100)
        assert_eq!(sum.load(Ordering::Relaxed), 100 * 4950);
    }

    #[test]
    fn single_worker_pool_works() {
        let sum = AtomicU64::new(0);
        let body = |w: usize, r: Range<usize>| {
            assert_eq!(w, 0);
            sum.fetch_add(r.len() as u64, Ordering::Relaxed);
        };
        with_pool(1, &body, |pool| {
            pool.run_epoch(&[(5, 25)]);
            assert_eq!(pool.steals(), 0, "nothing to steal from");
        });
        assert_eq!(sum.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn spawn_per_epoch_matches_contract_without_steals() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        let body = |_w: usize, r: Range<usize>| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        };
        let runner = SpawnPerEpoch::new(3, &body);
        assert_eq!(runner.workers(), 3);
        coverage_check(&runner, &hits, &[(0, 90), (90, 95), (95, 100)]);
        assert_eq!(runner.steals(), 0);
    }

    #[test]
    fn chunk_size_is_clamped() {
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(10, 4), 1);
        assert_eq!(chunk_size(3200, 4), 100);
        assert_eq!(chunk_size(10_000_000, 4), 2048);
    }

    #[test]
    #[should_panic(expected = "one bound per worker")]
    fn bounds_arity_is_checked() {
        let body = |_w: usize, _r: Range<usize>| {};
        with_pool(2, &body, |pool| pool.run_epoch(&[(0, 10)]));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let body = |_w: usize, _r: Range<usize>| {};
        with_pool(0, &body, |_| {});
    }
}
