//! The engine facade: a builder assembling an [`ExecutionPlan`],
//! device-memory checks, and one-call runs of each analytic.

use std::error::Error as StdError;
use std::fmt;

use tigr_graph::NodeId;
use tigr_sim::{DeviceMemory, GpuConfig, GpuSimulator, OutOfMemory};

use tigr_graph::Csr;

use tigr_core::{CancelToken, PreparedGraph};

use crate::algorithms::{bc, pr};
use crate::backend::{run_sim_plan, Backend, CpuPool, PullSide, Sequential};
use crate::cpu_parallel::{
    run_cpu_pr_cancellable, run_cpu_with_cancellable, CpuOptions, CpuPrOutput, CpuRunOutput,
    CpuSchedule,
};
use crate::frontier::FrontierMode;
use crate::operators::{
    mask_above, predecessors, triangle_counts, ComputeStep, Pipeline, PipelineBody, PipelineOutput,
};
use crate::plan::{BackendKind, Direction, ExecutionPlan, PlanError};
use crate::program::MonotoneProgram;
use crate::push::{MonotoneOutput, PushOptions, SyncMode};
use crate::representation::Representation;

/// Errors an engine run can produce.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The representation does not fit the configured device memory —
    /// the `OOM` entries of Table 4.
    OutOfMemory(OutOfMemory),
    /// The plan combination is not licensed by the paper's theorems
    /// (e.g. pull over a non-associative program on a virtual view).
    InvalidPlan(PlanError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::OutOfMemory(e) => write!(f, "device {e}"),
            EngineError::InvalidPlan(e) => write!(f, "invalid plan: {e}"),
        }
    }
}

impl StdError for EngineError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            EngineError::OutOfMemory(e) => Some(e),
            EngineError::InvalidPlan(e) => Some(e),
        }
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::InvalidPlan(e)
    }
}

/// The Tigr graph-processing engine: assembles an [`ExecutionPlan`] via
/// builder knobs and runs it on the configured backend (the warp
/// simulator by default).
///
/// # Example
///
/// ```
/// use tigr_engine::{Engine, Representation};
/// use tigr_graph::{CsrBuilder, NodeId};
///
/// let g = CsrBuilder::new(3).weighted_edge(0, 1, 2).weighted_edge(1, 2, 2).build();
/// let engine = Engine::default();
/// let out = engine.sssp(&Representation::Original(&g), NodeId::new(0))?;
/// assert_eq!(out.values, vec![0, 2, 4]);
/// # Ok::<(), tigr_engine::EngineError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    sim: GpuSimulator,
    plan: ExecutionPlan,
    device_memory: Option<u64>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(GpuConfig::default())
    }
}

impl Engine {
    /// Creates an engine over a sequential (deterministic) simulator.
    pub fn new(config: GpuConfig) -> Self {
        Engine {
            sim: GpuSimulator::new(config),
            plan: ExecutionPlan::default(),
            device_memory: None,
        }
    }

    /// Creates an engine whose simulator replays warps on all host cores
    /// (identical metrics, faster wall clock).
    pub fn parallel(config: GpuConfig) -> Self {
        Engine {
            sim: GpuSimulator::new_parallel(config),
            plan: ExecutionPlan::default(),
            device_memory: None,
        }
    }

    /// Replaces the whole execution plan.
    pub fn with_plan(mut self, plan: ExecutionPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Selects the traversal direction (push, pull, or the
    /// direction-optimizing auto switch).
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.plan.direction = direction;
        self
    }

    /// Selects which executor runs monotone programs.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.plan.backend = backend;
        self
    }

    /// Overrides the push options (worklist, sync mode, iteration cap).
    pub fn with_options(mut self, options: PushOptions) -> Self {
        self.plan.push = options;
        self
    }

    /// Enables worklist execution with the given frontier scheduling
    /// policy (shorthand for setting `worklist` + `frontier` on the push
    /// options).
    pub fn with_frontier(mut self, mode: FrontierMode) -> Self {
        self.plan.push.worklist = true;
        self.plan.push.frontier = mode;
        self
    }

    /// Enforces a device-memory budget in bytes; representations whose
    /// footprint exceeds it fail with [`EngineError::OutOfMemory`].
    pub fn with_device_memory(mut self, bytes: u64) -> Self {
        self.device_memory = Some(bytes);
        self
    }

    /// Overrides the wall-clock CPU path's options (threads, frontier,
    /// scheduling policy) used by [`Engine::run_cpu`] and
    /// [`Engine::cpu_pagerank`].
    pub fn with_cpu_options(mut self, options: CpuOptions) -> Self {
        self.plan.cpu = options;
        self
    }

    /// Selects the CPU work-distribution policy (shorthand for setting
    /// `schedule` on the CPU options).
    pub fn with_cpu_schedule(mut self, schedule: CpuSchedule) -> Self {
        self.plan.cpu.schedule = schedule;
        self
    }

    /// Installs a cooperative cancellation token, polled by every run at
    /// iteration boundaries. Arm it with a deadline
    /// ([`CancelToken::with_deadline`]) for per-request latency budgets,
    /// or keep a clone and call [`CancelToken::cancel`] to abort from
    /// another thread; a cancelled run returns with `cancelled = true`
    /// and a consistent monotone value prefix.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.plan.cancel = cancel;
        self
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &GpuSimulator {
        &self.sim
    }

    /// The assembled execution plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The plan's push options.
    pub fn options(&self) -> &PushOptions {
        &self.plan.push
    }

    /// The plan's CPU-path options.
    pub fn cpu_options(&self) -> &CpuOptions {
        &self.plan.cpu
    }

    /// Checks `rep` against the configured device budget.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::OutOfMemory`] when it does not fit.
    pub fn check_footprint(&self, rep: &Representation<'_>) -> Result<(), EngineError> {
        if let Some(capacity) = self.device_memory {
            let mut mem = DeviceMemory::new(capacity);
            mem.alloc(rep.device_footprint_bytes())
                .map_err(EngineError::OutOfMemory)?;
        }
        Ok(())
    }

    /// Runs an arbitrary monotone program under the assembled plan: the
    /// single entry point every per-algorithm wrapper aliases.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::OutOfMemory`] if the representation exceeds
    /// the device budget, or [`EngineError::InvalidPlan`] if the plan
    /// combination is not licensed for `rep`/`prog` (Theorem 3 and
    /// friends — see [`PlanError`]).
    pub fn run_program(
        &self,
        rep: &Representation<'_>,
        prog: MonotoneProgram,
        source: Option<NodeId>,
    ) -> Result<MonotoneOutput, EngineError> {
        self.check_footprint(rep)?;
        self.plan.validate(rep, &prog)?;
        self.dispatch_monotone(rep, None, prog, source)
    }

    /// The one backend dispatch every monotone entry point — legacy
    /// programs and operator pipelines alike — funnels through, so
    /// pipeline-built analytics are byte-equal to the pre-operator
    /// engines by construction.
    fn dispatch_monotone(
        &self,
        rep: &Representation<'_>,
        pull_side: Option<PullSide<'_>>,
        prog: MonotoneProgram,
        source: Option<NodeId>,
    ) -> Result<MonotoneOutput, EngineError> {
        match self.plan.backend {
            // The engine owns the simulator, so it dispatches directly
            // rather than constructing a throwaway WarpSim.
            BackendKind::WarpSim => Ok(run_sim_plan(
                &self.sim, rep, pull_side, prog, source, &self.plan,
            )),
            BackendKind::CpuPool => CpuPool.run_monotone(rep, prog, source, &self.plan),
            BackendKind::Sequential => Sequential.run_monotone(rep, prog, source, &self.plan),
        }
    }

    /// Runs a monotone program over a [`PreparedGraph`]: the
    /// representation is derived from the prepared views
    /// ([`Representation::from_prepared`]), and — on the simulator
    /// backend — a prepared transpose (plus mirrored overlay) feeds the
    /// pull/auto drivers directly, so a cache-warm run performs no
    /// transpose or overlay construction at all.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_program`].
    pub fn run_prepared(
        &self,
        prepared: &PreparedGraph,
        prog: MonotoneProgram,
        source: Option<NodeId>,
    ) -> Result<MonotoneOutput, EngineError> {
        let rep = Representation::from_prepared(prepared);
        self.check_footprint(&rep)?;
        self.plan.validate(&rep, &prog)?;
        let pull_side = prepared.transpose().map(|reverse| PullSide {
            reverse,
            overlay: prepared.rev_overlay(),
        });
        self.dispatch_monotone(&rep, pull_side, prog, source)
    }

    /// Runs an operator [`Pipeline`] under the assembled plan: the
    /// algorithm-as-data entry point. Monotone pipelines lower onto the
    /// exact dispatch [`Engine::run_program`] uses (byte-identical
    /// outputs); PR/BC pipelines run their dedicated drivers with
    /// results reinterpreted as bit patterns; compute-only pipelines
    /// (triangle counting) never traverse at all.
    ///
    /// # Errors
    ///
    /// [`EngineError::OutOfMemory`] on budget overflow, or
    /// [`EngineError::InvalidPlan`] when the pipeline's typed
    /// capabilities reject the representation/plan combination (see
    /// [`crate::ExecutionPlan::validate_pipeline`]).
    pub fn run_pipeline(
        &self,
        rep: &Representation<'_>,
        pipeline: &Pipeline,
        source: Option<NodeId>,
    ) -> Result<PipelineOutput, EngineError> {
        self.check_footprint(rep)?;
        self.plan.validate_pipeline(rep, pipeline, source)?;
        self.run_pipeline_validated(rep, None, pipeline, source)
    }

    /// Runs an operator [`Pipeline`] over a [`PreparedGraph`]; prepared
    /// transpose/overlay views feed the pull and auto paths directly
    /// (see [`Engine::run_prepared`] and [`Engine::pagerank_prepared`]).
    ///
    /// # Errors
    ///
    /// See [`Engine::run_pipeline`].
    pub fn run_prepared_pipeline(
        &self,
        prepared: &PreparedGraph,
        pipeline: &Pipeline,
        source: Option<NodeId>,
    ) -> Result<PipelineOutput, EngineError> {
        let rep = Representation::from_prepared(prepared);
        self.check_footprint(&rep)?;
        self.plan.validate_pipeline(&rep, pipeline, source)?;
        if let PipelineBody::PageRank(options) = &pipeline.body {
            let out = self.pagerank_prepared(prepared, options)?;
            return Ok(PipelineOutput {
                values: float_bits(&out.ranks),
                iterations: out.report.num_iterations() as u64,
                converged: out.converged,
                cancelled: out.cancelled,
            });
        }
        let pull_side = prepared.transpose().map(|reverse| PullSide {
            reverse,
            overlay: prepared.rev_overlay(),
        });
        self.run_pipeline_validated(&rep, pull_side, pipeline, source)
    }

    fn run_pipeline_validated(
        &self,
        rep: &Representation<'_>,
        pull_side: Option<PullSide<'_>>,
        pipeline: &Pipeline,
        source: Option<NodeId>,
    ) -> Result<PipelineOutput, EngineError> {
        match &pipeline.body {
            PipelineBody::Monotone { prog, rounds, post } => {
                let out = match rounds {
                    None => self.dispatch_monotone(rep, pull_side, *prog, source)?,
                    Some(rounds) => self.run_rounds(rep, *prog, source, *rounds)?,
                };
                let mut values = out.values;
                match post {
                    None => {}
                    Some(ComputeStep::MaskAbove(bound)) => mask_above(&mut values, *bound),
                    Some(ComputeStep::Predecessors) => {
                        let src = source.expect("validated: paths requires a source");
                        let preds = predecessors(rep.graph(), prog.edge_op, &values, src);
                        values.extend_from_slice(&preds);
                    }
                    Some(step) => unreachable!("{step:?} is not a monotone post-pass"),
                }
                Ok(PipelineOutput {
                    values,
                    iterations: out.directions.len() as u64,
                    converged: out.converged,
                    cancelled: out.cancelled,
                })
            }
            PipelineBody::PageRank(options) => {
                let g = rep.graph();
                let degrees = pr::out_degrees(g);
                let out = if options.mode == pr::PrMode::Pull {
                    // The pull driver gathers over the transpose; build
                    // it here (the prepared path reuses cached views).
                    let rev = tigr_graph::reverse::transpose(g);
                    self.pagerank(&Representation::Original(&rev), &degrees, options)?
                } else {
                    self.pagerank(rep, &degrees, options)?
                };
                Ok(PipelineOutput {
                    values: float_bits(&out.ranks),
                    iterations: out.report.num_iterations() as u64,
                    converged: out.converged,
                    cancelled: out.cancelled,
                })
            }
            PipelineBody::Betweenness => {
                let src = source.expect("validated: bc requires a source");
                let out = self.betweenness(rep, src)?;
                Ok(PipelineOutput {
                    values: float_bits(&out.centrality),
                    iterations: out.report.num_iterations() as u64,
                    converged: true,
                    cancelled: false,
                })
            }
            PipelineBody::ComputeOnly(ComputeStep::TriangleCount) => Ok(PipelineOutput {
                values: triangle_counts(rep.graph()),
                iterations: 0,
                converged: true,
                cancelled: false,
            }),
            PipelineBody::ComputeOnly(step) => {
                unreachable!("{step:?} is not a standalone pipeline")
            }
        }
    }

    /// Runs a monotone program for exactly `rounds` synchronous (BSP)
    /// full sweeps — the label-propagation schedule. The pipeline pins
    /// push + BSP + no worklist so the per-round state is the classic
    /// Jacobi iteration on every backend; the CPU pool (whose sweeps
    /// are relaxed-only) degrades to the sequential reference, exactly
    /// as the batch former degrades the simulator.
    fn run_rounds(
        &self,
        rep: &Representation<'_>,
        prog: MonotoneProgram,
        source: Option<NodeId>,
        rounds: usize,
    ) -> Result<MonotoneOutput, EngineError> {
        let mut plan = self.plan.clone();
        plan.direction = Direction::Push;
        plan.push.worklist = false;
        plan.push.sync = SyncMode::Bsp;
        plan.push.max_iterations = rounds;
        if plan.backend == BackendKind::CpuPool {
            plan.backend = BackendKind::Sequential;
        }
        match plan.backend {
            BackendKind::WarpSim => Ok(run_sim_plan(&self.sim, rep, None, prog, source, &plan)),
            _ => Sequential.run_monotone(rep, prog, source, &plan),
        }
    }

    /// Runs a batched multi-source monotone program: every lane of
    /// `batch` advances through one fused sequence of sweeps over
    /// `rep`, sharing each node's adjacency walk across lanes (see
    /// [`crate::batch`]). Per-lane cancellation comes from the lanes
    /// themselves, not the engine's plan token.
    ///
    /// The plan's backend picks the executor. [`BackendKind::CpuPool`]
    /// runs the parallel lane-fused executor
    /// ([`crate::batch::run_batch_cpu_pool`]): sweeps on the
    /// work-stealing pool, per-sweep Beamer direction switching over
    /// the merged frontier, lane outputs *value*-equal to solo runs.
    /// Any other backend runs the deterministic sequential reference —
    /// push (and auto, whose fixpoint equals push's) via the fused
    /// [`crate::batch::run_batch_sequential_push`] with lane outputs
    /// **byte**-equal to solo sequential push runs; a forced pull plan
    /// runs each lane's solo sequential pull schedule.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_program`].
    pub fn run_batch(
        &self,
        rep: &Representation<'_>,
        batch: &crate::batch::BatchProgram,
        arena: &mut crate::batch::BatchArena,
    ) -> Result<crate::batch::BatchOutput, EngineError> {
        self.run_batch_inner(rep, None, batch, arena)
    }

    /// Runs a batched multi-source monotone program over a
    /// [`PreparedGraph`] (see [`Engine::run_batch`]); a prepared
    /// transpose feeds the parallel executor's pull sweeps directly.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_program`].
    pub fn run_prepared_batch(
        &self,
        prepared: &PreparedGraph,
        batch: &crate::batch::BatchProgram,
        arena: &mut crate::batch::BatchArena,
    ) -> Result<crate::batch::BatchOutput, EngineError> {
        self.run_batch_inner(
            &Representation::from_prepared(prepared),
            prepared.transpose(),
            batch,
            arena,
        )
    }

    fn run_batch_inner(
        &self,
        rep: &Representation<'_>,
        pull: Option<&Csr>,
        batch: &crate::batch::BatchProgram,
        arena: &mut crate::batch::BatchArena,
    ) -> Result<crate::batch::BatchOutput, EngineError> {
        self.check_footprint(rep)?;
        let mut plan = self.plan.clone();
        if plan.backend == BackendKind::WarpSim {
            // The simulator has no batched path; the sequential
            // reference preserves its per-lane semantics.
            plan.backend = BackendKind::Sequential;
        }
        plan.validate(rep, &batch.prog)?;
        match plan.backend {
            BackendKind::CpuPool => Ok(crate::batch::run_batch_cpu_pool(
                rep, pull, batch, &plan, arena,
            )),
            _ if plan.direction == Direction::Pull => run_lanes_solo(rep, batch, &plan),
            _ => Ok(crate::batch::run_batch_sequential_push(
                rep, batch, &plan.push, arena,
            )),
        }
    }

    /// PageRank over a [`PreparedGraph`]. Pull mode gathers along
    /// in-edges: the prepared transpose (and mirrored overlay) is used
    /// when present, and built on the fly otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::OutOfMemory`] if the representation exceeds
    /// the device budget.
    pub fn pagerank_prepared(
        &self,
        prepared: &PreparedGraph,
        options: &pr::PrOptions,
    ) -> Result<pr::PrOutput, EngineError> {
        let out_degrees = pr::out_degrees(prepared.graph());
        if options.mode != pr::PrMode::Pull {
            return self.pagerank(
                &Representation::from_prepared(prepared),
                &out_degrees,
                options,
            );
        }
        let rev_owned;
        let rev = match prepared.transpose() {
            Some(rev) => rev,
            None => {
                rev_owned = tigr_graph::reverse::transpose(prepared.graph());
                &rev_owned
            }
        };
        let rov_owned;
        let rep = match (prepared.overlay(), prepared.rev_overlay()) {
            (Some(_), Some(rov)) => Representation::Virtual {
                graph: rev,
                overlay: rov,
            },
            (Some(ov), None) => {
                rov_owned = if ov.is_coalesced() {
                    tigr_core::VirtualGraph::coalesced(rev, ov.k())
                } else {
                    tigr_core::VirtualGraph::new(rev, ov.k())
                };
                Representation::Virtual {
                    graph: rev,
                    overlay: &rov_owned,
                }
            }
            _ => Representation::Original(rev),
        };
        self.pagerank(&rep, &out_degrees, options)
    }

    /// Runs an arbitrary monotone program (alias of
    /// [`Engine::run_program`]).
    ///
    /// # Errors
    ///
    /// See [`Engine::run_program`].
    pub fn run(
        &self,
        rep: &Representation<'_>,
        prog: MonotoneProgram,
        source: Option<NodeId>,
    ) -> Result<MonotoneOutput, EngineError> {
        self.run_program(rep, prog, source)
    }

    /// Single-source shortest paths.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_program`].
    pub fn sssp(
        &self,
        rep: &Representation<'_>,
        source: NodeId,
    ) -> Result<MonotoneOutput, EngineError> {
        self.run_program(rep, MonotoneProgram::SSSP, Some(source))
    }

    /// Breadth-first search.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_program`].
    pub fn bfs(
        &self,
        rep: &Representation<'_>,
        source: NodeId,
    ) -> Result<MonotoneOutput, EngineError> {
        self.run_program(rep, MonotoneProgram::BFS, Some(source))
    }

    /// Single-source widest path.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_program`].
    pub fn sswp(
        &self,
        rep: &Representation<'_>,
        source: NodeId,
    ) -> Result<MonotoneOutput, EngineError> {
        self.run_program(rep, MonotoneProgram::SSWP, Some(source))
    }

    /// Connected components.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_program`].
    pub fn cc(&self, rep: &Representation<'_>) -> Result<MonotoneOutput, EngineError> {
        self.run_program(rep, MonotoneProgram::CC, None)
    }

    /// PageRank (see [`crate::algorithms::pr::run`] for the contract).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::OutOfMemory`] if the representation exceeds
    /// the device budget.
    pub fn pagerank(
        &self,
        rep: &Representation<'_>,
        out_degrees: &[u32],
        options: &pr::PrOptions,
    ) -> Result<pr::PrOutput, EngineError> {
        self.check_footprint(rep)?;
        Ok(pr::run_cancellable(
            &self.sim,
            rep,
            out_degrees,
            options,
            &self.plan.cancel,
        ))
    }

    /// Runs a monotone program on the wall-clock CPU path (no simulator)
    /// with the plan's CPU options — threads, frontier, and the
    /// [`CpuSchedule`] work-distribution policy all apply.
    ///
    /// # Panics
    ///
    /// See [`crate::cpu_parallel::run_cpu_with`].
    pub fn run_cpu(&self, g: &Csr, prog: MonotoneProgram, source: Option<NodeId>) -> CpuRunOutput {
        run_cpu_with_cancellable(g, prog, source, &self.plan.cpu, &self.plan.cancel)
    }

    /// Runs push-mode PageRank on the wall-clock CPU path with the
    /// plan's CPU options.
    ///
    /// # Panics
    ///
    /// See [`crate::cpu_parallel::run_cpu_pr`].
    pub fn cpu_pagerank(&self, g: &Csr, options: &pr::PrOptions) -> CpuPrOutput {
        run_cpu_pr_cancellable(g, options, &self.plan.cpu, &self.plan.cancel)
    }

    /// Single-source betweenness centrality.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::OutOfMemory`] if the representation exceeds
    /// the device budget.
    pub fn betweenness(
        &self,
        rep: &Representation<'_>,
        source: NodeId,
    ) -> Result<bc::BcOutput, EngineError> {
        self.check_footprint(rep)?;
        Ok(bc::run(&self.sim, rep, source))
    }
}

/// Reinterprets `f32` results as `u32` bit patterns
/// ([`ComputeStep::FloatBits`]): PR/BC travel the same wire format as
/// the monotone analytics.
fn float_bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Sequential batch fallback for plans with no fused executor (forced
/// pull): each lane runs its solo sequential schedule under its own
/// cancellation token, so outputs are trivially byte-equal to solo
/// runs.
fn run_lanes_solo(
    rep: &Representation<'_>,
    batch: &crate::batch::BatchProgram,
    plan: &ExecutionPlan,
) -> Result<crate::batch::BatchOutput, EngineError> {
    let mut lanes = Vec::with_capacity(batch.lanes.len());
    for lane in &batch.lanes {
        let mut lane_plan = plan.clone();
        lane_plan.cancel = lane.cancel.clone();
        lanes.push(Sequential.run_monotone(rep, batch.prog, lane.source, &lane_plan)?);
    }
    let sweeps = lanes.iter().map(|l| l.directions.len()).max().unwrap_or(0);
    Ok(crate::batch::BatchOutput { lanes, sweeps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::VirtualGraph;
    use tigr_graph::generators::star_graph;

    #[test]
    fn facade_runs_sssp() {
        let g = star_graph(10);
        let engine = Engine::new(GpuConfig::tiny());
        let out = engine
            .sssp(&Representation::Original(&g), NodeId::new(0))
            .unwrap();
        assert_eq!(out.values[1], 1);
    }

    #[test]
    fn oom_when_budget_too_small() {
        let g = star_graph(1000);
        let engine = Engine::new(GpuConfig::tiny()).with_device_memory(64);
        let err = engine
            .sssp(&Representation::Original(&g), NodeId::new(0))
            .unwrap_err();
        assert!(matches!(err, EngineError::OutOfMemory(_)));
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn budget_large_enough_passes() {
        let g = star_graph(100);
        let ov = VirtualGraph::new(&g, 10);
        let engine = Engine::new(GpuConfig::tiny()).with_device_memory(1 << 20);
        let rep = Representation::Virtual {
            graph: &g,
            overlay: &ov,
        };
        assert!(engine.check_footprint(&rep).is_ok());
        assert!(engine.bfs(&rep, NodeId::new(0)).is_ok());
    }

    #[test]
    fn with_frontier_matches_full_sweep_with_fewer_relaxations() {
        let g = tigr_graph::generators::grid_2d(8, 8);
        let full = Engine::new(GpuConfig::tiny()).with_options(PushOptions {
            worklist: false,
            ..PushOptions::default()
        });
        let rep = Representation::Original(&g);
        let a = full.bfs(&rep, NodeId::new(0)).unwrap();
        for mode in [
            FrontierMode::Auto,
            FrontierMode::Dense,
            FrontierMode::Sparse,
        ] {
            let engine = Engine::new(GpuConfig::tiny()).with_frontier(mode);
            assert!(engine.options().worklist);
            let b = engine.bfs(&rep, NodeId::new(0)).unwrap();
            assert_eq!(a.values, b.values, "mode={}", mode.label());
            assert!(
                b.edges_touched < a.edges_touched,
                "mode={}: {} vs {}",
                mode.label(),
                b.edges_touched,
                a.edges_touched
            );
        }
    }

    #[test]
    fn engine_cpu_path_honors_schedule() {
        let g = tigr_graph::generators::grid_2d(8, 8);
        let rep = Representation::Original(&g);
        let sim = Engine::new(GpuConfig::tiny())
            .bfs(&rep, NodeId::new(0))
            .unwrap();
        for schedule in crate::cpu_parallel::CpuSchedule::ALL {
            let engine = Engine::new(GpuConfig::tiny()).with_cpu_schedule(schedule);
            assert_eq!(engine.cpu_options().schedule, schedule);
            let out = engine.run_cpu(&g, MonotoneProgram::BFS, Some(NodeId::new(0)));
            assert_eq!(out.values, sim.values, "{}", schedule.label());
            assert_eq!(out.sched.schedule, schedule);
        }
        let pr_out = Engine::default().cpu_pagerank(&g, &pr::PrOptions::default());
        assert!(pr_out.converged);
        assert!((pr_out.ranks.iter().sum::<f32>() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn parallel_engine_matches_sequential_results() {
        let g = tigr_graph::generators::grid_2d(8, 8);
        let seq = Engine::new(GpuConfig::default());
        let par = Engine::parallel(GpuConfig::default());
        let a = seq
            .bfs(&Representation::Original(&g), NodeId::new(0))
            .unwrap();
        let b = par
            .bfs(&Representation::Original(&g), NodeId::new(0))
            .unwrap();
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn every_direction_runs_through_the_facade() {
        let g = tigr_graph::generators::grid_2d(8, 8);
        let rep = Representation::Original(&g);
        let reference = Engine::new(GpuConfig::tiny())
            .bfs(&rep, NodeId::new(0))
            .unwrap();
        for direction in crate::plan::Direction::ALL {
            let engine = Engine::new(GpuConfig::tiny()).with_direction(direction);
            let out = engine.bfs(&rep, NodeId::new(0)).unwrap();
            assert_eq!(out.values, reference.values, "{}", direction.label());
        }
    }

    #[test]
    fn invalid_plan_surfaces_as_typed_engine_error() {
        let g = star_graph(64);
        let t = tigr_core::udt_transform(&g, 8, tigr_core::DumbWeight::Zero);
        let engine = Engine::new(GpuConfig::tiny()).with_direction(Direction::Pull);
        let err = engine
            .bfs(&Representation::Physical(&t), NodeId::new(0))
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidPlan(PlanError::PullOverPhysical)
        ));
        assert!(err.to_string().contains("invalid plan"));
    }

    #[test]
    fn run_prepared_matches_adhoc_plumbing_every_direction() {
        let store = tigr_core::GraphStore::disabled();
        let spec = tigr_core::PrepareSpec::generated("rmat:8:6", 3)
            .with_virtual(8, true)
            .with_transpose(true);
        let prepared = store.prepare(&spec).unwrap();
        assert!(prepared.transpose().is_some());
        assert!(prepared.rev_overlay().is_some());

        let g = prepared.graph().clone();
        let ov = VirtualGraph::coalesced(&g, 8);
        let adhoc_rep = Representation::Virtual {
            graph: &g,
            overlay: &ov,
        };
        for direction in crate::plan::Direction::ALL {
            let engine = Engine::new(GpuConfig::tiny()).with_direction(direction);
            let prep = engine
                .run_prepared(&prepared, MonotoneProgram::BFS, Some(NodeId::new(0)))
                .unwrap();
            let adhoc = engine.bfs(&adhoc_rep, NodeId::new(0)).unwrap();
            assert_eq!(prep.values, adhoc.values, "{}", direction.label());
        }
    }

    #[test]
    fn run_prepared_agrees_across_backends() {
        let store = tigr_core::GraphStore::disabled();
        let spec = tigr_core::PrepareSpec::generated("rmat:8:6", 5)
            .with_uniform_weights(1, 9, 2)
            .with_transpose(true);
        let prepared = store.prepare(&spec).unwrap();
        let reference = Engine::new(GpuConfig::tiny())
            .run_prepared(&prepared, MonotoneProgram::SSSP, Some(NodeId::new(0)))
            .unwrap();
        for backend in [BackendKind::CpuPool, BackendKind::Sequential] {
            let out = Engine::new(GpuConfig::tiny())
                .with_backend(backend)
                .run_prepared(&prepared, MonotoneProgram::SSSP, Some(NodeId::new(0)))
                .unwrap();
            assert_eq!(out.values, reference.values, "{}", backend.label());
        }
    }

    #[test]
    fn prepared_transform_runs_as_physical() {
        let store = tigr_core::GraphStore::disabled();
        let spec = tigr_core::PrepareSpec::generated("star:64", 0).with_transform(
            tigr_core::TransformKind::Udt,
            Some(8),
            tigr_core::DumbWeight::Zero,
        );
        let prepared = store.prepare(&spec).unwrap();
        let rep = Representation::from_prepared(&prepared);
        assert_eq!(rep.label(), "physical");
        let engine = Engine::new(GpuConfig::tiny());
        let out = engine
            .run_prepared(&prepared, MonotoneProgram::BFS, Some(NodeId::new(0)))
            .unwrap();
        let projected = prepared.transformed().unwrap().project_values(&out.values);
        // Every leaf of the star is reachable despite the split.
        assert!(projected[1..].iter().all(|&v| v != u32::MAX));
    }

    #[test]
    fn pagerank_prepared_pull_uses_prepared_transpose() {
        let store = tigr_core::GraphStore::disabled();
        let spec = tigr_core::PrepareSpec::generated("rmat:8:6", 3)
            .with_virtual(8, false)
            .with_transpose(true);
        let prepared = store.prepare(&spec).unwrap();
        let options = pr::PrOptions {
            mode: pr::PrMode::Pull,
            ..pr::PrOptions::default()
        };
        let engine = Engine::new(GpuConfig::tiny());
        let with_views = engine.pagerank_prepared(&prepared, &options).unwrap();

        // Same spec without prepared pull views: built on the fly.
        let bare = store
            .prepare(&tigr_core::PrepareSpec::generated("rmat:8:6", 3).with_virtual(8, false))
            .unwrap();
        let without_views = engine.pagerank_prepared(&bare, &options).unwrap();
        assert_eq!(with_views.ranks, without_views.ranks);
    }

    #[test]
    fn pre_cancelled_token_stops_every_backend_at_iteration_zero() {
        let g = tigr_graph::generators::grid_2d(8, 8);
        let rep = Representation::Original(&g);
        let token = CancelToken::new();
        token.cancel();
        for backend in [
            BackendKind::WarpSim,
            BackendKind::CpuPool,
            BackendKind::Sequential,
        ] {
            let engine = Engine::new(GpuConfig::tiny())
                .with_backend(backend)
                .with_cancel(token.clone());
            let out = engine.bfs(&rep, NodeId::new(0)).unwrap();
            assert!(out.cancelled, "{}", backend.label());
            assert!(!out.converged, "{}", backend.label());
            // Cancellation at iteration zero leaves the initial values:
            // the source is 0, everything else unreached.
            assert_eq!(out.values[0], 0, "{}", backend.label());
            assert!(
                out.values[1..].iter().all(|&v| v == u32::MAX),
                "{}",
                backend.label()
            );
        }
    }

    #[test]
    fn cancelled_runs_cover_every_direction_and_pagerank() {
        let g = tigr_graph::generators::grid_2d(8, 8);
        let rep = Representation::Original(&g);
        let token = CancelToken::new();
        token.cancel();
        for direction in crate::plan::Direction::ALL {
            let engine = Engine::new(GpuConfig::tiny())
                .with_direction(direction)
                .with_cancel(token.clone());
            let out = engine.bfs(&rep, NodeId::new(0)).unwrap();
            assert!(out.cancelled && !out.converged, "{}", direction.label());
        }
        let engine = Engine::new(GpuConfig::tiny()).with_cancel(token.clone());
        let pr_out = engine
            .pagerank(&rep, &pr::out_degrees(&g), &pr::PrOptions::default())
            .unwrap();
        assert!(pr_out.cancelled && !pr_out.converged);
        let cpu_pr = engine.cpu_pagerank(&g, &pr::PrOptions::default());
        assert!(cpu_pr.cancelled && !cpu_pr.converged);
        let cpu = engine.run_cpu(&g, MonotoneProgram::BFS, Some(NodeId::new(0)));
        assert!(cpu.cancelled);
    }

    #[test]
    fn inert_token_changes_nothing() {
        let g = tigr_graph::generators::grid_2d(8, 8);
        let rep = Representation::Original(&g);
        let plain = Engine::new(GpuConfig::tiny())
            .bfs(&rep, NodeId::new(0))
            .unwrap();
        let inert = Engine::new(GpuConfig::tiny())
            .with_cancel(CancelToken::new())
            .bfs(&rep, NodeId::new(0))
            .unwrap();
        assert!(!inert.cancelled);
        assert!(inert.converged);
        assert_eq!(plain.values, inert.values);
    }

    #[test]
    fn sequential_backend_through_facade() {
        let g = tigr_graph::generators::grid_2d(6, 6);
        let rep = Representation::Original(&g);
        let warp = Engine::new(GpuConfig::tiny())
            .bfs(&rep, NodeId::new(0))
            .unwrap();
        let seq = Engine::new(GpuConfig::tiny())
            .with_backend(BackendKind::Sequential)
            .bfs(&rep, NodeId::new(0))
            .unwrap();
        assert_eq!(warp.values, seq.values);
        assert_eq!(seq.report.num_iterations(), 0, "no simulator accounting");
    }
}
