//! The engine facade: configuration, device-memory checks, and one-call
//! runs of each analytic.

use std::error::Error as StdError;
use std::fmt;

use tigr_graph::NodeId;
use tigr_sim::{DeviceMemory, GpuConfig, GpuSimulator, OutOfMemory};

use tigr_graph::Csr;

use crate::algorithms::{bc, pr};
use crate::cpu_parallel::{
    run_cpu_pr, run_cpu_with, CpuOptions, CpuPrOutput, CpuRunOutput, CpuSchedule,
};
use crate::frontier::FrontierMode;
use crate::program::MonotoneProgram;
use crate::push::{run_monotone, MonotoneOutput, PushOptions};
use crate::representation::Representation;

/// Errors an engine run can produce.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The representation does not fit the configured device memory —
    /// the `OOM` entries of Table 4.
    OutOfMemory(OutOfMemory),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::OutOfMemory(e) => write!(f, "device {e}"),
        }
    }
}

impl StdError for EngineError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            EngineError::OutOfMemory(e) => Some(e),
        }
    }
}

/// The Tigr GPU graph-processing engine over the simulator.
///
/// # Example
///
/// ```
/// use tigr_engine::{Engine, Representation};
/// use tigr_graph::{CsrBuilder, NodeId};
///
/// let g = CsrBuilder::new(3).weighted_edge(0, 1, 2).weighted_edge(1, 2, 2).build();
/// let engine = Engine::default();
/// let out = engine.sssp(&Representation::Original(&g), NodeId::new(0))?;
/// assert_eq!(out.values, vec![0, 2, 4]);
/// # Ok::<(), tigr_engine::EngineError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    sim: GpuSimulator,
    options: PushOptions,
    cpu_options: CpuOptions,
    device_memory: Option<u64>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(GpuConfig::default())
    }
}

impl Engine {
    /// Creates an engine over a sequential (deterministic) simulator.
    pub fn new(config: GpuConfig) -> Self {
        Engine {
            sim: GpuSimulator::new(config),
            options: PushOptions::default(),
            cpu_options: CpuOptions::default(),
            device_memory: None,
        }
    }

    /// Creates an engine whose simulator replays warps on all host cores
    /// (identical metrics, faster wall clock).
    pub fn parallel(config: GpuConfig) -> Self {
        Engine {
            sim: GpuSimulator::new_parallel(config),
            options: PushOptions::default(),
            cpu_options: CpuOptions::default(),
            device_memory: None,
        }
    }

    /// Overrides the push options (worklist, sync mode, iteration cap).
    pub fn with_options(mut self, options: PushOptions) -> Self {
        self.options = options;
        self
    }

    /// Enables worklist execution with the given frontier scheduling
    /// policy (shorthand for setting `worklist` + `frontier` on the push
    /// options).
    pub fn with_frontier(mut self, mode: FrontierMode) -> Self {
        self.options.worklist = true;
        self.options.frontier = mode;
        self
    }

    /// Enforces a device-memory budget in bytes; representations whose
    /// footprint exceeds it fail with [`EngineError::OutOfMemory`].
    pub fn with_device_memory(mut self, bytes: u64) -> Self {
        self.device_memory = Some(bytes);
        self
    }

    /// Overrides the wall-clock CPU path's options (threads, frontier,
    /// scheduling policy) used by [`Engine::run_cpu`] and
    /// [`Engine::cpu_pagerank`].
    pub fn with_cpu_options(mut self, options: CpuOptions) -> Self {
        self.cpu_options = options;
        self
    }

    /// Selects the CPU work-distribution policy (shorthand for setting
    /// `schedule` on the CPU options).
    pub fn with_cpu_schedule(mut self, schedule: CpuSchedule) -> Self {
        self.cpu_options.schedule = schedule;
        self
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &GpuSimulator {
        &self.sim
    }

    /// The engine's push options.
    pub fn options(&self) -> &PushOptions {
        &self.options
    }

    /// The engine's CPU-path options.
    pub fn cpu_options(&self) -> &CpuOptions {
        &self.cpu_options
    }

    /// Checks `rep` against the configured device budget.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::OutOfMemory`] when it does not fit.
    pub fn check_footprint(&self, rep: &Representation<'_>) -> Result<(), EngineError> {
        if let Some(capacity) = self.device_memory {
            let mut mem = DeviceMemory::new(capacity);
            mem.alloc(rep.device_footprint_bytes())
                .map_err(EngineError::OutOfMemory)?;
        }
        Ok(())
    }

    /// Runs an arbitrary monotone program.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::OutOfMemory`] if the representation exceeds
    /// the device budget.
    pub fn run(
        &self,
        rep: &Representation<'_>,
        prog: MonotoneProgram,
        source: Option<NodeId>,
    ) -> Result<MonotoneOutput, EngineError> {
        self.check_footprint(rep)?;
        Ok(run_monotone(&self.sim, rep, prog, source, &self.options))
    }

    /// Single-source shortest paths.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn sssp(
        &self,
        rep: &Representation<'_>,
        source: NodeId,
    ) -> Result<MonotoneOutput, EngineError> {
        self.run(rep, MonotoneProgram::SSSP, Some(source))
    }

    /// Breadth-first search.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn bfs(
        &self,
        rep: &Representation<'_>,
        source: NodeId,
    ) -> Result<MonotoneOutput, EngineError> {
        self.run(rep, MonotoneProgram::BFS, Some(source))
    }

    /// Single-source widest path.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn sswp(
        &self,
        rep: &Representation<'_>,
        source: NodeId,
    ) -> Result<MonotoneOutput, EngineError> {
        self.run(rep, MonotoneProgram::SSWP, Some(source))
    }

    /// Connected components.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn cc(&self, rep: &Representation<'_>) -> Result<MonotoneOutput, EngineError> {
        self.run(rep, MonotoneProgram::CC, None)
    }

    /// PageRank (see [`crate::algorithms::pr::run`] for the contract).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::OutOfMemory`] if the representation exceeds
    /// the device budget.
    pub fn pagerank(
        &self,
        rep: &Representation<'_>,
        out_degrees: &[u32],
        options: &pr::PrOptions,
    ) -> Result<pr::PrOutput, EngineError> {
        self.check_footprint(rep)?;
        Ok(pr::run(&self.sim, rep, out_degrees, options))
    }

    /// Runs a monotone program on the wall-clock CPU path (no simulator)
    /// with the engine's CPU options — threads, frontier, and the
    /// [`CpuSchedule`] work-distribution policy all apply.
    ///
    /// # Panics
    ///
    /// See [`crate::cpu_parallel::run_cpu_with`].
    pub fn run_cpu(&self, g: &Csr, prog: MonotoneProgram, source: Option<NodeId>) -> CpuRunOutput {
        run_cpu_with(g, prog, source, &self.cpu_options)
    }

    /// Runs push-mode PageRank on the wall-clock CPU path with the
    /// engine's CPU options.
    ///
    /// # Panics
    ///
    /// See [`crate::cpu_parallel::run_cpu_pr`].
    pub fn cpu_pagerank(&self, g: &Csr, options: &pr::PrOptions) -> CpuPrOutput {
        run_cpu_pr(g, options, &self.cpu_options)
    }

    /// Single-source betweenness centrality.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::OutOfMemory`] if the representation exceeds
    /// the device budget.
    pub fn betweenness(
        &self,
        rep: &Representation<'_>,
        source: NodeId,
    ) -> Result<bc::BcOutput, EngineError> {
        self.check_footprint(rep)?;
        Ok(bc::run(&self.sim, rep, source))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::VirtualGraph;
    use tigr_graph::generators::star_graph;

    #[test]
    fn facade_runs_sssp() {
        let g = star_graph(10);
        let engine = Engine::new(GpuConfig::tiny());
        let out = engine
            .sssp(&Representation::Original(&g), NodeId::new(0))
            .unwrap();
        assert_eq!(out.values[1], 1);
    }

    #[test]
    fn oom_when_budget_too_small() {
        let g = star_graph(1000);
        let engine = Engine::new(GpuConfig::tiny()).with_device_memory(64);
        let err = engine
            .sssp(&Representation::Original(&g), NodeId::new(0))
            .unwrap_err();
        assert!(matches!(err, EngineError::OutOfMemory(_)));
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn budget_large_enough_passes() {
        let g = star_graph(100);
        let ov = VirtualGraph::new(&g, 10);
        let engine = Engine::new(GpuConfig::tiny()).with_device_memory(1 << 20);
        let rep = Representation::Virtual {
            graph: &g,
            overlay: &ov,
        };
        assert!(engine.check_footprint(&rep).is_ok());
        assert!(engine.bfs(&rep, NodeId::new(0)).is_ok());
    }

    #[test]
    fn with_frontier_matches_full_sweep_with_fewer_relaxations() {
        let g = tigr_graph::generators::grid_2d(8, 8);
        let full = Engine::new(GpuConfig::tiny()).with_options(PushOptions {
            worklist: false,
            ..PushOptions::default()
        });
        let rep = Representation::Original(&g);
        let a = full.bfs(&rep, NodeId::new(0)).unwrap();
        for mode in [
            FrontierMode::Auto,
            FrontierMode::Dense,
            FrontierMode::Sparse,
        ] {
            let engine = Engine::new(GpuConfig::tiny()).with_frontier(mode);
            assert!(engine.options().worklist);
            let b = engine.bfs(&rep, NodeId::new(0)).unwrap();
            assert_eq!(a.values, b.values, "mode={}", mode.label());
            assert!(
                b.edges_touched < a.edges_touched,
                "mode={}: {} vs {}",
                mode.label(),
                b.edges_touched,
                a.edges_touched
            );
        }
    }

    #[test]
    fn engine_cpu_path_honors_schedule() {
        let g = tigr_graph::generators::grid_2d(8, 8);
        let rep = Representation::Original(&g);
        let sim = Engine::new(GpuConfig::tiny())
            .bfs(&rep, NodeId::new(0))
            .unwrap();
        for schedule in crate::cpu_parallel::CpuSchedule::ALL {
            let engine = Engine::new(GpuConfig::tiny()).with_cpu_schedule(schedule);
            assert_eq!(engine.cpu_options().schedule, schedule);
            let out = engine.run_cpu(&g, MonotoneProgram::BFS, Some(NodeId::new(0)));
            assert_eq!(out.values, sim.values, "{}", schedule.label());
            assert_eq!(out.sched.schedule, schedule);
        }
        let pr_out = Engine::default().cpu_pagerank(&g, &pr::PrOptions::default());
        assert!(pr_out.converged);
        assert!((pr_out.ranks.iter().sum::<f32>() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn parallel_engine_matches_sequential_results() {
        let g = tigr_graph::generators::grid_2d(8, 8);
        let seq = Engine::new(GpuConfig::default());
        let par = Engine::parallel(GpuConfig::default());
        let a = seq
            .bfs(&Representation::Original(&g), NodeId::new(0))
            .unwrap();
        let b = par
            .bfs(&Representation::Original(&g), NodeId::new(0))
            .unwrap();
        assert_eq!(a.values, b.values);
    }
}
