//! Pull-based monotone driver (§2.1 footnote 3, Theorem 3).
//!
//! The pull scheme gathers values along *incoming* edges: each node folds
//! candidates from its in-neighbors into its own slot. The engine runs it
//! over the **transpose** CSR, optionally with a virtual overlay built on
//! the transpose — in which case each virtual node folds a *subset* of
//! the in-edges and the partial results combine at the shared physical
//! slot. Theorem 3 guarantees correctness exactly when the fold is
//! associative, which every [`MonotoneProgram`] combine (min/max) is;
//! updates use atomics as §4.2 requires.
//!
//! Compared to push, pull issues at most **one atomic per (virtual)
//! node** per iteration instead of one per improving edge — the property
//! that makes gather-style frameworks strong on all-active workloads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tigr_core::CancelToken;
use tigr_graph::NodeId;
use tigr_sim::{GpuSimulator, KernelMetrics, SimReport};

use crate::addr::{frontier_bit_addr, row_ptr_addr, vnode_addr, FLAG_ADDR};
use crate::frontier::{Frontier, FrontierBuilder, FrontierMode};
use crate::kernel::{
    csr_edges, pull_gather, walk_segments, AccessMirror, GatherFilter, LaneMirror,
};
use crate::plan::Direction;
use crate::program::MonotoneProgram;
use crate::push::MonotoneOutput;
use crate::representation::Representation;
use crate::state::AtomicValues;

/// Options of a pull run.
#[derive(Clone, Copy, Debug)]
pub struct PullOptions {
    /// Fold only candidates from *active* sources (nodes whose value
    /// changed last iteration), tracked in a dense bitmap each gather
    /// consults per in-edge. Every node is still scheduled every
    /// iteration — pull cannot compact its launch the way push does —
    /// but inactive edges skip the source-value load and candidate fold,
    /// which is where all-active gather engines burn their bandwidth.
    pub worklist: bool,
    /// Safety cap on iterations.
    pub max_iterations: usize,
}

impl Default for PullOptions {
    fn default() -> Self {
        PullOptions {
            worklist: false,
            max_iterations: 100_000,
        }
    }
}

/// Per-iteration state of a gather sweep, shared between the standalone
/// pull driver below and the `Auto` direction driver in
/// [`crate::backend`].
pub(crate) struct GatherCtx<'a> {
    pub(crate) prog: MonotoneProgram,
    pub(crate) values: &'a AtomicValues,
    /// Fold only candidates from these active sources.
    pub(crate) frontier: Option<&'a Frontier>,
    pub(crate) next: Option<&'a FrontierBuilder>,
    pub(crate) changed: &'a AtomicBool,
    pub(crate) edges_touched: &'a AtomicU64,
    /// Bottom-up BFS shape (see [`GatherFilter::early_exit`]).
    pub(crate) early_exit: bool,
}

/// One gather sweep over every (virtual) node of `rep`, which must wrap
/// a transpose view: each node folds in-edge candidates through the
/// shared relax loop and issues at most one atomic on its slot.
pub(crate) fn pull_step(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    ctx: &GatherCtx<'_>,
) -> KernelMetrics {
    let graph = rep.graph();
    let gather =
        |lane: &mut tigr_sim::Lane, slot: usize, edges: &mut dyn Iterator<Item = usize>| {
            let mut mirror = LaneMirror(lane);
            let touched = pull_gather(
                &mut mirror,
                ctx.prog,
                ctx.values,
                slot,
                csr_edges(graph, edges),
                GatherFilter {
                    active: ctx.frontier,
                    early_exit: ctx.early_exit,
                },
                |m, slot| {
                    m.store(FLAG_ADDR, 1);
                    ctx.changed.store(true, Ordering::Relaxed);
                    if let Some(next) = ctx.next {
                        if next.activate(slot) {
                            m.atomic(frontier_bit_addr(slot), 4);
                        }
                    }
                },
            );
            ctx.edges_touched.fetch_add(touched, Ordering::Relaxed);
        };

    match rep {
        Representation::Original(g) => sim.launch(g.num_nodes(), |tid, lane| {
            lane.load(row_ptr_addr(tid), 8);
            let v = NodeId::from_index(tid);
            gather(lane, tid, &mut (g.edge_start(v)..g.edge_end(v)));
        }),
        Representation::Virtual { overlay, .. } => {
            sim.launch(overlay.num_virtual_nodes(), |tid, lane| {
                lane.load(vnode_addr(tid), 8);
                let vn = overlay.vnode(tid);
                gather(
                    lane,
                    vn.physical.index(),
                    &mut tigr_core::EdgeCursor::new(&vn),
                )
            })
        }
        Representation::OnTheFly { graph: g, mapper } => {
            sim.launch(mapper.num_threads(), |tid, lane| {
                let (range, first, probes) = mapper.resolve(g, tid);
                lane.compute(probes as u64 * 2);
                // Process the block per owning node so folds stay within
                // one slot.
                let mut mirror = LaneMirror(lane);
                walk_segments(&mut mirror, g, range, first, |m, src, seg| {
                    gather(m.0, src, &mut { seg });
                });
            })
        }
        Representation::Physical(_) => panic!(
            "pull-based processing over a physically split graph is not meaningful; \
             Theorem 3 covers the virtual transformation"
        ),
    }
}

/// Runs `prog` in pull mode over `rep`, which must wrap the **transpose**
/// of the graph being analyzed (edges lead from a node to its
/// in-neighbors). Results are indexed by the original node ids, which
/// transposition preserves.
///
/// Every (virtual) node is scheduled each iteration — a gathering node
/// cannot be compacted away without knowing its inputs changed — but
/// with [`PullOptions::worklist`] each gather folds only candidates from
/// sources active in the previous iteration, consulting a dense frontier
/// bitmap per in-edge. Monotone programs make this sound: a candidate
/// from a source that did not change this round was already offered the
/// round after that source last improved.
///
/// # Panics
///
/// Panics if the program needs a source and none is given, if the source
/// is out of range, or if `rep` is a physical transformation (pull over
/// split *out*-edge families mixes up in-edge ownership; use the virtual
/// overlay instead, as §4.2 prescribes).
pub fn run_monotone_pull(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    options: &PullOptions,
) -> MonotoneOutput {
    run_monotone_pull_cancellable(sim, rep, prog, source, options, &CancelToken::never())
}

/// [`run_monotone_pull`] with a cooperative cancellation hook polled
/// once per iteration before the gather launches (see
/// [`crate::push::run_monotone_cancellable`] for the contract).
///
/// # Panics
///
/// See [`run_monotone_pull`].
pub fn run_monotone_pull_cancellable(
    sim: &GpuSimulator,
    rep: &Representation<'_>,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    options: &PullOptions,
    cancel: &CancelToken,
) -> MonotoneOutput {
    assert!(
        !matches!(rep, Representation::Physical(_)),
        "pull-based processing over a physically split graph is not meaningful; \
         Theorem 3 covers the virtual transformation"
    );
    let n = rep.num_value_slots();
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let mut report = SimReport::new();
    let mut converged = false;
    let edges_touched = AtomicU64::new(0);

    // `n` here counts value slots = original nodes (physical reps are
    // rejected), so source ids index the bitmap directly.
    let next = options.worklist.then(|| FrontierBuilder::new(n));
    let mut frontier: Option<Frontier> = options
        .worklist
        .then(|| Frontier::from_active(n, prog.initial_frontier(n, source), FrontierMode::Dense));

    let mut cancelled = false;
    for _ in 0..options.max_iterations {
        if let Some(f) = &frontier {
            if f.is_empty() {
                converged = true;
                break;
            }
        }
        if cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        let changed = AtomicBool::new(false);
        let ctx = GatherCtx {
            prog,
            values: &values,
            frontier: frontier.as_ref(),
            next: next.as_ref(),
            changed: &changed,
            edges_touched: &edges_touched,
            early_exit: false,
        };
        let metrics = pull_step(sim, rep, &ctx);
        report.push(rep.full_threads(), metrics);

        if let Some(next) = &next {
            frontier = Some(next.take(FrontierMode::Dense));
        }
        if !changed.load(Ordering::Relaxed) {
            converged = true;
            break;
        }
    }

    let directions = vec![Direction::Pull; report.num_iterations()];
    MonotoneOutput {
        values: values.snapshot(),
        report,
        converged,
        edges_touched: edges_touched.into_inner(),
        directions,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::VirtualGraph;
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_graph::properties::{dijkstra, widest_path};
    use tigr_graph::reverse::transpose;
    use tigr_sim::GpuConfig;

    fn fixture() -> (tigr_graph::Csr, tigr_graph::Csr) {
        let g = with_uniform_weights(&rmat(&RmatConfig::graph500(8, 8), 123), 1, 32, 5);
        let rev = transpose(&g);
        (g, rev)
    }

    #[test]
    fn pull_sssp_matches_dijkstra() {
        let (g, rev) = fixture();
        let src = NodeId::new(0);
        let expect = dijkstra(&g, src);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run_monotone_pull(
            &sim,
            &Representation::Original(&rev),
            MonotoneProgram::SSSP,
            Some(src),
            &PullOptions::default(),
        );
        assert!(out.converged);
        assert_eq!(out.values, expect);
    }

    #[test]
    fn pull_over_virtual_overlay_matches_theorem_3() {
        // The associative-fold case: virtual nodes gather disjoint
        // in-edge subsets and combine at the physical slot.
        let (g, rev) = fixture();
        let src = NodeId::new(0);
        let expect = dijkstra(&g, src);
        let sim = GpuSimulator::new(GpuConfig::default());
        for overlay in [VirtualGraph::new(&rev, 4), VirtualGraph::coalesced(&rev, 4)] {
            let out = run_monotone_pull(
                &sim,
                &Representation::Virtual {
                    graph: &rev,
                    overlay: &overlay,
                },
                MonotoneProgram::SSSP,
                Some(src),
                &PullOptions::default(),
            );
            assert_eq!(out.values, expect, "coalesced={}", overlay.is_coalesced());
        }
    }

    #[test]
    fn pull_sswp_matches_oracle() {
        let (g, rev) = fixture();
        let src = NodeId::new(2);
        let expect = widest_path(&g, src);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run_monotone_pull(
            &sim,
            &Representation::Original(&rev),
            MonotoneProgram::SSWP,
            Some(src),
            &PullOptions::default(),
        );
        assert_eq!(out.values, expect);
    }

    #[test]
    fn pull_uses_at_most_one_atomic_per_node_per_iteration() {
        let (g, rev) = fixture();
        let sim = GpuSimulator::new(GpuConfig::default());
        let pull = run_monotone_pull(
            &sim,
            &Representation::Original(&rev),
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &PullOptions::default(),
        );
        let total = pull.report.total();
        let bound = (g.num_nodes() * pull.report.num_iterations()) as u64;
        assert!(
            total.atomic_ops <= bound,
            "{} atomics > {} node-iterations",
            total.atomic_ops,
            bound
        );
    }

    #[test]
    fn pull_cc_converges_to_min_labels() {
        let mut b = tigr_graph::CsrBuilder::new(5);
        b.symmetric(true);
        b.edge(0, 1).edge(1, 2).edge(3, 4);
        let g = b.build();
        let rev = transpose(&g); // symmetric, so identical topology
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run_monotone_pull(
            &sim,
            &Representation::Original(&rev),
            MonotoneProgram::CC,
            None,
            &PullOptions::default(),
        );
        assert_eq!(out.values, tigr_graph::properties::connected_components(&g));
    }

    #[test]
    fn frontier_pull_matches_full_pull_and_cuts_folds() {
        let (g, rev) = fixture();
        let src = NodeId::new(0);
        let expect = dijkstra(&g, src);
        let sim = GpuSimulator::new(GpuConfig::default());
        let run = |worklist: bool| {
            run_monotone_pull(
                &sim,
                &Representation::Original(&rev),
                MonotoneProgram::SSSP,
                Some(src),
                &PullOptions {
                    worklist,
                    max_iterations: 100_000,
                },
            )
        };
        let full = run(false);
        let frontier = run(true);
        assert!(frontier.converged);
        assert_eq!(frontier.values, expect);
        assert_eq!(full.values, expect);
        assert!(
            frontier.edges_touched < full.edges_touched,
            "frontier {} folds vs full {}",
            frontier.edges_touched,
            full.edges_touched
        );
    }

    #[test]
    fn frontier_pull_over_virtual_overlay_matches() {
        let (g, rev) = fixture();
        let src = NodeId::new(0);
        let expect = dijkstra(&g, src);
        let sim = GpuSimulator::new(GpuConfig::default());
        let overlay = VirtualGraph::coalesced(&rev, 4);
        let out = run_monotone_pull(
            &sim,
            &Representation::Virtual {
                graph: &rev,
                overlay: &overlay,
            },
            MonotoneProgram::SSSP,
            Some(src),
            &PullOptions {
                worklist: true,
                max_iterations: 100_000,
            },
        );
        assert!(out.converged);
        assert_eq!(out.values, expect);
    }

    #[test]
    #[should_panic(expected = "pull-based processing over a physically split graph")]
    fn physical_representation_rejected() {
        let (g, _) = fixture();
        let t = tigr_core::udt_transform(&g, 4, tigr_core::DumbWeight::Zero);
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let _ = run_monotone_pull(
            &sim,
            &Representation::Physical(&t),
            MonotoneProgram::SSSP,
            Some(NodeId::new(0)),
            &PullOptions::default(),
        );
    }
}
