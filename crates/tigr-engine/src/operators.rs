//! Operator-based algorithm API: an analytic is *data*.
//!
//! A [`Pipeline`] is a short sequence of [`GraphOperator`]s — `Advance`
//! (traverse an edge space, folding candidates into per-node slots),
//! `Filter` (keep only improved nodes as the next frontier, with
//! dedup), and `Compute` (a per-vertex post-pass) — in the Gunrock
//! vocabulary the ROADMAP's "Operator-based algorithm API" item calls
//! for. Each operator carries typed capabilities ([`OperatorCaps`]):
//! whether its fold is monotone, whether its combine is associative
//! (Theorem 3's pull licence), whether a physically split (UDT)
//! representation preserves its fixpoint (Corollary 2/3's dumb-weight
//! argument), and whether it needs a transpose. Plan validation
//! ([`crate::ExecutionPlan::validate_pipeline`]) checks the pipeline's
//! folded capabilities against the representation instead of
//! special-casing algorithm names.
//!
//! The six paper analytics are pipeline constructors over the same
//! [`MonotoneProgram`]/[`crate::kernel`] machinery they always used —
//! [`crate::Engine::run_pipeline`] lowers a monotone pipeline onto the
//! exact legacy dispatch, so outputs are byte-identical on every
//! backend. Four serving workloads are new pipelines:
//!
//! * [`Pipeline::khop`] — hop counts via [`EdgeOp::AddUnit`] plus a
//!   [`ComputeStep::MaskAbove`] post-pass (`> k` → unreached).
//! * [`Pipeline::bounded_paths`] — SSSP with a radius cutoff
//!   ([`EdgeOp::AddWeightCapped`]) plus deterministic predecessor
//!   extraction ([`ComputeStep::Predecessors`]).
//! * [`Pipeline::label_propagation`] — the CC program run for a fixed
//!   number of synchronous (BSP) rounds.
//! * [`Pipeline::triangle_count`] — per-node triangle counts of the
//!   simple undirected closure ([`ComputeStep::TriangleCount`]).

use std::fmt;

use tigr_graph::{Csr, NodeId};

use crate::algorithms::pr::PrOptions;
use crate::program::{EdgeOp, InitKind, MonotoneProgram};
use crate::state::Combine;

/// The edge space an [`GraphOperator::Advance`] traverses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvanceSpace {
    /// Scatter along out-edges (fixed by the algorithm).
    OutEdges,
    /// Gather along in-edges over the transpose (fixed by the
    /// algorithm).
    InEdges,
    /// The plan's [`crate::Direction`] picks push (out-edges), pull
    /// (in-edges), or the Beamer auto switch — and the advance runs
    /// over virtual-node chunks when the representation is virtual.
    PlanChosen,
}

/// What an [`GraphOperator::Advance`] folds along each traversed edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdvanceRelax {
    /// A monotone `u32` fold through [`EdgeOp::apply`] — the
    /// `relax_kernel`/`pull_gather` layer. BFS/SSSP/SSWP/CC and the
    /// k-hop / bounded-path workloads.
    Monotone {
        /// Candidate computation along an edge.
        edge_op: EdgeOp,
        /// Monotone fold at the destination.
        combine: Combine,
        /// Initialization scheme.
        init: InitKind,
        /// Whether the combine is associative (Theorem 3).
        associative: bool,
    },
    /// `rank/out_degree` contributions summed at the destination
    /// (PageRank). Associative but not monotone, and dependent on the
    /// original out-degrees, which UDT splitting rewrites.
    RankContribution,
    /// Level-synchronous shortest-path counting plus dependency
    /// back-propagation (Brandes betweenness). Sigma sums are
    /// associative; split vertices would absorb centrality mass.
    ShortestPathCounts,
}

/// A per-vertex post-pass at the end of a pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeStep {
    /// Values above the bound collapse to `u32::MAX` (k-hop masking).
    MaskAbove(u32),
    /// Appends a deterministic predecessor array to the distance array:
    /// for each reached node, the minimum-id in-neighbor whose
    /// relaxation reproduces the node's final distance (the source is
    /// its own predecessor; unreached nodes get `u32::MAX`). Needs the
    /// original adjacency.
    Predecessors,
    /// Per-node triangle counts of the simple undirected closure of the
    /// graph (self-loops and multi-edges dropped). Needs the original
    /// adjacency.
    TriangleCount,
    /// Reinterprets `f32` results as `u32` bit patterns so PR/BC travel
    /// the same wire format as the monotone analytics.
    FloatBits,
}

impl ComputeStep {
    /// Whether the step reads the graph's adjacency (not just the value
    /// array) and is therefore unsound over a physically split
    /// representation, whose adjacency is rewired.
    pub fn needs_original_adjacency(self) -> bool {
        matches!(self, ComputeStep::Predecessors | ComputeStep::TriangleCount)
    }
}

/// One stage of a [`Pipeline`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphOperator {
    /// Traverse an edge space, folding candidates into per-node slots.
    Advance {
        /// Which edges the advance walks.
        space: AdvanceSpace,
        /// What it folds along each edge.
        relax: AdvanceRelax,
    },
    /// Keep only the nodes whose slot improved as the next frontier.
    Filter {
        /// Whether a node activated by several improving edges appears
        /// once (the engine's frontier builder always dedups; `false`
        /// marks full-sweep pipelines that keep no frontier at all).
        dedup: bool,
    },
    /// A per-vertex post-pass.
    Compute(ComputeStep),
}

/// Typed capabilities of one operator; plan validation checks the
/// pipeline's fold of these against the representation and direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OperatorCaps {
    /// Values only ever improve under the combine, so relaxed
    /// (non-BSP) schedules converge to the same fixpoint.
    pub monotone: bool,
    /// The fold may be partitioned across threads and merged atomically
    /// (Theorem 3's licence for pull over split views).
    pub associative: bool,
    /// A physically split (UDT) representation with inert dumb weights
    /// computes the same answer (Corollary 2/3).
    pub split_invariant: bool,
    /// The operator walks in-edges and needs a transpose view.
    pub needs_transpose: bool,
}

impl OperatorCaps {
    /// The identity of the capability fold: fully capable.
    const NEUTRAL: OperatorCaps = OperatorCaps {
        monotone: true,
        associative: true,
        split_invariant: true,
        needs_transpose: false,
    };

    fn and(self, other: OperatorCaps) -> OperatorCaps {
        OperatorCaps {
            monotone: self.monotone && other.monotone,
            associative: self.associative && other.associative,
            split_invariant: self.split_invariant && other.split_invariant,
            needs_transpose: self.needs_transpose || other.needs_transpose,
        }
    }
}

impl GraphOperator {
    /// The operator's typed capabilities.
    pub fn caps(&self) -> OperatorCaps {
        match self {
            GraphOperator::Advance { space, relax } => {
                let needs_transpose = *space == AdvanceSpace::InEdges;
                match relax {
                    AdvanceRelax::Monotone {
                        edge_op,
                        associative,
                        ..
                    } => OperatorCaps {
                        monotone: true,
                        associative: *associative,
                        split_invariant: edge_op.split_invariant(),
                        needs_transpose,
                    },
                    AdvanceRelax::RankContribution => OperatorCaps {
                        monotone: false,
                        associative: true,
                        // UDT rewrites the out-degrees PR divides by.
                        split_invariant: false,
                        needs_transpose,
                    },
                    AdvanceRelax::ShortestPathCounts => OperatorCaps {
                        monotone: false,
                        associative: true,
                        // Split vertices absorb dependency mass.
                        split_invariant: false,
                        needs_transpose,
                    },
                }
            }
            GraphOperator::Filter { .. } => OperatorCaps::NEUTRAL,
            GraphOperator::Compute(step) => OperatorCaps {
                split_invariant: !step.needs_original_adjacency(),
                ..OperatorCaps::NEUTRAL
            },
        }
    }
}

/// The algorithm vocabulary the CLI and server share: one table, one
/// registration point per verb. [`Algo::parse`]/[`Algo::label`] are the
/// single name ↔ verb mapping; `tigr run`, `tigr query`, and the server
/// protocol all dispatch through it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Breadth-first search (hop levels over unit weights).
    Bfs,
    /// Single-source shortest paths.
    Sssp,
    /// Single-source widest paths.
    Sswp,
    /// Connected components (min-label propagation to fixpoint).
    Cc,
    /// PageRank (ranks as `f32` bit patterns).
    Pr,
    /// Single-source betweenness centrality (scores as bit patterns).
    Bc,
    /// k-hop neighborhood: hop counts masked above `k`.
    Khop,
    /// Bounded-cost paths: SSSP with a radius cutoff plus predecessors.
    Paths,
    /// Label propagation for a fixed number of synchronous rounds.
    Lp,
    /// Per-node triangle counts of the undirected closure.
    Tc,
}

impl Algo {
    /// Every verb, in protocol order.
    pub const ALL: [Algo; 10] = [
        Algo::Bfs,
        Algo::Sssp,
        Algo::Sswp,
        Algo::Cc,
        Algo::Pr,
        Algo::Bc,
        Algo::Khop,
        Algo::Paths,
        Algo::Lp,
        Algo::Tc,
    ];

    /// Stable lowercase wire/CLI label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Bfs => "bfs",
            Algo::Sssp => "sssp",
            Algo::Sswp => "sswp",
            Algo::Cc => "cc",
            Algo::Pr => "pr",
            Algo::Bc => "bc",
            Algo::Khop => "khop",
            Algo::Paths => "paths",
            Algo::Lp => "lp",
            Algo::Tc => "tc",
        }
    }

    /// Parses a label (and its aliases) back to the verb.
    pub fn parse(s: &str) -> Option<Algo> {
        match s.to_ascii_lowercase().as_str() {
            "bfs" => Some(Algo::Bfs),
            "sssp" => Some(Algo::Sssp),
            "sswp" => Some(Algo::Sswp),
            "cc" => Some(Algo::Cc),
            "pr" | "pagerank" => Some(Algo::Pr),
            "bc" | "betweenness" => Some(Algo::Bc),
            "khop" | "k-hop" => Some(Algo::Khop),
            "paths" | "bounded-paths" => Some(Algo::Paths),
            "lp" | "label-propagation" => Some(Algo::Lp),
            "tc" | "triangles" => Some(Algo::Tc),
            _ => None,
        }
    }

    /// Whether the verb takes a source node.
    pub fn needs_source(self) -> bool {
        !matches!(self, Algo::Cc | Algo::Pr | Algo::Lp | Algo::Tc)
    }

    /// Whether the verb takes a `limit` parameter (and what it means —
    /// see [`Algo::limit_name`]).
    pub fn needs_limit(self) -> bool {
        matches!(self, Algo::Khop | Algo::Paths | Algo::Lp)
    }

    /// Human name of the verb's `limit` parameter, if it takes one.
    pub fn limit_name(self) -> Option<&'static str> {
        match self {
            Algo::Khop => Some("k"),
            Algo::Paths => Some("radius"),
            Algo::Lp => Some("rounds"),
            _ => None,
        }
    }

    /// Whether the server's batch former may fuse queries of this verb
    /// into multi-source lanes: monotone fixpoint pipelines whose
    /// post-pass (if any) is per-lane. PR/BC run dedicated drivers;
    /// bounded paths needs its adjacency post-pass per lane and label
    /// propagation pins its own schedule — all solo.
    pub fn batchable(self) -> bool {
        matches!(
            self,
            Algo::Bfs | Algo::Sssp | Algo::Sswp | Algo::Cc | Algo::Khop
        )
    }

    /// All known labels, comma-joined — the `unknown-algo` error
    /// payload.
    pub fn known_labels() -> String {
        let labels: Vec<&str> = Algo::ALL.iter().map(|a| a.label()).collect();
        labels.join(", ")
    }
}

/// A verb/parameter combination that does not form a pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineSpecError {
    /// The verb needs a limit parameter and none was given.
    MissingLimit {
        /// The offending verb.
        algo: Algo,
    },
    /// The verb takes no limit parameter but one was given.
    UnexpectedLimit {
        /// The offending verb.
        algo: Algo,
    },
}

impl fmt::Display for PipelineSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineSpecError::MissingLimit { algo } => write!(
                f,
                "algo `{}` requires a limit ({})",
                algo.label(),
                algo.limit_name().unwrap_or("limit"),
            ),
            PipelineSpecError::UnexpectedLimit { algo } => {
                write!(f, "algo `{}` takes no limit parameter", algo.label())
            }
        }
    }
}

impl std::error::Error for PipelineSpecError {}

/// How [`crate::Engine::run_pipeline`] lowers the pipeline onto the
/// existing kernel layer. Private: the operator list is the public
/// description, the body is the compilation target.
#[derive(Clone, Debug)]
pub(crate) enum PipelineBody {
    /// The monotone fixpoint machinery (`relax_kernel`/`pull_gather`),
    /// optionally capped at a fixed number of synchronous rounds,
    /// optionally followed by a value post-pass.
    Monotone {
        prog: MonotoneProgram,
        rounds: Option<usize>,
        post: Option<ComputeStep>,
    },
    /// The PageRank power-iteration driver; ranks as bit patterns.
    PageRank(PrOptions),
    /// The Brandes betweenness driver; scores as bit patterns.
    Betweenness,
    /// No traversal at all: one per-vertex compute over the graph.
    ComputeOnly(ComputeStep),
}

/// An algorithm as data: named operator stages plus the compilation
/// body the engine lowers onto the kernel layer.
#[derive(Clone, Debug)]
pub struct Pipeline {
    name: &'static str,
    ops: Vec<GraphOperator>,
    pub(crate) body: PipelineBody,
}

fn monotone_advance(prog: &MonotoneProgram) -> GraphOperator {
    GraphOperator::Advance {
        space: AdvanceSpace::PlanChosen,
        relax: AdvanceRelax::Monotone {
            edge_op: prog.edge_op,
            combine: prog.combine,
            init: prog.init,
            associative: prog.associative,
        },
    }
}

impl Pipeline {
    /// The pipeline's short name ("bfs", "khop", ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The operator stages, in execution order.
    pub fn ops(&self) -> &[GraphOperator] {
        &self.ops
    }

    /// The pipeline's capabilities: the fold of its operators', with
    /// one pipeline-level restriction — a fixed-round cap (label
    /// propagation) snapshots a non-fixpoint state, which physical
    /// splitting does not preserve (split chains retime propagation),
    /// so round-capped pipelines are never split-invariant.
    pub fn caps(&self) -> OperatorCaps {
        let mut caps = self
            .ops
            .iter()
            .fold(OperatorCaps::NEUTRAL, |acc, op| acc.and(op.caps()));
        if matches!(
            self.body,
            PipelineBody::Monotone {
                rounds: Some(_),
                ..
            }
        ) {
            caps.split_invariant = false;
        }
        caps
    }

    /// Whether the pipeline needs a source node.
    pub fn needs_source(&self) -> bool {
        match &self.body {
            PipelineBody::Monotone { prog, .. } => prog.needs_source(),
            PipelineBody::PageRank(_) => false,
            PipelineBody::Betweenness => true,
            PipelineBody::ComputeOnly(_) => false,
        }
    }

    /// The monotone program a monotone-bodied pipeline compiles to,
    /// for delegation to the per-program plan checks.
    pub fn monotone_program(&self) -> Option<MonotoneProgram> {
        match &self.body {
            PipelineBody::Monotone { prog, .. } => Some(*prog),
            _ => None,
        }
    }

    /// Builds the verb's pipeline, checking the limit parameter's
    /// arity.
    pub fn for_algo(algo: Algo, limit: Option<u32>) -> Result<Pipeline, PipelineSpecError> {
        if algo.needs_limit() && limit.is_none() {
            return Err(PipelineSpecError::MissingLimit { algo });
        }
        if !algo.needs_limit() && limit.is_some() {
            return Err(PipelineSpecError::UnexpectedLimit { algo });
        }
        Ok(match algo {
            Algo::Bfs => Pipeline::bfs(),
            Algo::Sssp => Pipeline::sssp(),
            Algo::Sswp => Pipeline::sswp(),
            Algo::Cc => Pipeline::cc(),
            Algo::Pr => Pipeline::pagerank(PrOptions::default()),
            Algo::Bc => Pipeline::betweenness(),
            Algo::Khop => Pipeline::khop(limit.unwrap()),
            Algo::Paths => Pipeline::bounded_paths(limit.unwrap()),
            Algo::Lp => Pipeline::label_propagation(limit.unwrap() as usize),
            Algo::Tc => Pipeline::triangle_count(),
        })
    }

    /// Breadth-first search as a pipeline.
    pub fn bfs() -> Pipeline {
        MonotoneProgram::BFS.pipeline()
    }

    /// Single-source shortest paths as a pipeline.
    pub fn sssp() -> Pipeline {
        MonotoneProgram::SSSP.pipeline()
    }

    /// Single-source widest paths as a pipeline.
    pub fn sswp() -> Pipeline {
        MonotoneProgram::SSWP.pipeline()
    }

    /// Connected components as a pipeline.
    pub fn cc() -> Pipeline {
        MonotoneProgram::CC.pipeline()
    }

    /// PageRank as a pipeline (ranks travel as `f32` bit patterns).
    pub fn pagerank(options: PrOptions) -> Pipeline {
        let space = match options.mode {
            crate::algorithms::pr::PrMode::Push => AdvanceSpace::OutEdges,
            crate::algorithms::pr::PrMode::Pull => AdvanceSpace::InEdges,
        };
        Pipeline {
            name: "pr",
            ops: vec![
                GraphOperator::Advance {
                    space,
                    relax: AdvanceRelax::RankContribution,
                },
                GraphOperator::Compute(ComputeStep::FloatBits),
            ],
            body: PipelineBody::PageRank(options),
        }
    }

    /// Single-source betweenness centrality as a pipeline (scores
    /// travel as `f32` bit patterns).
    pub fn betweenness() -> Pipeline {
        Pipeline {
            name: "bc",
            ops: vec![
                GraphOperator::Advance {
                    space: AdvanceSpace::OutEdges,
                    relax: AdvanceRelax::ShortestPathCounts,
                },
                GraphOperator::Compute(ComputeStep::FloatBits),
            ],
            body: PipelineBody::Betweenness,
        }
    }

    /// k-hop neighborhood: true hop counts (weights ignored) to the
    /// fixpoint, then hops above `k` masked to unreached. The fixpoint
    /// is `k`-independent, so mixed-`k` queries batch soundly — the
    /// mask is per lane.
    pub fn khop(k: u32) -> Pipeline {
        let mut p = MonotoneProgram::KHOP.pipeline();
        p.name = "khop";
        p.ops
            .push(GraphOperator::Compute(ComputeStep::MaskAbove(k)));
        if let PipelineBody::Monotone { post, .. } = &mut p.body {
            *post = Some(ComputeStep::MaskAbove(k));
        }
        p
    }

    /// Bounded-cost path query: SSSP relaxation where candidates above
    /// `radius` collapse to `∞`, then a deterministic predecessor
    /// array (minimum-id witness parent per reached node) appended to
    /// the distances.
    pub fn bounded_paths(radius: u32) -> Pipeline {
        let prog = MonotoneProgram {
            name: "paths",
            edge_op: EdgeOp::AddWeightCapped(radius),
            combine: Combine::Min,
            init: InitKind::SourceZero,
            associative: true,
        };
        let mut p = prog.pipeline();
        p.name = "paths";
        p.ops
            .push(GraphOperator::Compute(ComputeStep::Predecessors));
        if let PipelineBody::Monotone { post, .. } = &mut p.body {
            *post = Some(ComputeStep::Predecessors);
        }
        p
    }

    /// Label propagation: the CC min-label program run for exactly
    /// `rounds` synchronous (BSP) full sweeps — a bounded-work
    /// community sketch rather than a fixpoint. The engine pins the
    /// schedule (push, BSP, no worklist) so every backend produces the
    /// same per-round state.
    pub fn label_propagation(rounds: usize) -> Pipeline {
        let prog = MonotoneProgram {
            name: "lp",
            edge_op: EdgeOp::Copy,
            combine: Combine::Min,
            init: InitKind::OwnId,
            associative: true,
        };
        Pipeline {
            name: "lp",
            ops: vec![
                monotone_advance(&prog),
                GraphOperator::Filter { dedup: false },
            ],
            body: PipelineBody::Monotone {
                prog,
                rounds: Some(rounds),
                post: None,
            },
        }
    }

    /// Per-node triangle counts of the simple undirected closure
    /// (self-loops and duplicate edges dropped); each node's count sums
    /// the triangles it participates in, so the global sum is three
    /// times the triangle count.
    pub fn triangle_count() -> Pipeline {
        Pipeline {
            name: "tc",
            ops: vec![GraphOperator::Compute(ComputeStep::TriangleCount)],
            body: PipelineBody::ComputeOnly(ComputeStep::TriangleCount),
        }
    }
}

impl MonotoneProgram {
    /// Lifts the program into its operator pipeline: a plan-chosen
    /// advance plus a deduplicating filter, the shape every monotone
    /// analytic shares (Figure 2 / Algorithm 2 as operators).
    pub fn pipeline(self) -> Pipeline {
        Pipeline {
            name: self.name,
            ops: vec![
                monotone_advance(&self),
                GraphOperator::Filter { dedup: true },
            ],
            body: PipelineBody::Monotone {
                prog: self,
                rounds: None,
                post: None,
            },
        }
    }
}

/// Result of a pipeline run: final per-node values (already through any
/// `Compute` post-pass) plus convergence metadata.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// Final values. Monotone analytics: one `u32` per value slot.
    /// PR/BC: `f32` bit patterns. Bounded paths: distances followed by
    /// predecessors (`2n` values).
    pub values: Vec<u32>,
    /// Sweeps/iterations the traversal ran.
    pub iterations: u64,
    /// Whether the run reached its fixpoint (round-capped pipelines
    /// converge early only if the fixpoint arrives before the cap).
    pub converged: bool,
    /// Whether a cancellation token fired mid-run.
    pub cancelled: bool,
}

/// Applies [`ComputeStep::MaskAbove`]: values above `bound` become
/// unreached.
pub fn mask_above(values: &mut [u32], bound: u32) {
    for v in values.iter_mut() {
        if *v > bound {
            *v = u32::MAX;
        }
    }
}

/// Applies [`ComputeStep::Predecessors`]: for every node with a finite
/// distance, the minimum-id neighbor `u` with an edge `u → v` whose
/// relaxation lands exactly on `dist[v]`. Deterministic by
/// construction (ascending scan), independent of how the fixpoint was
/// scheduled.
pub(crate) fn predecessors(g: &Csr, edge_op: EdgeOp, dist: &[u32], source: NodeId) -> Vec<u32> {
    let mut pred = vec![u32::MAX; dist.len()];
    pred[source.index()] = source.raw();
    for u in 0..g.num_nodes() {
        let du = dist[u];
        if du == u32::MAX {
            continue;
        }
        let v = NodeId::from_index(u);
        for e in g.edge_start(v)..g.edge_end(v) {
            let t = g.edge_target(e).index();
            if t == source.index() || pred[t] != u32::MAX {
                continue;
            }
            if dist[t] != u32::MAX && edge_op.apply(du, g.weight(e)) == dist[t] {
                pred[t] = u as u32;
            }
        }
    }
    pred
}

/// Applies [`ComputeStep::TriangleCount`]: counts, per node, the
/// triangles of the graph's simple undirected closure (every edge made
/// bidirectional, self-loops and duplicates dropped). Sorted-adjacency
/// merge intersection per edge `u < v`, counting common neighbors
/// `w > v` so each triangle is found exactly once and credited to all
/// three corners.
pub(crate) fn triangle_counts(g: &Csr) -> Vec<u32> {
    let n = g.num_nodes();
    // Simple undirected closure as sorted, deduped adjacency lists.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for u in 0..n {
        for &t in g.neighbors(NodeId::from_index(u)) {
            let v = t.index();
            if v != u {
                adj[u].push(v as u32);
                adj[v].push(u as u32);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let mut counts = vec![0u32; n];
    for u in 0..n {
        for &v in adj[u].iter().filter(|&&v| (v as usize) > u) {
            let v = v as usize;
            // Merge-intersect N(u) and N(v), keeping w > v.
            let (mut i, mut j) = (0, 0);
            let (a, b) = (&adj[u], &adj[v]);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = a[i] as usize;
                        if w > v {
                            counts[u] += 1;
                            counts[v] += 1;
                            counts[w] += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::CsrBuilder;

    #[test]
    fn algo_labels_round_trip() {
        for a in Algo::ALL {
            assert_eq!(Algo::parse(a.label()), Some(a), "{}", a.label());
        }
        assert_eq!(Algo::parse("pagerank"), Some(Algo::Pr));
        assert_eq!(Algo::parse("k-hop"), Some(Algo::Khop));
        assert_eq!(Algo::parse("bogus"), None);
        assert!(Algo::known_labels().contains("khop"));
        assert!(Algo::known_labels().contains("bfs"));
    }

    #[test]
    fn limit_arity_is_typed() {
        assert!(matches!(
            Pipeline::for_algo(Algo::Khop, None),
            Err(PipelineSpecError::MissingLimit { algo: Algo::Khop })
        ));
        let err = Pipeline::for_algo(Algo::Bfs, Some(3)).unwrap_err();
        assert_eq!(err, PipelineSpecError::UnexpectedLimit { algo: Algo::Bfs });
        assert!(err.to_string().contains("no limit"));
        let err = Pipeline::for_algo(Algo::Lp, None).unwrap_err();
        assert!(err.to_string().contains("rounds"), "{err}");
        assert!(Pipeline::for_algo(Algo::Paths, Some(9)).is_ok());
    }

    #[test]
    fn pipeline_caps_fold_per_theory() {
        // The six analytics: monotone pipelines are split-invariant,
        // PR/BC are not (degree rewiring / dependency mass).
        assert!(Pipeline::bfs().caps().split_invariant);
        assert!(Pipeline::sssp().caps().split_invariant);
        assert!(Pipeline::sswp().caps().split_invariant);
        assert!(Pipeline::cc().caps().split_invariant);
        assert!(
            !Pipeline::pagerank(PrOptions::default())
                .caps()
                .split_invariant
        );
        assert!(!Pipeline::betweenness().caps().split_invariant);
        // khop: AddUnit charges split edges — not split-invariant.
        assert!(!Pipeline::khop(2).caps().split_invariant);
        // paths: the capped relaxation is split-invariant, but the
        // predecessor post-pass reads the adjacency.
        assert!(!Pipeline::bounded_paths(10).caps().split_invariant);
        // lp: round caps snapshot non-fixpoint state.
        assert!(!Pipeline::label_propagation(3).caps().split_invariant);
        assert!(!Pipeline::triangle_count().caps().split_invariant);
        // Associativity flows from the program.
        assert!(Pipeline::bfs().caps().associative);
        assert!(Pipeline::pagerank(PrOptions::default()).caps().associative);
        // Pull-mode PR declares its transpose need.
        let pull = Pipeline::pagerank(PrOptions {
            mode: crate::algorithms::pr::PrMode::Pull,
            ..PrOptions::default()
        });
        assert!(pull.caps().needs_transpose);
        assert!(!Pipeline::bfs().caps().needs_transpose);
    }

    #[test]
    fn source_arity_follows_init() {
        assert!(Pipeline::bfs().needs_source());
        assert!(Pipeline::betweenness().needs_source());
        assert!(Pipeline::khop(1).needs_source());
        assert!(Pipeline::bounded_paths(1).needs_source());
        assert!(!Pipeline::cc().needs_source());
        assert!(!Pipeline::pagerank(PrOptions::default()).needs_source());
        assert!(!Pipeline::label_propagation(2).needs_source());
        assert!(!Pipeline::triangle_count().needs_source());
        for a in Algo::ALL {
            let limit = a.needs_limit().then_some(2);
            let p = Pipeline::for_algo(a, limit).unwrap();
            assert_eq!(p.needs_source(), a.needs_source(), "{}", a.label());
        }
    }

    #[test]
    fn mask_above_clamps() {
        let mut v = vec![0, 2, 3, u32::MAX];
        mask_above(&mut v, 2);
        assert_eq!(v, vec![0, 2, u32::MAX, u32::MAX]);
    }

    #[test]
    fn predecessors_pick_min_id_witness() {
        // 0 → 1 (w 2), 0 → 2 (w 2), 1 → 3 (w 2), 2 → 3 (w 2): node 3 is
        // reachable at distance 4 through both 1 and 2; the witness is
        // the min-id parent 1.
        let g = CsrBuilder::new(4)
            .weighted_edge(0, 1, 2)
            .weighted_edge(0, 2, 2)
            .weighted_edge(1, 3, 2)
            .weighted_edge(2, 3, 2)
            .build();
        let dist = vec![0, 2, 2, 4];
        let pred = predecessors(&g, EdgeOp::AddWeightCapped(10), &dist, NodeId::new(0));
        assert_eq!(pred, vec![0, 0, 0, 1]);
        // Unreached nodes keep ∞ predecessors.
        let dist = vec![0, 2, 2, u32::MAX];
        let pred = predecessors(&g, EdgeOp::AddWeightCapped(3), &dist, NodeId::new(0));
        assert_eq!(pred, vec![0, 0, 0, u32::MAX]);
    }

    #[test]
    fn triangle_counts_on_known_shapes() {
        // A directed 3-cycle closes into one undirected triangle.
        let cycle = CsrBuilder::new(3).edge(0, 1).edge(1, 2).edge(2, 0).build();
        assert_eq!(triangle_counts(&cycle), vec![1, 1, 1]);
        // K4: every node sits on C(3,2) = 3 triangles.
        let mut b = CsrBuilder::new(4);
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u < v {
                    b.edge(u, v);
                }
            }
        }
        assert_eq!(triangle_counts(&b.build()), vec![3, 3, 3, 3]);
        // Self-loops and duplicate arcs do not create triangles.
        let noisy = CsrBuilder::new(3)
            .edge(0, 0)
            .edge(0, 1)
            .edge(1, 0)
            .edge(1, 2)
            .edge(2, 0)
            .build();
        assert_eq!(triangle_counts(&noisy), vec![1, 1, 1]);
    }

    #[test]
    fn triangle_counts_agree_with_the_directed_oracle() {
        // On an already-symmetric simple graph the per-node sum is 3T
        // and the ordered-triple oracle counts 6T.
        let g = tigr_graph::generators::barabasi_albert(
            &tigr_graph::generators::BarabasiAlbertConfig {
                num_nodes: 60,
                edges_per_node: 3,
                symmetric: true,
            },
            7,
        );
        let counts = triangle_counts(&g);
        let sum: u64 = counts.iter().map(|&c| c as u64).sum();
        let oracle = tigr_graph::properties::triangle_count(&g) as u64;
        assert_eq!(sum * 2, oracle);
    }

    #[test]
    fn monotone_program_lifts_to_its_named_pipeline() {
        let p = MonotoneProgram::SSSP.pipeline();
        assert_eq!(p.name(), "sssp");
        assert_eq!(p.ops().len(), 2);
        assert!(matches!(
            p.ops()[0],
            GraphOperator::Advance {
                space: AdvanceSpace::PlanChosen,
                relax: AdvanceRelax::Monotone {
                    edge_op: EdgeOp::AddWeight,
                    ..
                },
            }
        ));
        assert!(matches!(p.ops()[1], GraphOperator::Filter { dedup: true }));
        assert_eq!(p.monotone_program(), Some(MonotoneProgram::SSSP));
        assert!(Pipeline::triangle_count().monotone_program().is_none());
    }
}
