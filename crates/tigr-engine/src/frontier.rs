//! Active-frontier worklist abstraction (Gunrock-style).
//!
//! A frontier is the set of nodes whose values changed last iteration.
//! GPU frameworks keep it in one of two physical forms:
//!
//! * **sparse** — a compacted list of node ids; threads are launched one
//!   per active node. Cheap when few nodes are active, but the list must
//!   be compacted (and, for virtual representations, expanded into
//!   virtual-node families) every iteration.
//! * **dense** — a bitmap with one bit per node; one thread per node is
//!   launched and inactive threads exit after a single bitmap load. No
//!   compaction, and sequential bitmap reads coalesce perfectly, which
//!   wins once a sizable fraction of the graph is active.
//!
//! [`Frontier`] carries both a bitmap (O(1) membership, needed by the
//! pull engine and by dense kernels) and the sorted active list (needed
//! by sparse kernels and degree sorting), plus the *scheduling
//! representation* chosen by a [`FrontierMode`] policy. The crossover of
//! [`FrontierMode::Auto`] is [`DENSE_FRACTION`]: the frontier goes dense
//! when more than one node in 32 is active, mirroring the thresholds
//! GPU frameworks use for their sparse→dense switch.
//!
//! [`FrontierBuilder`] is the concurrent collector kernels push newly
//! activated nodes into: an atomic bitmap, so duplicate activations
//! coalesce and draining yields ids in ascending order — the next
//! frontier is deterministic no matter how worker threads interleaved.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use tigr_graph::{Csr, NodeId};

/// `Auto` switches the frontier dense once `len > n /` this constant.
pub const DENSE_FRACTION: usize = 32;

/// Policy selecting the frontier's scheduling representation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrontierMode {
    /// Density-based switching: sparse below `n /` [`DENSE_FRACTION`]
    /// active nodes, dense above.
    #[default]
    Auto,
    /// Always the bitmap form (one thread per node).
    Dense,
    /// Always the compacted list (one thread per active node).
    Sparse,
}

impl FrontierMode {
    /// Parses a mode name as the CLI and `TIGR_FRONTIER` accept it.
    pub fn parse(s: &str) -> Option<FrontierMode> {
        match s {
            "auto" => Some(FrontierMode::Auto),
            "dense" => Some(FrontierMode::Dense),
            "sparse" => Some(FrontierMode::Sparse),
            _ => None,
        }
    }

    /// The mode's name (`"auto"`, `"dense"`, `"sparse"`).
    pub fn label(self) -> &'static str {
        match self {
            FrontierMode::Auto => "auto",
            FrontierMode::Dense => "dense",
            FrontierMode::Sparse => "sparse",
        }
    }
}

/// The representation a frontier was materialized in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontierRep {
    /// Bitmap scheduling: one thread per node.
    Dense,
    /// Compacted-list scheduling: one thread per active node.
    Sparse,
}

/// One iteration's set of active nodes.
#[derive(Clone, Debug)]
pub struct Frontier {
    n: usize,
    bits: Vec<u64>,
    /// Active ids; ascending unless reordered by [`Frontier::sort_by_degree`].
    active: Vec<u32>,
    rep: FrontierRep,
}

impl Frontier {
    /// Builds a frontier over `n` nodes from the given active ids
    /// (duplicates and order don't matter), choosing the representation
    /// per `mode`.
    ///
    /// # Panics
    ///
    /// Panics if an id is `>= n`.
    pub fn from_active(n: usize, mut active: Vec<u32>, mode: FrontierMode) -> Frontier {
        active.sort_unstable();
        active.dedup();
        let mut bits = vec![0u64; n.div_ceil(64)];
        for &v in &active {
            assert!((v as usize) < n, "active node {v} out of range (n = {n})");
            bits[v as usize / 64] |= 1 << (v % 64);
        }
        let rep = choose_rep(mode, active.len(), n);
        Frontier {
            n,
            bits,
            active,
            rep,
        }
    }

    /// Number of nodes the frontier ranges over.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of active nodes.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// `true` when no node is active (the run has converged).
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Fraction of nodes active, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.active.len() as f64 / self.n as f64
        }
    }

    /// The scheduling representation in effect.
    pub fn rep(&self) -> FrontierRep {
        self.rep
    }

    /// O(1) membership test.
    pub fn contains(&self, v: usize) -> bool {
        v < self.n && self.bits[v / 64] & (1 << (v % 64)) != 0
    }

    /// The active ids in scheduling order.
    pub fn nodes(&self) -> &[u32] {
        &self.active
    }

    /// Reorders the active list by out-degree (ties by id) so warps
    /// receive similar-sized work items. Only affects sparse scheduling;
    /// dense kernels walk the bitmap in node order regardless.
    pub fn sort_by_degree(&mut self, g: &Csr) {
        self.active
            .sort_unstable_by_key(|&v| (g.out_degree(NodeId::new(v)), v));
    }
}

fn choose_rep(mode: FrontierMode, len: usize, n: usize) -> FrontierRep {
    match mode {
        FrontierMode::Dense => FrontierRep::Dense,
        FrontierMode::Sparse => FrontierRep::Sparse,
        FrontierMode::Auto => {
            if len * DENSE_FRACTION > n {
                FrontierRep::Dense
            } else {
                FrontierRep::Sparse
            }
        }
    }
}

/// Concurrent next-frontier collector: an atomic bitmap kernels set bits
/// in. Duplicate activations collapse; [`FrontierBuilder::take`] yields
/// ids in ascending order, so the produced frontier is independent of
/// worker-thread interleaving.
#[derive(Debug)]
pub struct FrontierBuilder {
    bits: Vec<AtomicU64>,
    count: AtomicUsize,
    n: usize,
}

impl FrontierBuilder {
    /// A builder over `n` nodes with no bits set.
    pub fn new(n: usize) -> FrontierBuilder {
        FrontierBuilder {
            bits: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicUsize::new(0),
            n,
        }
    }

    /// Marks `v` active. Returns whether the bit was newly set (so the
    /// kernel can charge the store exactly once per node).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn activate(&self, v: usize) -> bool {
        assert!(v < self.n, "node {v} out of range (n = {})", self.n);
        let mask = 1u64 << (v % 64);
        if self.bits[v / 64].fetch_or(mask, Ordering::Relaxed) & mask == 0 {
            self.count.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Number of bits currently set.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// `true` when no node has been activated since the last take.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the builder's active ids into `out` (cleared first) in
    /// ascending order, resetting all bits — the allocation-free variant
    /// of [`FrontierBuilder::take`] for drivers that only need the work
    /// list, not a full [`Frontier`].
    pub fn drain_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.count.swap(0, Ordering::Relaxed));
        for (w, word) in self.bits.iter().enumerate() {
            let mut bits = word.swap(0, Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((w * 64) as u32 + b);
                bits &= bits - 1;
            }
        }
    }

    /// Resets every bit without materializing the active ids — the
    /// defensive re-initialization arenas run before reusing a builder.
    pub fn clear(&self) {
        self.count.store(0, Ordering::Relaxed);
        for word in &self.bits {
            word.store(0, Ordering::Relaxed);
        }
    }

    /// Drains the builder into a [`Frontier`], clearing all bits.
    pub fn take(&self, mode: FrontierMode) -> Frontier {
        let mut active = Vec::with_capacity(self.count.swap(0, Ordering::Relaxed));
        for (w, word) in self.bits.iter().enumerate() {
            let mut bits = word.swap(0, Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros();
                active.push((w * 64) as u32 + b);
                bits &= bits - 1;
            }
        }
        let rep = choose_rep(mode, active.len(), self.n);
        let mut bitmap = vec![0u64; self.n.div_ceil(64)];
        for &v in &active {
            bitmap[v as usize / 64] |= 1 << (v % 64);
        }
        Frontier {
            n: self.n,
            bits: bitmap,
            active,
            rep,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_active_sorts_and_dedups() {
        let f = Frontier::from_active(100, vec![7, 3, 7, 99], FrontierMode::Auto);
        assert_eq!(f.nodes(), &[3, 7, 99]);
        assert_eq!(f.len(), 3);
        assert!(f.contains(3) && f.contains(7) && f.contains(99));
        assert!(!f.contains(4) && !f.contains(100));
    }

    #[test]
    fn auto_switches_on_density() {
        let sparse = Frontier::from_active(320, vec![0; 1], FrontierMode::Auto);
        assert_eq!(sparse.rep(), FrontierRep::Sparse);
        let dense = Frontier::from_active(320, (0..11).collect(), FrontierMode::Auto);
        assert_eq!(dense.rep(), FrontierRep::Dense);
        // Exactly at the boundary (len * 32 == n) stays sparse.
        let edge = Frontier::from_active(320, (0..10).collect(), FrontierMode::Auto);
        assert_eq!(edge.rep(), FrontierRep::Sparse);
    }

    #[test]
    fn forced_modes_override_density() {
        let f = Frontier::from_active(4, vec![0, 1, 2, 3], FrontierMode::Sparse);
        assert_eq!(f.rep(), FrontierRep::Sparse);
        let f = Frontier::from_active(1000, vec![0], FrontierMode::Dense);
        assert_eq!(f.rep(), FrontierRep::Dense);
    }

    #[test]
    fn builder_dedups_and_drains_in_order() {
        let b = FrontierBuilder::new(200);
        assert!(b.activate(150));
        assert!(b.activate(3));
        assert!(!b.activate(150), "second activation is deduplicated");
        assert_eq!(b.len(), 2);
        let f = b.take(FrontierMode::Auto);
        assert_eq!(f.nodes(), &[3, 150]);
        assert!(b.is_empty(), "take clears the builder");
        assert!(b.take(FrontierMode::Auto).is_empty());
    }

    #[test]
    fn builder_is_deterministic_under_concurrency() {
        let b = FrontierBuilder::new(10_000);
        std::thread::scope(|s| {
            for t in 0..8 {
                let b = &b;
                s.spawn(move || {
                    for v in (t * 7..10_000).step_by(13) {
                        b.activate(v);
                    }
                });
            }
        });
        let nodes = b.take(FrontierMode::Auto).nodes().to_vec();
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(nodes, sorted, "drain order is ascending and unique");
    }

    #[test]
    fn empty_frontier_over_empty_graph() {
        let f = Frontier::from_active(0, vec![], FrontierMode::Auto);
        assert!(f.is_empty());
        assert_eq!(f.density(), 0.0);
        assert!(!f.contains(0));
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [
            FrontierMode::Auto,
            FrontierMode::Dense,
            FrontierMode::Sparse,
        ] {
            assert_eq!(FrontierMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(FrontierMode::parse("bitmap"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_activation_rejected() {
        FrontierBuilder::new(5).activate(5);
    }
}
