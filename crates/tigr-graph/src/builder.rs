//! Incremental CSR construction.

use crate::csr::Csr;
use crate::edge::{Edge, NodeId, Weight};
use crate::error::GraphError;
use crate::Result;

/// Builder assembling a [`Csr`] from an edge stream.
///
/// The builder follows the non-consuming builder pattern: configuration
/// methods return `&mut Self`, and [`CsrBuilder::build`] consumes nothing,
/// so a builder can be reused or extended after building.
///
/// # Example
///
/// ```
/// use tigr_graph::CsrBuilder;
///
/// // An undirected, deduplicated star around node 0.
/// let g = CsrBuilder::new(4)
///     .symmetric(true)
///     .dedup(true)
///     .edge(0, 1)
///     .edge(0, 1) // duplicate, removed
///     .edge(0, 2)
///     .edge(0, 3)
///     .build();
/// assert_eq!(g.num_edges(), 6); // 3 undirected edges = 6 arcs
/// ```
#[derive(Clone, Debug)]
pub struct CsrBuilder {
    num_nodes: usize,
    edges: Vec<Edge>,
    weighted: bool,
    symmetric: bool,
    dedup: bool,
    sort_neighbors: bool,
}

impl CsrBuilder {
    /// Creates a builder for a graph over nodes `0..num_nodes`.
    pub fn new(num_nodes: usize) -> Self {
        CsrBuilder {
            num_nodes,
            edges: Vec::new(),
            weighted: false,
            symmetric: false,
            dedup: false,
            sort_neighbors: true,
        }
    }

    /// Pre-allocates capacity for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// When `true`, every added edge also adds its reverse
    /// (undirected-graph emulation; the paper treats undirected graphs as
    /// directed graphs with both directions, §2.1).
    pub fn symmetric(&mut self, yes: bool) -> &mut Self {
        self.symmetric = yes;
        self
    }

    /// When `true`, parallel edges (same source, destination, and weight
    /// rank) are collapsed, keeping the smallest weight.
    pub fn dedup(&mut self, yes: bool) -> &mut Self {
        self.dedup = yes;
        self
    }

    /// When `true` (default), each node's neighbor list is sorted by
    /// destination. Deterministic layouts make the simulator's memory
    /// traces reproducible.
    pub fn sort_neighbors(&mut self, yes: bool) -> &mut Self {
        self.sort_neighbors = yes;
        self
    }

    /// Adds an unweighted edge `src → dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn edge(&mut self, src: u32, dst: u32) -> &mut Self {
        self.push(Edge::unweighted(NodeId::new(src), NodeId::new(dst)));
        self
    }

    /// Adds a weighted edge `src → dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn weighted_edge(&mut self, src: u32, dst: u32, weight: Weight) -> &mut Self {
        self.weighted = true;
        self.push(Edge::new(NodeId::new(src), NodeId::new(dst), weight));
        self
    }

    /// Adds a pre-built [`Edge`]. Marks the graph weighted if the edge
    /// weight differs from `1`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add(&mut self, e: Edge) -> &mut Self {
        if e.weight != 1 {
            self.weighted = true;
        }
        self.push(e);
        self
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges(&mut self, edges: impl IntoIterator<Item = Edge>) -> &mut Self {
        for e in edges {
            self.add(e);
        }
        self
    }

    /// Forces the output to carry a weight array even if all weights are 1.
    pub fn force_weighted(&mut self, yes: bool) -> &mut Self {
        self.weighted = yes;
        self
    }

    /// Number of edges currently staged (before symmetrization expansion).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    fn push(&mut self, e: Edge) {
        assert!(
            e.src.index() < self.num_nodes && e.dst.index() < self.num_nodes,
            "edge {e} out of range for {} nodes",
            self.num_nodes
        );
        self.edges.push(e);
        if self.symmetric {
            self.edges.push(e.reversed());
        }
    }

    /// Validates an edge without panicking; used by loaders.
    pub fn try_add(&mut self, e: Edge) -> Result<&mut Self> {
        if e.src.index() >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: e.src.raw() as u64,
                num_nodes: self.num_nodes,
            });
        }
        if e.dst.index() >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: e.dst.raw() as u64,
                num_nodes: self.num_nodes,
            });
        }
        Ok(self.add(e))
    }

    /// Builds the CSR. The builder remains usable afterwards.
    pub fn build(&self) -> Csr {
        let mut edges = self.edges.clone();
        if self.sort_neighbors || self.dedup {
            edges.sort_unstable_by_key(|e| (e.src, e.dst, e.weight));
        } else {
            // CSR requires grouping by source regardless; use a stable sort
            // to preserve user-specified neighbor order.
            edges.sort_by_key(|e| e.src);
        }
        if self.dedup {
            edges.dedup_by_key(|e| (e.src, e.dst));
        }

        let mut row_ptr = vec![0usize; self.num_nodes + 1];
        for e in &edges {
            row_ptr[e.src.index() + 1] += 1;
        }
        for i in 0..self.num_nodes {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx: Vec<NodeId> = edges.iter().map(|e| e.dst).collect();
        let weights = if self.weighted {
            Some(edges.iter().map(|e| e.weight).collect())
        } else {
            None
        };
        Csr::from_parts(row_ptr, col_idx, weights)
    }

    /// Builds from a complete edge list in one call.
    ///
    /// # Example
    ///
    /// ```
    /// use tigr_graph::{CsrBuilder, Edge, NodeId};
    ///
    /// let edges = vec![Edge::unweighted(NodeId::new(0), NodeId::new(1))];
    /// let g = CsrBuilder::from_edges(2, edges).build();
    /// assert_eq!(g.num_edges(), 1);
    /// ```
    pub fn from_edges(num_nodes: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut b = CsrBuilder::new(num_nodes);
        b.extend_edges(edges);
        b
    }
}

impl Extend<Edge> for CsrBuilder {
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        self.extend_edges(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_neighbor_lists() {
        let g = CsrBuilder::new(3).edge(0, 2).edge(0, 1).build();
        assert_eq!(
            g.neighbors(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn unsorted_preserves_insertion_order() {
        let mut b = CsrBuilder::new(3);
        b.sort_neighbors(false).edge(0, 2).edge(0, 1);
        let g = b.build();
        assert_eq!(
            g.neighbors(NodeId::new(0)),
            &[NodeId::new(2), NodeId::new(1)]
        );
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let mut b = CsrBuilder::new(2);
        b.dedup(true).edge(0, 1).edge(0, 1).edge(0, 1);
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn dedup_keeps_minimum_weight() {
        let mut b = CsrBuilder::new(2);
        b.dedup(true)
            .weighted_edge(0, 1, 9)
            .weighted_edge(0, 1, 3)
            .weighted_edge(0, 1, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(0), 3);
    }

    #[test]
    fn symmetric_adds_reverse_arcs() {
        let mut b = CsrBuilder::new(3);
        b.symmetric(true).edge(0, 1).edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(NodeId::new(2)), &[NodeId::new(1)]);
    }

    #[test]
    fn weighted_flag_tracks_explicit_weights() {
        assert!(!CsrBuilder::new(2).edge(0, 1).build().is_weighted());
        assert!(CsrBuilder::new(2)
            .weighted_edge(0, 1, 2)
            .build()
            .is_weighted());
        let mut b = CsrBuilder::new(2);
        b.force_weighted(true).edge(0, 1);
        assert!(b.build().is_weighted());
    }

    #[test]
    fn try_add_reports_out_of_range() {
        let mut b = CsrBuilder::new(2);
        let err = b
            .try_add(Edge::unweighted(NodeId::new(0), NodeId::new(5)))
            .unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, .. }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_panics_out_of_range() {
        CsrBuilder::new(1).edge(0, 1);
    }

    #[test]
    fn builder_is_reusable_after_build() {
        let mut b = CsrBuilder::new(3);
        b.edge(0, 1);
        let g1 = b.build();
        b.edge(1, 2);
        let g2 = b.build();
        assert_eq!(g1.num_edges(), 1);
        assert_eq!(g2.num_edges(), 2);
    }

    #[test]
    fn extend_trait_works() {
        let mut b = CsrBuilder::new(2);
        b.extend(vec![Edge::unweighted(NodeId::new(0), NodeId::new(1))]);
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn from_edges_one_shot() {
        let g = CsrBuilder::from_edges(
            3,
            vec![
                Edge::unweighted(NodeId::new(0), NodeId::new(1)),
                Edge::unweighted(NodeId::new(2), NodeId::new(0)),
            ],
        )
        .build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loops_are_allowed() {
        let g = CsrBuilder::new(1).edge(0, 0).build();
        assert_eq!(g.neighbors(NodeId::new(0)), &[NodeId::new(0)]);
    }
}
