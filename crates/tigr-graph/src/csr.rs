//! Immutable compressed-sparse-row graph storage.

use std::fmt;

use crate::edge::{Edge, NodeId, Weight};
use crate::segment::ArcSlice;

/// An immutable directed graph in compressed-sparse-row (CSR) form.
///
/// This is the physical representation the paper's engine and the Tigr
/// transformations operate on (Figure 10a): a `row_ptr` array of length
/// `n + 1` indexing into a flat `col_idx` edge array, plus an optional
/// parallel `weights` array.
///
/// A `Csr` is deliberately immutable: the engine, the transformations, and
/// the simulator can all share it freely across threads. Use
/// [`CsrBuilder`](crate::CsrBuilder) to construct one.
///
/// # Example
///
/// ```
/// use tigr_graph::{CsrBuilder, NodeId};
///
/// let g = CsrBuilder::new(3)
///     .weighted_edge(0, 1, 4)
///     .weighted_edge(0, 2, 7)
///     .weighted_edge(1, 2, 1)
///     .build();
///
/// let v0 = NodeId::new(0);
/// assert_eq!(g.out_degree(v0), 2);
/// let nbrs: Vec<_> = g.neighbors(v0).iter().map(|n| n.raw()).collect();
/// assert_eq!(nbrs, vec![1, 2]);
/// assert_eq!(g.weight(0), 4);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    row_ptr: ArcSlice<usize>,
    col_idx: ArcSlice<NodeId>,
    weights: Option<ArcSlice<Weight>>,
}

impl Csr {
    /// Assembles a CSR directly from its component arrays.
    ///
    /// Most callers should use [`CsrBuilder`](crate::CsrBuilder) instead;
    /// this constructor exists for loaders and transformations that already
    /// produce CSR-shaped data.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `row_ptr` must be non-empty,
    /// non-decreasing, start at `0`, and end at `col_idx.len()`; `weights`,
    /// when present, must parallel `col_idx`.
    pub fn from_parts(
        row_ptr: Vec<usize>,
        col_idx: Vec<NodeId>,
        weights: Option<Vec<Weight>>,
    ) -> Self {
        Csr::from_views(row_ptr.into(), col_idx.into(), weights.map(ArcSlice::from))
    }

    /// Assembles a CSR from typed views, which may borrow a mapped
    /// [`Segment`](crate::Segment) instead of owning heap arrays. Same
    /// validation and panics as [`Csr::from_parts`].
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent (see [`Csr::from_parts`]).
    pub fn from_views(
        row_ptr: ArcSlice<usize>,
        col_idx: ArcSlice<NodeId>,
        weights: Option<ArcSlice<Weight>>,
    ) -> Self {
        assert!(!row_ptr.is_empty(), "row_ptr must have at least one entry");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr must end at the edge count"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be non-decreasing"
        );
        if let Some(w) = &weights {
            assert_eq!(w.len(), col_idx.len(), "weights must parallel col_idx");
        }
        let n = row_ptr.len() - 1;
        assert!(
            col_idx.iter().all(|c| c.index() < n),
            "col_idx entries must be < num_nodes"
        );
        Csr {
            row_ptr,
            col_idx,
            weights,
        }
    }

    /// Assembles a CSR from views without re-validating the invariants.
    ///
    /// Reserved for the lazy-verify mapped open path, where the caller
    /// explicitly trades the `O(n + m)` invariant scan for open speed on
    /// an artifact this process (or a trusted peer) wrote. All reads
    /// still go through bounds-checked slices, so a malformed artifact
    /// can at worst panic or mis-answer — never touch invalid memory.
    pub(crate) fn from_views_unchecked(
        row_ptr: ArcSlice<usize>,
        col_idx: ArcSlice<NodeId>,
        weights: Option<ArcSlice<Weight>>,
    ) -> Self {
        assert!(!row_ptr.is_empty(), "row_ptr must have at least one entry");
        Csr {
            row_ptr,
            col_idx,
            weights,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// `true` if the graph carries an explicit weight array.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Outgoing degree of `v` — the quantity Definition 1 bounds with `K`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Start index of `v`'s edges in the flat edge array.
    pub fn edge_start(&self, v: NodeId) -> usize {
        self.row_ptr[v.index()]
    }

    /// One-past-the-end index of `v`'s edges in the flat edge array.
    pub fn edge_end(&self, v: NodeId) -> usize {
        self.row_ptr[v.index() + 1]
    }

    /// Out-neighbors of `v` as a contiguous slice.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.col_idx[self.edge_start(v)..self.edge_end(v)]
    }

    /// Weights parallel to [`Self::neighbors`], if the graph is weighted.
    pub fn neighbor_weights(&self, v: NodeId) -> Option<&[Weight]> {
        self.weights
            .as_ref()
            .map(|w| &w[self.edge_start(v)..self.edge_end(v)])
    }

    /// Destination of the edge at flat index `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= num_edges()`.
    pub fn edge_target(&self, e: usize) -> NodeId {
        self.col_idx[e]
    }

    /// Weight of the edge at flat index `e` (`1` when unweighted).
    ///
    /// # Panics
    ///
    /// Panics if `e >= num_edges()` for weighted graphs.
    pub fn weight(&self, e: usize) -> Weight {
        match &self.weights {
            Some(w) => w[e],
            None => 1,
        }
    }

    /// The raw `row_ptr` array (length `num_nodes() + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw flat edge-target array (length `num_edges()`).
    pub fn col_idx(&self) -> &[NodeId] {
        &self.col_idx
    }

    /// The raw flat weight array, if present.
    pub fn weights(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// `true` when every array borrows a memory-mapped segment (the
    /// zero-copy open path) rather than owning heap storage.
    pub fn is_mapped(&self) -> bool {
        self.row_ptr.is_mapped()
            && self.col_idx.is_mapped()
            && self.weights.as_ref().is_none_or(ArcSlice::is_mapped)
    }

    /// Bytes of CSR array data resident on the heap. Mapped arrays
    /// count zero: their pages live in the page cache and are
    /// reclaimable.
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.heap_bytes()
            + self.col_idx.heap_bytes()
            + self.weights.as_ref().map_or(0, ArcSlice::heap_bytes)
    }

    /// Bytes of CSR array data borrowed from mapped segments.
    pub fn mapped_bytes(&self) -> usize {
        let view_bytes = |mapped: bool, bytes: usize| if mapped { bytes } else { 0 };
        view_bytes(
            self.row_ptr.is_mapped(),
            self.row_ptr.len() * std::mem::size_of::<usize>(),
        ) + view_bytes(
            self.col_idx.is_mapped(),
            self.col_idx.len() * std::mem::size_of::<NodeId>(),
        ) + self.weights.as_ref().map_or(0, |w| {
            view_bytes(w.is_mapped(), w.len() * std::mem::size_of::<Weight>())
        })
    }

    /// Iterator over all node identifiers, `0..num_nodes()`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId::new)
    }

    /// Iterator over all edges in flat order.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            csr: self,
            node: 0,
            idx: 0,
        }
    }

    /// Maximum outgoing degree, `d_max` in Table 3. `0` for empty graphs.
    pub fn max_out_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|i| self.row_ptr[i + 1] - self.row_ptr[i])
            .max()
            .unwrap_or(0)
    }

    /// Average outgoing degree.
    pub fn avg_out_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Size of the graph in bytes under the paper's CSR accounting
    /// (Tables 5 and 6): `(n + 1)` row-pointer entries plus one edge entry
    /// per edge, each 4 bytes, plus 4 bytes per weight when present.
    pub fn csr_size_bytes(&self) -> usize {
        let ptr = (self.num_nodes() + 1) * 4;
        let edges = self.num_edges() * 4;
        let weights = if self.is_weighted() {
            self.num_edges() * 4
        } else {
            0
        };
        ptr + edges + weights
    }

    /// Returns a copy of this graph with every weight replaced by values
    /// drawn from `f(edge_index)`. Used to attach synthetic weights.
    pub fn with_weights_from(&self, f: impl FnMut(usize) -> Weight) -> Csr {
        let weights: Vec<Weight> = (0..self.num_edges()).map(f).collect();
        Csr {
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            weights: Some(weights.into()),
        }
    }

    /// Returns the same topology with the weight array removed.
    pub fn without_weights(&self) -> Csr {
        Csr {
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            weights: None,
        }
    }
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Csr")
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.num_edges())
            .field("weighted", &self.is_weighted())
            .finish()
    }
}

/// Iterator over every edge of a [`Csr`] in flat (row-major) order.
///
/// Produced by [`Csr::edges`].
#[derive(Debug)]
pub struct Edges<'a> {
    csr: &'a Csr,
    node: usize,
    idx: usize,
}

impl Iterator for Edges<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if self.idx >= self.csr.num_edges() {
            return None;
        }
        // Advance `node` until the current flat index falls in its range.
        while self.csr.row_ptr[self.node + 1] <= self.idx {
            self.node += 1;
        }
        let e = Edge::new(
            NodeId::from_index(self.node),
            self.csr.col_idx[self.idx],
            self.csr.weight(self.idx),
        );
        self.idx += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.csr.num_edges() - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Edges<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    fn sample() -> Csr {
        CsrBuilder::new(4)
            .weighted_edge(0, 1, 10)
            .weighted_edge(0, 2, 20)
            .weighted_edge(1, 3, 30)
            .weighted_edge(3, 0, 40)
            .build()
    }

    #[test]
    fn basic_shape() {
        let g = sample();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_weighted());
        assert_eq!(g.out_degree(NodeId::new(0)), 2);
        assert_eq!(g.out_degree(NodeId::new(2)), 0);
        assert_eq!(g.max_out_degree(), 2);
        assert!((g.avg_out_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn neighbor_slices_and_weights_parallel() {
        let g = sample();
        let v0 = NodeId::new(0);
        assert_eq!(g.neighbors(v0), &[NodeId::new(1), NodeId::new(2)]);
        assert_eq!(g.neighbor_weights(v0).unwrap(), &[10, 20]);
        assert_eq!(g.neighbors(NodeId::new(2)), &[] as &[NodeId]);
    }

    #[test]
    fn flat_edge_access() {
        let g = sample();
        assert_eq!(g.edge_target(2), NodeId::new(3));
        assert_eq!(g.weight(2), 30);
        assert_eq!(g.edge_start(NodeId::new(1)), 2);
        assert_eq!(g.edge_end(NodeId::new(1)), 3);
    }

    #[test]
    fn edges_iterator_covers_all_in_order() {
        let g = sample();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0], Edge::new(NodeId::new(0), NodeId::new(1), 10));
        assert_eq!(edges[3], Edge::new(NodeId::new(3), NodeId::new(0), 40));
        assert_eq!(g.edges().len(), 4);
    }

    #[test]
    fn edges_iterator_skips_isolated_nodes() {
        let g = CsrBuilder::new(5).edge(0, 4).edge(4, 0).build();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[1].src, NodeId::new(4));
    }

    #[test]
    fn unweighted_weight_defaults_to_one() {
        let g = CsrBuilder::new(2).edge(0, 1).build();
        assert!(!g.is_weighted());
        assert_eq!(g.weight(0), 1);
    }

    #[test]
    fn csr_size_accounting() {
        let g = sample();
        // (4+1)*4 row ptr + 4*4 edges + 4*4 weights
        assert_eq!(g.csr_size_bytes(), 20 + 16 + 16);
        assert_eq!(g.without_weights().csr_size_bytes(), 20 + 16);
    }

    #[test]
    fn with_weights_from_replaces_weights() {
        let g = sample().with_weights_from(|e| (e as u32 + 1) * 100);
        assert_eq!(g.weight(0), 100);
        assert_eq!(g.weight(3), 400);
    }

    #[test]
    fn empty_graph() {
        let g = CsrBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_out_degree(), 0);
        assert_eq!(g.avg_out_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at the edge count")]
    fn from_parts_rejects_inconsistent_row_ptr() {
        let _ = Csr::from_parts(vec![0, 5], vec![NodeId::new(0)], None);
    }

    #[test]
    #[should_panic(expected = "col_idx entries must be < num_nodes")]
    fn from_parts_rejects_out_of_range_targets() {
        let _ = Csr::from_parts(vec![0, 1], vec![NodeId::new(3)], None);
    }

    #[test]
    #[should_panic(expected = "weights must parallel col_idx")]
    fn from_parts_rejects_mismatched_weights() {
        let _ = Csr::from_parts(vec![0, 1], vec![NodeId::new(0)], Some(vec![1, 2]));
    }

    #[test]
    fn csr_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Csr>();
    }
}
