//! Core identifier and edge types shared across the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Edge weight type used by the weighted analytics (SSSP, SSWP).
///
/// Weights are unsigned integers so that the engine can propagate them with
/// single hardware `atomicMin`/`atomicMax` operations, exactly like the
/// paper's CUDA kernels (Algorithm 2, line 9). Unweighted analytics (BFS,
/// CC, PR) treat every edge as weight `1`.
pub type Weight = u32;

/// A weight larger than any real path length: the "dumb weight" of
/// Corollary 3 and the initial distance value (`dist = ∞`) of Figure 2.
///
/// The value is `u32::MAX`, which is also an *absorbing* value for the
/// saturating additions used by the engine, so `∞ + w = ∞` holds.
pub const INFINITE_WEIGHT: Weight = u32::MAX;

/// Identifier of a node (vertex) in a graph.
///
/// The paper's graphs reach 59M nodes, so a `u32` index is sufficient while
/// keeping CSR arrays compact — identical to the layout the original CUDA
/// implementation uses. `NodeId` is `#[repr(transparent)]`, so slices of
/// `NodeId` have the same layout as slices of `u32`.
///
/// # Example
///
/// ```
/// use tigr_graph::NodeId;
///
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(v.raw(), 7u32);
/// assert_eq!(format!("{v}"), "7");
/// ```
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[repr(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a raw `u32` index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Creates a node identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }

    /// Returns the identifier as a `usize`, suitable for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// A directed, weighted edge `src → dst` used during graph construction.
///
/// Inside [`crate::Csr`] edges are stored column-compressed; `Edge` is the
/// exploded form produced by loaders and generators.
///
/// # Example
///
/// ```
/// use tigr_graph::{Edge, NodeId};
///
/// let e = Edge::new(NodeId::new(0), NodeId::new(1), 5);
/// assert_eq!(e.reversed().src, NodeId::new(1));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Edge weight (`1` for unweighted graphs).
    pub weight: Weight,
}

impl Edge {
    /// Creates a weighted edge.
    pub const fn new(src: NodeId, dst: NodeId, weight: Weight) -> Self {
        Edge { src, dst, weight }
    }

    /// Creates an unweighted edge (weight `1`).
    pub const fn unweighted(src: NodeId, dst: NodeId) -> Self {
        Edge::new(src, dst, 1)
    }

    /// Returns the same edge with endpoints swapped.
    pub const fn reversed(self) -> Self {
        Edge::new(self.dst, self.src, self.weight)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} (w={})", self.src, self.dst, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(NodeId::from(42u32), v);
        assert_eq!(u32::from(v), 42);
        assert_eq!(NodeId::from_index(42), v);
    }

    #[test]
    fn node_id_ordering_matches_raw() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32 range")]
    fn node_id_from_oversized_index_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn edge_reversal_swaps_endpoints_and_keeps_weight() {
        let e = Edge::new(NodeId::new(3), NodeId::new(9), 17);
        let r = e.reversed();
        assert_eq!(r.src, NodeId::new(9));
        assert_eq!(r.dst, NodeId::new(3));
        assert_eq!(r.weight, 17);
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn unweighted_edge_has_weight_one() {
        assert_eq!(Edge::unweighted(NodeId::new(0), NodeId::new(1)).weight, 1);
    }

    #[test]
    fn infinite_weight_is_absorbing_under_saturating_add() {
        assert_eq!(INFINITE_WEIGHT.saturating_add(123), INFINITE_WEIGHT);
    }

    #[test]
    fn display_formats() {
        let e = Edge::new(NodeId::new(1), NodeId::new(2), 3);
        assert_eq!(e.to_string(), "1 -> 2 (w=3)");
    }

    #[test]
    fn node_id_layout_is_transparent() {
        // Guarantees the CSR can expose `&[NodeId]` views over raw u32 data.
        assert_eq!(std::mem::size_of::<NodeId>(), std::mem::size_of::<u32>());
        assert_eq!(std::mem::align_of::<NodeId>(), std::mem::align_of::<u32>());
    }
}
