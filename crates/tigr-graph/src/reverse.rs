//! Graph transposition for pull-based processing.
//!
//! The pull-based scheme (§2.1, §3.1 footnote 3) propagates values along
//! *incoming* edges, so the engine needs the transpose of the push CSR.

use crate::csr::Csr;
use crate::edge::NodeId;

/// Returns the transpose of `g`: an edge `u → v` (weight `w`) becomes
/// `v → u` (weight `w`).
///
/// The transpose preserves weights, and each node's in-neighbors appear
/// sorted by source, giving deterministic memory traces.
///
/// # Example
///
/// ```
/// use tigr_graph::{CsrBuilder, NodeId, reverse::transpose};
///
/// let g = CsrBuilder::new(3).edge(0, 2).edge(1, 2).build();
/// let t = transpose(&g);
/// assert_eq!(t.neighbors(NodeId::new(2)), &[NodeId::new(0), NodeId::new(1)]);
/// ```
pub fn transpose(g: &Csr) -> Csr {
    let n = g.num_nodes();
    let m = g.num_edges();

    // Counting sort by destination: O(|V| + |E|).
    let mut row_ptr = vec![0usize; n + 1];
    for e in 0..m {
        row_ptr[g.edge_target(e).index() + 1] += 1;
    }
    for i in 0..n {
        row_ptr[i + 1] += row_ptr[i];
    }

    let mut cursor = row_ptr.clone();
    let mut col_idx = vec![NodeId::default(); m];
    let mut weights = if g.is_weighted() {
        Some(vec![0u32; m])
    } else {
        None
    };

    // Walk edges in flat order; since sources are non-decreasing in flat
    // order, each in-neighbor list comes out sorted by source.
    for src in g.nodes() {
        for (off, &dst) in g.neighbors(src).iter().enumerate() {
            let e = g.edge_start(src) + off;
            let slot = cursor[dst.index()];
            cursor[dst.index()] += 1;
            col_idx[slot] = src;
            if let Some(w) = &mut weights {
                w[slot] = g.weight(e);
            }
        }
    }

    Csr::from_parts(row_ptr, col_idx, weights)
}

/// Per-node incoming degrees of `g` — `O(|E|)`, without materializing the
/// transpose.
pub fn in_degrees(g: &Csr) -> Vec<usize> {
    let mut deg = vec![0usize; g.num_nodes()];
    for e in 0..g.num_edges() {
        deg[g.edge_target(e).index()] += 1;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    #[test]
    fn transpose_reverses_edges_and_weights() {
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 5)
            .weighted_edge(0, 2, 7)
            .weighted_edge(2, 1, 9)
            .build();
        let t = transpose(&g);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(
            t.neighbors(NodeId::new(1)),
            &[NodeId::new(0), NodeId::new(2)]
        );
        assert_eq!(t.neighbor_weights(NodeId::new(1)).unwrap(), &[5, 9]);
        assert_eq!(t.neighbors(NodeId::new(0)), &[] as &[NodeId]);
    }

    #[test]
    fn double_transpose_is_identity() {
        let g = CsrBuilder::new(5)
            .weighted_edge(0, 3, 1)
            .weighted_edge(3, 4, 2)
            .weighted_edge(4, 0, 3)
            .weighted_edge(1, 1, 4)
            .build();
        let tt = transpose(&transpose(&g));
        assert_eq!(tt, g);
    }

    #[test]
    fn in_degrees_match_transpose_out_degrees() {
        let g = CsrBuilder::new(4)
            .edge(0, 3)
            .edge(1, 3)
            .edge(2, 3)
            .edge(3, 0)
            .build();
        let deg = in_degrees(&g);
        let t = transpose(&g);
        for v in g.nodes() {
            assert_eq!(deg[v.index()], t.out_degree(v));
        }
    }

    #[test]
    fn transpose_of_empty_graph() {
        let g = CsrBuilder::new(0).build();
        let t = transpose(&g);
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn transpose_unweighted_stays_unweighted() {
        let g = CsrBuilder::new(2).edge(0, 1).build();
        assert!(!transpose(&g).is_weighted());
    }
}
