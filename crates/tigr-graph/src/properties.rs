//! Reference oracles for structural graph properties.
//!
//! The Tigr correctness results (Theorem 1 and Corollaries 1–4) are
//! statements about connectivity, paths, distances, and degrees. This
//! module provides simple, obviously-correct sequential implementations
//! of those properties, used by the test suites as ground truth.

use std::collections::{BinaryHeap, VecDeque};

use crate::csr::Csr;
use crate::edge::{NodeId, Weight, INFINITE_WEIGHT};

/// Returns `true` if a directed path from `src` to `dst` exists.
pub fn reachable(g: &Csr, src: NodeId, dst: NodeId) -> bool {
    if src == dst {
        return true;
    }
    let mut seen = vec![false; g.num_nodes()];
    let mut queue = VecDeque::new();
    seen[src.index()] = true;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if u == dst {
                return true;
            }
            if !seen[u.index()] {
                seen[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    false
}

/// BFS hop distances from `src`; `usize::MAX` marks unreachable nodes.
pub fn bfs_levels(g: &Csr, src: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for &u in g.neighbors(v) {
            if dist[u.index()] == usize::MAX {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Dijkstra single-source shortest-path distances.
/// [`INFINITE_WEIGHT`] marks unreachable nodes.
///
/// This is the oracle for the paper's SSSP (Figure 2, Algorithm 2) and for
/// Corollary 2 (UDT + zero dumb weights preserves distances).
pub fn dijkstra(g: &Csr, src: NodeId) -> Vec<Weight> {
    let n = g.num_nodes();
    let mut dist = vec![INFINITE_WEIGHT; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(Weight, u32)>> = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(std::cmp::Reverse((0, src.raw())));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        let v = NodeId::new(v);
        if d > dist[v.index()] {
            continue;
        }
        for (off, &u) in g.neighbors(v).iter().enumerate() {
            let e = g.edge_start(v) + off;
            let alt = d.saturating_add(g.weight(e));
            if alt < dist[u.index()] {
                dist[u.index()] = alt;
                heap.push(std::cmp::Reverse((alt, u.raw())));
            }
        }
    }
    dist
}

/// Single-source *widest path* values: for every node, the maximum over all
/// paths of the minimum edge weight along the path. The source has width
/// [`INFINITE_WEIGHT`]; unreachable nodes have width `0`.
///
/// Oracle for SSWP and Corollary 3 (UDT + infinite dumb weights preserves
/// the minimal edge weight on paths).
pub fn widest_path(g: &Csr, src: NodeId) -> Vec<Weight> {
    let n = g.num_nodes();
    let mut width = vec![0u32; n];
    let mut heap: BinaryHeap<(Weight, u32)> = BinaryHeap::new();
    width[src.index()] = INFINITE_WEIGHT;
    heap.push((INFINITE_WEIGHT, src.raw()));
    while let Some((wv, v)) = heap.pop() {
        let v = NodeId::new(v);
        if wv < width[v.index()] {
            continue;
        }
        for (off, &u) in g.neighbors(v).iter().enumerate() {
            let e = g.edge_start(v) + off;
            let cand = wv.min(g.weight(e));
            if cand > width[u.index()] {
                width[u.index()] = cand;
                heap.push((cand, u.raw()));
            }
        }
    }
    width
}

/// Weakly connected component labels: each node is labelled with the
/// smallest node id in its component (edges treated as undirected).
///
/// Oracle for CC and Corollary 1 (UDT preserves connectivity).
pub fn connected_components(g: &Csr) -> Vec<u32> {
    let n = g.num_nodes();
    let mut parent: Vec<u32> = (0..n as u32).collect();

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    for e in g.edges() {
        let (a, b) = (
            find(&mut parent, e.src.raw()),
            find(&mut parent, e.dst.raw()),
        );
        if a != b {
            // Union by minimum id so labels are canonical.
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Number of distinct weakly connected components.
pub fn num_components(g: &Csr) -> usize {
    let labels = connected_components(g);
    let mut sorted = labels;
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Exact betweenness centrality via Brandes' algorithm over all sources,
/// treating the graph as unweighted. Oracle for BC.
///
/// `O(|V|·|E|)` — intended for the small graphs used in tests.
pub fn betweenness_centrality(g: &Csr) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    for s in g.nodes() {
        brandes_accumulate(g, s, &mut bc);
    }
    bc
}

/// Single-source Brandes pass: accumulates the dependency of `s` on every
/// node into `bc`. Exposed separately because the GPU engine computes BC
/// one source at a time.
pub fn brandes_accumulate(g: &Csr, s: NodeId, bc: &mut [f64]) {
    let n = g.num_nodes();
    let mut stack: Vec<u32> = Vec::new();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![i64::MAX; n];
    sigma[s.index()] = 1.0;
    dist[s.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(s.raw());
    while let Some(v) = queue.pop_front() {
        stack.push(v);
        for &u in g.neighbors(NodeId::new(v)) {
            let u = u.raw();
            if dist[u as usize] == i64::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                queue.push_back(u);
            }
            if dist[u as usize] == dist[v as usize] + 1 {
                sigma[u as usize] += sigma[v as usize];
                preds[u as usize].push(v);
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    while let Some(w) = stack.pop() {
        for &v in &preds[w as usize] {
            delta[v as usize] += sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
        }
        if w != s.raw() {
            bc[w as usize] += delta[w as usize];
        }
    }
}

/// Reference PageRank by dense power iteration with uniform teleport.
///
/// Dangling nodes (out-degree 0) redistribute their rank uniformly, the
/// standard convention. Oracle for PR and Corollary 4 (UDT preserves the
/// out-degrees PR divides by).
pub fn pagerank(g: &Csr, damping: f64, iterations: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        let mut dangling = 0.0;
        for x in next.iter_mut() {
            *x = 0.0;
        }
        for v in g.nodes() {
            let deg = g.out_degree(v);
            if deg == 0 {
                dangling += rank[v.index()];
            } else {
                let share = rank[v.index()] / deg as f64;
                for &u in g.neighbors(v) {
                    next[u.index()] += share;
                }
            }
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        for x in next.iter_mut() {
            *x = base + damping * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Counts directed triangles `u → v → w → u` (each cyclic triangle is
/// counted once per rotation; divide by 3 for unique triangles).
///
/// Triangle counting is one of the *neighborhood-dependent* analyses the
/// paper lists as **not preserved** by split transformations (§3.3
/// applicability discussion); the test suites use this oracle to
/// demonstrate that boundary.
///
/// `O(Σ d(v)²)` — intended for small test graphs.
pub fn triangle_count(g: &Csr) -> usize {
    let mut count = 0;
    for u in g.nodes() {
        for &v in g.neighbors(u) {
            for &w in g.neighbors(v) {
                if g.neighbors(w).contains(&u) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    fn diamond() -> Csr {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, weights make the lower path shorter.
        CsrBuilder::new(4)
            .weighted_edge(0, 1, 10)
            .weighted_edge(1, 3, 10)
            .weighted_edge(0, 2, 1)
            .weighted_edge(2, 3, 2)
            .build()
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(reachable(&g, NodeId::new(0), NodeId::new(3)));
        assert!(!reachable(&g, NodeId::new(3), NodeId::new(0)));
        assert!(reachable(&g, NodeId::new(2), NodeId::new(2)));
    }

    #[test]
    fn bfs_levels_on_diamond() {
        let g = diamond();
        assert_eq!(bfs_levels(&g, NodeId::new(0)), vec![0, 1, 1, 2]);
        assert_eq!(
            bfs_levels(&g, NodeId::new(3)),
            vec![usize::MAX; 3]
                .into_iter()
                .chain([0])
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn dijkstra_takes_cheaper_path() {
        let d = dijkstra(&diamond(), NodeId::new(0));
        assert_eq!(d, vec![0, 10, 1, 3]);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let g = CsrBuilder::new(3).weighted_edge(0, 1, 2).build();
        let d = dijkstra(&g, NodeId::new(0));
        assert_eq!(d[2], INFINITE_WEIGHT);
    }

    #[test]
    fn widest_path_maximizes_bottleneck() {
        // Two paths 0->3: via 1 bottleneck 10, via 2 bottleneck 2.
        let g = diamond();
        let w = widest_path(&g, NodeId::new(0));
        assert_eq!(w[0], INFINITE_WEIGHT);
        assert_eq!(w[1], 10);
        assert_eq!(w[3], 10); // takes the top path even though it is "longer"
        assert_eq!(w[2], 1);
    }

    #[test]
    fn widest_path_unreachable_is_zero() {
        let g = CsrBuilder::new(2).build();
        assert_eq!(widest_path(&g, NodeId::new(0))[1], 0);
    }

    #[test]
    fn connected_components_on_two_islands() {
        let g = CsrBuilder::new(5).edge(0, 1).edge(1, 2).edge(3, 4).build();
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(num_components(&g), 2);
    }

    #[test]
    fn cc_treats_edges_as_undirected() {
        let g = CsrBuilder::new(2).edge(1, 0).build();
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn betweenness_on_path_peaks_in_middle() {
        // 0 <-> 1 <-> 2 (undirected path): node 1 lies on 0<->2 paths.
        let mut b = CsrBuilder::new(3);
        b.symmetric(true).edge(0, 1).edge(1, 2);
        let bc = betweenness_centrality(&b.build());
        assert!(bc[1] > bc[0]);
        assert!(bc[1] > bc[2]);
        assert_eq!(bc[0], 0.0);
        // Node 1 is on exactly two shortest paths (0->2 and 2->0).
        assert!((bc[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        // Two nodes pointing at a sink.
        let g = CsrBuilder::new(3).edge(0, 2).edge(1, 2).build();
        let pr = pagerank(&g, 0.85, 50);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
        assert!(pr[2] > pr[0]);
        assert!((pr[0] - pr[1]).abs() < 1e-12);
    }

    #[test]
    fn pagerank_on_empty_graph() {
        let g = CsrBuilder::new(0).build();
        assert!(pagerank(&g, 0.85, 10).is_empty());
    }

    #[test]
    fn triangle_count_on_directed_cycle() {
        let g = CsrBuilder::new(3).edge(0, 1).edge(1, 2).edge(2, 0).build();
        assert_eq!(triangle_count(&g), 3); // one triangle, three rotations
    }

    #[test]
    fn triangle_count_zero_without_cycles() {
        let g = diamond();
        assert_eq!(triangle_count(&g), 0);
    }
}
