//! Graph partitioning utilities.
//!
//! The paper positions split transformations *against* the vertex
//! partitioning of distributed engines (§7.1): "vertex partitioning
//! requires to synchronize the partitioned vertices explicitly; more
//! critically, \[it\] often has to replicate both high-degree and
//! low-degree vertices (called mirroring)." This module implements the
//! two classic partitioning families so that the comparison is
//! executable: how many mirrors does a partitioning create where a
//! split transformation creates none?

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::edge::NodeId;

/// A partitioning of a graph's edges (or nodes) into `k` parts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    /// Part id per *edge* (flat edge order).
    pub edge_part: Vec<u32>,
    /// Number of parts.
    pub num_parts: u32,
}

impl Partitioning {
    /// Number of edges in each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts as usize];
        for &p in &self.edge_part {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Load imbalance: largest part over the mean part size (1.0 =
    /// perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = sizes.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.edge_part.len() as f64 / self.num_parts.max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Replication factor of a vertex-cut partitioning (PowerGraph's
    /// metric): the average number of parts each node appears in — the
    /// "mirroring" cost §7.1 contrasts with split transformations.
    pub fn replication_factor(&self, g: &Csr) -> f64 {
        let n = g.num_nodes();
        if n == 0 {
            return 0.0;
        }
        // For each node, the set of parts among its incident edges.
        let mut parts_of: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut push = |v: usize, p: u32| {
            let list = &mut parts_of[v];
            if !list.contains(&p) {
                list.push(p);
            }
        };
        for (e, edge) in g.edges().enumerate() {
            let p = self.edge_part[e];
            push(edge.src.index(), p);
            push(edge.dst.index(), p);
        }
        let total: usize = parts_of.iter().map(|l| l.len().max(1)).sum();
        total as f64 / n as f64
    }
}

/// Edge-balanced *vertex cut* (PowerGraph-style greedy): edges are
/// assigned to the currently least-loaded part among those already
/// hosting either endpoint, falling back to the globally least-loaded
/// part. High-degree nodes end up replicated across many parts.
pub fn vertex_cut(g: &Csr, num_parts: u32) -> Partitioning {
    assert!(num_parts >= 1, "need at least one part");
    let k = num_parts as usize;
    let mut load = vec![0usize; k];
    // parts seen per node, small-vec style (most nodes touch few parts).
    let mut node_parts: Vec<Vec<u32>> = vec![Vec::new(); g.num_nodes()];
    let mut edge_part = Vec::with_capacity(g.num_edges());

    for (assigned, edge) in g.edges().enumerate() {
        let (s, d) = (edge.src.index(), edge.dst.index());
        // Candidate parts: intersection first, then union, then global —
        // but overriding locality when the candidate is overloaded, which
        // is what forces hub replication (the greedy's balance rule).
        let pick = {
            let sp = &node_parts[s];
            let dp = &node_parts[d];
            let inter: Vec<u32> = sp.iter().copied().filter(|p| dp.contains(p)).collect();
            let candidates: Vec<u32> = if !inter.is_empty() {
                inter
            } else if !sp.is_empty() || !dp.is_empty() {
                sp.iter().chain(dp.iter()).copied().collect()
            } else {
                (0..num_parts).collect()
            };
            let local = candidates
                .into_iter()
                .min_by_key(|&p| load[p as usize])
                .expect("candidates non-empty");
            let cap = assigned / k + k; // mean load plus slack
            if load[local as usize] > cap {
                (0..num_parts)
                    .min_by_key(|&p| load[p as usize])
                    .expect("at least one part")
            } else {
                local
            }
        };
        load[pick as usize] += 1;
        if !node_parts[s].contains(&pick) {
            node_parts[s].push(pick);
        }
        if !node_parts[d].contains(&pick) {
            node_parts[d].push(pick);
        }
        edge_part.push(pick);
    }

    Partitioning {
        edge_part,
        num_parts,
    }
}

/// Node-hash *edge cut*: every edge goes to the part of its source node
/// (`hash(src) % k`) — the Pregel-style 1D partitioning whose load
/// imbalance under power-law degrees motivated vertex cuts in the first
/// place.
pub fn edge_cut_by_source(g: &Csr, num_parts: u32) -> Partitioning {
    assert!(num_parts >= 1, "need at least one part");
    let part_of = |v: NodeId| (v.raw().wrapping_mul(2654435761) >> 8) % num_parts;
    Partitioning {
        edge_part: g.edges().map(|e| part_of(e.src)).collect(),
        num_parts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat, star_graph, RmatConfig};

    #[test]
    fn vertex_cut_balances_edges() {
        let g = rmat(&RmatConfig::graph500(10, 8), 11);
        let p = vertex_cut(&g, 8);
        assert_eq!(p.edge_part.len(), g.num_edges());
        assert!(p.imbalance() < 1.05, "imbalance {}", p.imbalance());
    }

    #[test]
    fn edge_cut_is_imbalanced_on_power_law_graphs() {
        // The 1D partitioning puts a hub's whole edge list in one part.
        let g = star_graph(10_000);
        let one_d = edge_cut_by_source(&g, 8);
        assert!(one_d.imbalance() > 4.0, "imbalance {}", one_d.imbalance());
        let cut = vertex_cut(&g, 8);
        assert!(cut.imbalance() < 1.1);
    }

    #[test]
    fn vertex_cut_replicates_hubs() {
        // The §7.1 contrast: a vertex cut mirrors the hub across all
        // parts; Tigr's (virtual) splitting replicates nothing.
        let g = star_graph(10_000);
        let p = vertex_cut(&g, 8);
        // Hub node 0 appears in every part.
        let hub_parts: std::collections::HashSet<u32> = g
            .edges()
            .enumerate()
            .filter(|(_, e)| e.src == NodeId::new(0))
            .map(|(i, _)| p.edge_part[i])
            .collect();
        assert_eq!(hub_parts.len(), 8);
        assert!(p.replication_factor(&g) > 1.0);
    }

    #[test]
    fn replication_factor_is_one_for_single_part() {
        let g = rmat(&RmatConfig::graph500(8, 4), 5);
        let p = vertex_cut(&g, 1);
        assert!((p.replication_factor(&g) - 1.0).abs() < 1e-12);
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn part_sizes_sum_to_edge_count() {
        let g = rmat(&RmatConfig::graph500(9, 6), 7);
        for p in [vertex_cut(&g, 5), edge_cut_by_source(&g, 5)] {
            assert_eq!(p.part_sizes().iter().sum::<usize>(), g.num_edges());
        }
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_rejected() {
        let _ = vertex_cut(&star_graph(3), 0);
    }
}
