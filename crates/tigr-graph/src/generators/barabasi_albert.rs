//! Barabási–Albert preferential-attachment generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::builder::CsrBuilder;
use crate::csr::Csr;

/// Parameters for the Barabási–Albert preferential-attachment model.
///
/// Every arriving node attaches `edges_per_node` edges to existing nodes
/// with probability proportional to their current degree, yielding a
/// power-law degree distribution with exponent ≈ 3 — the mechanism behind
/// the "rich get richer" hubs in real social graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarabasiAlbertConfig {
    /// Total number of nodes.
    pub num_nodes: usize,
    /// Edges attached by each arriving node.
    pub edges_per_node: usize,
    /// When `true`, each attachment also adds the reverse arc, making the
    /// output effectively undirected (as social friendship graphs are).
    pub symmetric: bool,
}

/// Generates a Barabási–Albert graph. Deterministic per `(config, seed)`.
///
/// Attachment sampling uses the classic "repeated endpoints" trick: pick a
/// uniformly random endpoint of an already-placed edge, which is exactly
/// degree-proportional sampling.
///
/// # Panics
///
/// Panics if `edges_per_node == 0` or `num_nodes < 2`.
///
/// # Example
///
/// ```
/// use tigr_graph::generators::{barabasi_albert, BarabasiAlbertConfig};
///
/// let g = barabasi_albert(
///     &BarabasiAlbertConfig { num_nodes: 500, edges_per_node: 3, symmetric: false },
///     7,
/// );
/// assert_eq!(g.num_nodes(), 500);
/// assert!(g.max_out_degree() >= 3);
/// ```
pub fn barabasi_albert(config: &BarabasiAlbertConfig, seed: u64) -> Csr {
    assert!(config.edges_per_node > 0, "edges_per_node must be positive");
    assert!(config.num_nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.num_nodes;
    let m = config.edges_per_node;

    // `endpoints` holds every endpoint of every placed edge; sampling a
    // uniform element is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut b = CsrBuilder::new(n).with_edge_capacity(n * m * if config.symmetric { 2 } else { 1 });
    b.symmetric(config.symmetric);

    // Seed with a single edge 0 -> 1.
    b.edge(0, 1);
    endpoints.push(0);
    endpoints.push(1);

    for v in 2..n as u32 {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let attempts = m.min(v as usize);
        while chosen.len() < attempts {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_stats, power_law_alpha};
    use crate::NodeId;

    fn cfg(n: usize, m: usize) -> BarabasiAlbertConfig {
        BarabasiAlbertConfig {
            num_nodes: n,
            edges_per_node: m,
            symmetric: false,
        }
    }

    #[test]
    fn node_and_edge_counts() {
        let g = barabasi_albert(&cfg(100, 2), 1);
        assert_eq!(g.num_nodes(), 100);
        // 1 seed edge + 2 per node for nodes 2.. (node 2 can only attach 2 distinct).
        assert_eq!(g.num_edges(), 1 + 98 * 2);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            barabasi_albert(&cfg(200, 3), 4),
            barabasi_albert(&cfg(200, 3), 4)
        );
        assert_ne!(
            barabasi_albert(&cfg(200, 3), 4),
            barabasi_albert(&cfg(200, 3), 5)
        );
    }

    #[test]
    fn early_nodes_become_hubs() {
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 2000,
                edges_per_node: 2,
                symmetric: true,
            },
            11,
        );
        let deg0 = g.out_degree(NodeId::new(0)) + g.out_degree(NodeId::new(1));
        let avg = g.avg_out_degree();
        assert!(
            deg0 as f64 > 5.0 * avg,
            "seed nodes should be hubs: deg {deg0} vs avg {avg}"
        );
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 3000,
                edges_per_node: 3,
                symmetric: true,
            },
            13,
        );
        let s = degree_stats(&g);
        assert!(s.coefficient_of_variation > 0.5);
        let alpha = power_law_alpha(&g, 6).expect("tail exists");
        assert!(
            (2.0..4.5).contains(&alpha),
            "BA exponent should be near 3, got {alpha}"
        );
    }

    #[test]
    fn symmetric_doubles_arcs() {
        let directed = barabasi_albert(&cfg(50, 2), 2);
        let undirected = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 50,
                edges_per_node: 2,
                symmetric: true,
            },
            2,
        );
        assert_eq!(undirected.num_edges(), 2 * directed.num_edges());
    }

    #[test]
    #[should_panic(expected = "edges_per_node must be positive")]
    fn zero_attachment_panics() {
        let _ = barabasi_albert(&cfg(10, 0), 0);
    }
}
