//! Erdős–Rényi uniform random graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::CsrBuilder;
use crate::csr::Csr;

/// Generates a `G(n, m)` Erdős–Rényi graph: `num_edges` directed edges with
/// uniformly random endpoints (self-loops excluded, parallel edges kept).
///
/// Uniform graphs have a binomial (nearly regular) degree distribution, so
/// they serve as the *low-irregularity* contrast workload in ablations:
/// Tigr's transformations should help much less here than on RMAT/BA
/// graphs.
///
/// # Panics
///
/// Panics if `num_nodes < 2`.
///
/// # Example
///
/// ```
/// use tigr_graph::generators::erdos_renyi;
///
/// let g = erdos_renyi(100, 500, 3);
/// assert_eq!(g.num_nodes(), 100);
/// assert_eq!(g.num_edges(), 500);
/// ```
pub fn erdos_renyi(num_nodes: usize, num_edges: usize, seed: u64) -> Csr {
    assert!(num_nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(num_nodes).with_edge_capacity(num_edges);
    for _ in 0..num_edges {
        let src = rng.gen_range(0..num_nodes as u32);
        let mut dst = rng.gen_range(0..num_nodes as u32);
        while dst == src {
            dst = rng.gen_range(0..num_nodes as u32);
        }
        b.edge(src, dst);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn exact_edge_count_and_no_self_loops() {
        let g = erdos_renyi(50, 200, 1);
        assert_eq!(g.num_edges(), 200);
        for e in g.edges() {
            assert_ne!(e.src, e.dst);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(64, 256, 9), erdos_renyi(64, 256, 9));
    }

    #[test]
    fn degree_distribution_is_nearly_regular() {
        let g = erdos_renyi(2000, 20000, 5);
        let s = degree_stats(&g);
        // Binomial CV = sqrt((1-p)/lambda) ≈ 1/sqrt(10) ≈ 0.32.
        assert!(
            s.coefficient_of_variation < 0.6,
            "ER should be near-regular, CV = {}",
            s.coefficient_of_variation
        );
    }
}
