//! Deterministic regular and structured graphs.
//!
//! These shapes are used as fixtures by tests (stars are the worst-case
//! input for SIMD load balance) and as low-irregularity contrast workloads
//! (lattices and grids model road networks).

use crate::builder::CsrBuilder;
use crate::csr::Csr;

/// A directed star: node 0 points at nodes `1..n` — the canonical
/// high-degree node that split transformations (Figure 4) decompose.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star_graph(n: usize) -> Csr {
    assert!(n > 0, "star graph needs at least the hub node");
    let mut b = CsrBuilder::new(n);
    for i in 1..n as u32 {
        b.edge(0, i);
    }
    b.build()
}

/// A ring lattice: every node connects to its `k` clockwise successors.
/// Perfectly regular — every node has out-degree exactly `k` (when
/// `k < n`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ring_lattice(n: usize, k: usize) -> Csr {
    assert!(n > 0, "ring lattice needs at least one node");
    let mut b = CsrBuilder::new(n);
    for v in 0..n as u32 {
        for j in 1..=k.min(n - 1) as u32 {
            b.edge(v, (v + j) % n as u32);
        }
    }
    b.build()
}

/// A complete directed graph on `n` nodes (no self loops).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete_graph(n: usize) -> Csr {
    assert!(n > 0, "complete graph needs at least one node");
    let mut b = CsrBuilder::new(n).with_edge_capacity(n * (n - 1));
    for v in 0..n as u32 {
        for u in 0..n as u32 {
            if v != u {
                b.edge(v, u);
            }
        }
    }
    b.build()
}

/// A 4-connected `rows × cols` grid with bidirectional edges — a stand-in
/// for road networks: high diameter, bounded degree, no hubs.
///
/// Node `(r, c)` has index `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid_2d(rows: usize, cols: usize) -> Csr {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = CsrBuilder::new(rows * cols);
    b.symmetric(true);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;
    use crate::NodeId;

    #[test]
    fn star_shape() {
        let g = star_graph(6);
        assert_eq!(g.out_degree(NodeId::new(0)), 5);
        for i in 1..6u32 {
            assert_eq!(g.out_degree(NodeId::new(i)), 0);
        }
    }

    #[test]
    fn star_of_one_is_a_lone_node() {
        let g = star_graph(1);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn ring_lattice_is_regular() {
        let g = ring_lattice(10, 3);
        let s = degree_stats(&g);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.coefficient_of_variation, 0.0);
        assert_eq!(g.num_edges(), 30);
    }

    #[test]
    fn ring_lattice_caps_k_at_n_minus_one() {
        let g = ring_lattice(4, 10);
        assert_eq!(g.max_out_degree(), 3);
    }

    #[test]
    fn complete_graph_edges() {
        let g = complete_graph(5);
        assert_eq!(g.num_edges(), 20);
        assert_eq!(g.max_out_degree(), 4);
    }

    #[test]
    fn grid_shape_and_degrees() {
        let g = grid_2d(3, 4);
        assert_eq!(g.num_nodes(), 12);
        // 3*3 horizontal + 2*4 vertical undirected edges, doubled.
        assert_eq!(g.num_edges(), 2 * (3 * 3 + 2 * 4));
        // Corner has degree 2; interior node degree 4.
        assert_eq!(g.out_degree(NodeId::new(0)), 2);
        assert_eq!(g.out_degree(NodeId::new(5)), 4);
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        let g = grid_2d(4, 4);
        assert_eq!(crate::stats::eccentricity(&g, NodeId::new(0)), 6);
    }
}
