//! Watts–Strogatz small-world generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::builder::CsrBuilder;
use crate::csr::Csr;

/// Parameters of the Watts–Strogatz small-world model.
///
/// Starts from a ring lattice where each node connects to its
/// `neighbors_each_side` successors and predecessors, then rewires each
/// edge's far endpoint with probability `rewire_probability`. Produces
/// graphs with near-regular degrees but small diameters — a contrast
/// point between the lattice and RMAT extremes: Tigr's transformations
/// are near no-ops here despite the social-like diameter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WattsStrogatzConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Ring connections on each side (`k/2` in the usual notation).
    pub neighbors_each_side: usize,
    /// Probability of rewiring each edge.
    pub rewire_probability: f64,
}

/// Generates a Watts–Strogatz graph (directed arcs in both directions).
/// Deterministic per `(config, seed)`.
///
/// # Panics
///
/// Panics if `num_nodes < 2 * neighbors_each_side + 2` or the rewire
/// probability is outside `[0, 1]`.
pub fn watts_strogatz(config: &WattsStrogatzConfig, seed: u64) -> Csr {
    let n = config.num_nodes;
    let k = config.neighbors_each_side;
    assert!(
        n >= 2 * k + 2,
        "need at least 2k+2 nodes for a k-neighbor ring"
    );
    assert!(
        (0.0..=1.0).contains(&config.rewire_probability),
        "rewire probability must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    let mut b = CsrBuilder::new(n).with_edge_capacity(2 * n * k);
    b.symmetric(true);
    b.dedup(true);
    for v in 0..n as u32 {
        for j in 1..=k as u32 {
            let mut target = (v + j) % n as u32;
            if rng.gen::<f64>() < config.rewire_probability {
                // Rewire to a uniform random non-self target.
                loop {
                    target = rng.gen_range(0..n as u32);
                    if target != v {
                        break;
                    }
                }
            }
            b.edge(v, target);
        }
    }
    b.build()
}

/// Convenience: the classic "six degrees" configuration — `k = 3`
/// neighbors each side, 5% rewiring.
pub fn small_world(num_nodes: usize, seed: u64) -> Csr {
    watts_strogatz(
        &WattsStrogatzConfig {
            num_nodes,
            neighbors_each_side: 3,
            rewire_probability: 0.05,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_stats, estimate_diameter};

    fn cfg(p: f64) -> WattsStrogatzConfig {
        WattsStrogatzConfig {
            num_nodes: 500,
            neighbors_each_side: 3,
            rewire_probability: p,
        }
    }

    #[test]
    fn zero_rewiring_is_a_ring_lattice() {
        let g = watts_strogatz(&cfg(0.0), 1);
        let s = degree_stats(&g);
        assert_eq!(s.max_degree, 6);
        assert_eq!(s.coefficient_of_variation, 0.0);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let lattice = watts_strogatz(&cfg(0.0), 2);
        let world = watts_strogatz(&cfg(0.1), 2);
        let d_lattice = estimate_diameter(&lattice, 8, 3);
        let d_world = estimate_diameter(&world, 8, 3);
        assert!(
            d_world < d_lattice / 2,
            "small world {d_world} vs lattice {d_lattice}"
        );
    }

    #[test]
    fn degrees_stay_nearly_regular() {
        let g = watts_strogatz(&cfg(0.1), 4);
        let s = degree_stats(&g);
        assert!(
            s.coefficient_of_variation < 0.3,
            "CV {}",
            s.coefficient_of_variation
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(watts_strogatz(&cfg(0.2), 9), watts_strogatz(&cfg(0.2), 9));
        assert_ne!(watts_strogatz(&cfg(0.2), 9), watts_strogatz(&cfg(0.2), 10));
    }

    #[test]
    fn small_world_helper() {
        let g = small_world(100, 5);
        assert_eq!(g.num_nodes(), 100);
        assert!(g.num_edges() > 0);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn tiny_ring_rejected() {
        let _ = watts_strogatz(
            &WattsStrogatzConfig {
                num_nodes: 4,
                neighbors_each_side: 2,
                rewire_probability: 0.0,
            },
            0,
        );
    }
}
