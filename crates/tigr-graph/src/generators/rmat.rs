//! Recursive-matrix (RMAT) power-law graph generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::builder::CsrBuilder;
use crate::csr::Csr;
use crate::edge::{Edge, NodeId};

/// Parameters for the RMAT generator (Chakrabarti, Zhan & Faloutsos 2004).
///
/// RMAT recursively drops each edge into one quadrant of the adjacency
/// matrix with probabilities `(a, b, c, d)`. Skewed quadrant probabilities
/// (`a ≫ d`) produce the heavy-tailed degree distributions of real social
/// networks — the irregularity Tigr targets.
///
/// # Example
///
/// ```
/// use tigr_graph::generators::{rmat, RmatConfig};
///
/// let cfg = RmatConfig::graph500(10, 8); // 2^10 nodes, 8 edges per node
/// let g = rmat(&cfg, 42);
/// assert_eq!(g.num_nodes(), 1024);
/// assert!(g.max_out_degree() > 3 * 8, "RMAT produces hubs");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RmatConfig {
    /// log2 of the number of nodes.
    pub scale: u32,
    /// Average number of directed edges per node.
    pub edge_factor: usize,
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Per-level multiplicative noise applied to the quadrant
    /// probabilities, which avoids the degree "staircase" artifact of pure
    /// RMAT. `0.0` disables noise.
    pub noise: f64,
    /// Collapse parallel edges after generation.
    pub dedup: bool,
}

impl RmatConfig {
    /// The Graph500 reference parameters: `a=0.57, b=0.19, c=0.19, d=0.05`.
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
            dedup: false,
        }
    }

    /// A more skewed parameterization (`a=0.65`) approximating follower
    /// graphs like Twitter or Sina Weibo, whose maximum degrees reach a
    /// few percent of the node count (Table 3).
    pub fn heavy_tail(scale: u32, edge_factor: usize) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.65,
            b: 0.18,
            c: 0.12,
            noise: 0.1,
            dedup: false,
        }
    }

    /// Probability of the bottom-right quadrant (`1 - a - b - c`).
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Number of nodes, `2^scale`.
    pub fn num_nodes(&self) -> usize {
        1usize << self.scale
    }

    /// Number of generated edges before deduplication.
    pub fn num_edges(&self) -> usize {
        self.num_nodes() * self.edge_factor
    }

    /// Validates the probability simplex.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or if `a+b+c > 1`.
    fn validate(&self) {
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0,
            "negative quadrant probability"
        );
        assert!(
            self.a + self.b + self.c <= 1.0 + 1e-9,
            "quadrant probabilities exceed 1"
        );
        assert!(self.scale <= 31, "scale too large for u32 node ids");
    }
}

/// Generates an RMAT graph. Deterministic for a given `(config, seed)`.
///
/// # Panics
///
/// Panics if `config` holds an invalid probability simplex or a scale
/// larger than 31.
pub fn rmat(config: &RmatConfig, seed: u64) -> Csr {
    config.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.num_nodes();
    let m = config.num_edges();

    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (src, dst) = rmat_edge(config, &mut rng);
        edges.push(Edge::unweighted(NodeId::new(src), NodeId::new(dst)));
    }

    let mut b = CsrBuilder::from_edges(n, edges);
    b.dedup(config.dedup);
    b.build()
}

fn rmat_edge(config: &RmatConfig, rng: &mut StdRng) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for level in (0..config.scale).rev() {
        // Multiplicative noise keeps the expected simplex but perturbs each
        // level, smoothing the synthetic degree distribution.
        let mut jitter = |p: f64| {
            if config.noise > 0.0 {
                p * (1.0 - config.noise + 2.0 * config.noise * rng.gen::<f64>())
            } else {
                p
            }
        };
        let (a, b, c, d) = (
            jitter(config.a),
            jitter(config.b),
            jitter(config.c),
            jitter(config.d()),
        );
        let total = a + b + c + d;
        let r = rng.gen::<f64>() * total;
        let bit = 1u32 << level;
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            dst |= bit;
        } else if r < a + b + c {
            src |= bit;
        } else {
            src |= bit;
            dst |= bit;
        }
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn produces_declared_sizes() {
        let cfg = RmatConfig::graph500(8, 4);
        let g = rmat(&cfg, 1);
        assert_eq!(g.num_nodes(), 256);
        assert_eq!(g.num_edges(), 1024);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RmatConfig::graph500(8, 4);
        assert_eq!(rmat(&cfg, 5), rmat(&cfg, 5));
        assert_ne!(rmat(&cfg, 5), rmat(&cfg, 6));
    }

    #[test]
    fn skewed_parameters_make_irregular_graphs() {
        let skewed = degree_stats(&rmat(&RmatConfig::heavy_tail(12, 8), 3));
        let cfg_flat = RmatConfig {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            noise: 0.0,
            ..RmatConfig::graph500(12, 8)
        };
        let flat = degree_stats(&rmat(&cfg_flat, 3));
        assert!(
            skewed.coefficient_of_variation > 2.0 * flat.coefficient_of_variation,
            "skewed CV {} should dwarf flat CV {}",
            skewed.coefficient_of_variation,
            flat.coefficient_of_variation
        );
        assert!(skewed.max_degree > 4 * flat.max_degree);
    }

    #[test]
    fn dedup_reduces_edge_count() {
        let mut cfg = RmatConfig::graph500(6, 16);
        cfg.dedup = true;
        let g = rmat(&cfg, 9);
        assert!(g.num_edges() < cfg.num_edges());
    }

    #[test]
    fn d_complements_simplex() {
        let cfg = RmatConfig::graph500(4, 1);
        assert!((cfg.a + cfg.b + cfg.c + cfg.d() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quadrant probabilities exceed 1")]
    fn invalid_simplex_panics() {
        let cfg = RmatConfig {
            a: 0.9,
            b: 0.9,
            c: 0.9,
            ..RmatConfig::graph500(4, 1)
        };
        let _ = rmat(&cfg, 0);
    }
}
