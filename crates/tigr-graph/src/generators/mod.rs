//! Synthetic graph generators.
//!
//! The paper evaluates on six real-world power-law graphs (Table 3). In
//! this reproduction, synthetic generators stand in for them (see
//! `DESIGN.md` §2): [`rmat`] and [`barabasi_albert`] produce the skewed
//! degree distributions that drive every Tigr mechanism, while
//! [`erdos_renyi`] and the lattice builders ([`ring_lattice`], [`grid_2d`]) provide low-irregularity contrast
//! workloads for ablations.
//!
//! All generators are deterministic given a seed.

mod barabasi_albert;
mod erdos_renyi;
mod regular;
mod rmat;
mod watts_strogatz;

pub use barabasi_albert::{barabasi_albert, BarabasiAlbertConfig};
pub use erdos_renyi::erdos_renyi;
pub use regular::{complete_graph, grid_2d, ring_lattice, star_graph};
pub use rmat::{rmat, RmatConfig};
pub use watts_strogatz::{small_world, watts_strogatz, WattsStrogatzConfig};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::Csr;
use crate::edge::Weight;

/// Attaches uniform pseudo-random integer weights in `[lo, hi]` to every
/// edge of `g`, deterministically from `seed`.
///
/// The paper's weighted analytics (SSSP, SSWP) run on weighted variants of
/// the datasets; benchmark suites conventionally use small uniform integer
/// weights, which is what this helper provides.
///
/// # Panics
///
/// Panics if `lo > hi`.
///
/// # Example
///
/// ```
/// use tigr_graph::{CsrBuilder, generators::with_uniform_weights};
///
/// let g = CsrBuilder::new(2).edge(0, 1).build();
/// let w = with_uniform_weights(&g, 1, 64, 42);
/// assert!(w.is_weighted());
/// assert!((1..=64).contains(&w.weight(0)));
/// ```
pub fn with_uniform_weights(g: &Csr, lo: Weight, hi: Weight, seed: u64) -> Csr {
    assert!(lo <= hi, "weight range is empty");
    let mut rng = StdRng::seed_from_u64(seed);
    g.with_weights_from(|_| rng.gen_range(lo..=hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    #[test]
    fn uniform_weights_in_range_and_deterministic() {
        let mut b = CsrBuilder::new(10);
        for i in 0..9u32 {
            b.edge(i, i + 1);
        }
        let g = b.build();
        let w1 = with_uniform_weights(&g, 5, 10, 7);
        let w2 = with_uniform_weights(&g, 5, 10, 7);
        assert_eq!(w1, w2);
        for e in 0..w1.num_edges() {
            assert!((5..=10).contains(&w1.weight(e)));
        }
        let w3 = with_uniform_weights(&g, 5, 10, 8);
        assert_ne!(w1, w3, "different seeds give different weights");
    }

    #[test]
    #[should_panic(expected = "weight range is empty")]
    fn empty_weight_range_panics() {
        let g = CsrBuilder::new(2).edge(0, 1).build();
        let _ = with_uniform_weights(&g, 10, 5, 0);
    }
}
