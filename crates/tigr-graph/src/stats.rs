//! Degree-distribution statistics and irregularity profiling.
//!
//! These routines back the paper's motivation numbers (§2.3: "over 90% of
//! nodes have degrees less than 20 while less than 2% of nodes have degrees
//! around 1000") and the dataset characteristics of Table 3.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::edge::NodeId;

/// Summary statistics of a graph's out-degree distribution.
///
/// Produced by [`degree_stats`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Maximum out-degree (`d_max` in Table 3).
    pub max_degree: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Median out-degree.
    pub median_degree: usize,
    /// 99th-percentile out-degree.
    pub p99_degree: usize,
    /// Sample standard deviation of the out-degree.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / avg`): the irregularity proxy
    /// Tigr reduces. Regular graphs have CV ≈ 0; power-law graphs ≫ 1.
    pub coefficient_of_variation: f64,
    /// Fraction of nodes with out-degree below 20 (the §2.3 "90%" figure).
    pub frac_below_20: f64,
    /// Fraction of nodes with out-degree of 1000 or more (the §2.3 "<2%" figure).
    pub frac_at_least_1000: f64,
}

/// Computes [`DegreeStats`] for `g`.
///
/// # Example
///
/// ```
/// use tigr_graph::{CsrBuilder, stats::degree_stats};
///
/// let g = CsrBuilder::new(3).edge(0, 1).edge(0, 2).edge(1, 2).build();
/// let s = degree_stats(&g);
/// assert_eq!(s.max_degree, 2);
/// assert_eq!(s.num_edges, 3);
/// ```
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.num_nodes();
    let mut degrees: Vec<usize> = g.nodes().map(|v| g.out_degree(v)).collect();
    degrees.sort_unstable();

    let num_edges = g.num_edges();
    let avg = if n == 0 {
        0.0
    } else {
        num_edges as f64 / n as f64
    };
    let var = if n == 0 {
        0.0
    } else {
        degrees
            .iter()
            .map(|&d| {
                let diff = d as f64 - avg;
                diff * diff
            })
            .sum::<f64>()
            / n as f64
    };
    let std_dev = var.sqrt();
    let pct = |p: f64| -> usize {
        if degrees.is_empty() {
            0
        } else {
            let idx = ((degrees.len() as f64 - 1.0) * p).round() as usize;
            degrees[idx]
        }
    };
    let below_20 = degrees.iter().filter(|&&d| d < 20).count();
    let at_least_1000 = degrees.iter().filter(|&&d| d >= 1000).count();

    DegreeStats {
        num_nodes: n,
        num_edges,
        max_degree: degrees.last().copied().unwrap_or(0),
        avg_degree: avg,
        median_degree: pct(0.5),
        p99_degree: pct(0.99),
        std_dev,
        coefficient_of_variation: if avg > 0.0 { std_dev / avg } else { 0.0 },
        frac_below_20: if n == 0 {
            0.0
        } else {
            below_20 as f64 / n as f64
        },
        frac_at_least_1000: if n == 0 {
            0.0
        } else {
            at_least_1000 as f64 / n as f64
        },
    }
}

/// Histogram of out-degrees: `histogram[d]` = number of nodes with degree
/// `d`, up to the maximum degree.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_out_degree() + 1];
    for v in g.nodes() {
        hist[g.out_degree(v)] += 1;
    }
    hist
}

/// Maximum-likelihood estimate of the power-law exponent `α` for degrees
/// `≥ d_min` (Clauset–Shalizi–Newman): `α = 1 + n / Σ ln(d_i / (d_min - ½))`.
///
/// Returns `None` if fewer than two nodes meet the threshold.
pub fn power_law_alpha(g: &Csr, d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1);
    let tail: Vec<f64> = g
        .nodes()
        .map(|v| g.out_degree(v))
        .filter(|&d| d >= d_min)
        .map(|d| d as f64)
        .collect();
    if tail.len() < 2 {
        return None;
    }
    let denom: f64 = tail.iter().map(|&d| (d / (d_min as f64 - 0.5)).ln()).sum();
    if denom <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / denom)
}

/// Estimates the graph's diameter (`d` in Table 3) by running BFS from
/// `samples` pseudo-random start nodes and taking the largest finite
/// eccentricity observed. Exact for `samples >= num_nodes`.
///
/// The estimate is a lower bound on the true diameter — the standard
/// technique for large graphs where exact all-pairs BFS is infeasible.
pub fn estimate_diameter(g: &Csr, samples: usize, seed: u64) -> usize {
    let n = g.num_nodes();
    if n == 0 {
        return 0;
    }
    let mut best = 0usize;
    let mut state = seed | 1;
    let mut next = || {
        // xorshift64* — deterministic, dependency-free sampling.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let samples = samples.min(n);
    for i in 0..samples {
        let start = if samples >= n {
            NodeId::from_index(i)
        } else {
            NodeId::from_index((next() % n as u64) as usize)
        };
        best = best.max(eccentricity(g, start));
    }
    best
}

/// Average local clustering coefficient over up to `samples` nodes with
/// degree ≥ 2 (treating edges as undirected neighbor sets), sampled
/// deterministically from `seed`.
///
/// Social graphs cluster strongly (friends of friends are friends);
/// RMAT analogs cluster weakly — one of the known gaps between RMAT and
/// real social networks, reported here so EXPERIMENTS.md can note it.
pub fn clustering_coefficient(g: &Csr, samples: usize, seed: u64) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut total = 0.0f64;
    let mut counted = 0usize;
    let mut attempts = 0usize;
    while counted < samples && attempts < samples * 20 {
        attempts += 1;
        let v = NodeId::from_index((next() % n as u64) as usize);
        let nbrs = g.neighbors(v);
        if nbrs.len() < 2 {
            continue;
        }
        // Count links among the (deduped) neighbor set.
        let mut set: Vec<NodeId> = nbrs.to_vec();
        set.sort_unstable();
        set.dedup();
        if set.len() < 2 {
            continue;
        }
        let mut links = 0usize;
        for &u in &set {
            for &w in g.neighbors(u) {
                if w != u && set.binary_search(&w).is_ok() {
                    links += 1;
                }
            }
        }
        let possible = set.len() * (set.len() - 1);
        total += links as f64 / possible as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Largest finite BFS distance from `start` (0 if nothing is reachable).
pub fn eccentricity(g: &Csr, start: NodeId) -> usize {
    let n = g.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[start.index()] = 0;
    queue.push_back(start);
    let mut max_d = 0;
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for &u in g.neighbors(v) {
            if dist[u.index()] == usize::MAX {
                dist[u.index()] = dv + 1;
                max_d = max_d.max(dv + 1);
                queue.push_back(u);
            }
        }
    }
    max_d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    fn star(n: u32) -> Csr {
        let mut b = CsrBuilder::new(n as usize);
        for i in 1..n {
            b.edge(0, i);
        }
        b.build()
    }

    #[test]
    fn stats_on_star_graph() {
        let g = star(11);
        let s = degree_stats(&g);
        assert_eq!(s.num_nodes, 11);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.median_degree, 0);
        assert!((s.avg_degree - 10.0 / 11.0).abs() < 1e-12);
        assert!(
            s.coefficient_of_variation > 2.0,
            "star graphs are irregular"
        );
        assert!((s.frac_below_20 - 1.0).abs() < 1e-12);
        assert_eq!(s.frac_at_least_1000, 0.0);
    }

    #[test]
    fn stats_on_regular_cycle_have_zero_cv() {
        let mut b = CsrBuilder::new(8);
        for i in 0..8u32 {
            b.edge(i, (i + 1) % 8);
        }
        let s = degree_stats(&b.build());
        assert_eq!(s.max_degree, 1);
        assert_eq!(s.coefficient_of_variation, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = star(6);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[0], 5);
        assert_eq!(h[5], 1);
    }

    #[test]
    fn frac_at_least_1000_detects_hubs() {
        let g = star(1500);
        let s = degree_stats(&g);
        assert!(s.frac_at_least_1000 > 0.0);
    }

    #[test]
    fn power_law_alpha_on_synthetic_tail() {
        // Construct nodes with degrees 1,1,1,1,2,2,4,8: roughly geometric.
        let mut b = CsrBuilder::new(30);
        let mut next = 10u32;
        let degs = [1u32, 1, 1, 1, 2, 2, 4, 8];
        for (i, &d) in degs.iter().enumerate() {
            for _ in 0..d {
                b.edge(i as u32, next % 30);
                next += 1;
            }
        }
        let alpha = power_law_alpha(&b.build(), 1).unwrap();
        assert!(alpha > 1.0 && alpha < 5.0, "alpha = {alpha}");
    }

    #[test]
    fn power_law_alpha_requires_tail() {
        let g = CsrBuilder::new(2).edge(0, 1).build();
        assert!(power_law_alpha(&g, 50).is_none());
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = crate::generators::complete_graph(6);
        let c = clustering_coefficient(&g, 6, 1);
        assert!((c - 1.0).abs() < 1e-12, "c = {c}");
    }

    #[test]
    fn clustering_of_star_is_zero() {
        // Leaves have degree < 2; the hub's neighbors share no edges.
        let g = star(12);
        assert_eq!(clustering_coefficient(&g, 12, 1), 0.0);
    }

    #[test]
    fn clustering_of_triangle_rich_graph_is_high() {
        // Two triangles sharing a node.
        let mut b = CsrBuilder::new(5);
        b.symmetric(true);
        b.edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .edge(2, 3)
            .edge(3, 4)
            .edge(4, 2);
        let c = clustering_coefficient(&b.build(), 5, 3);
        assert!(c > 0.5, "c = {c}");
    }

    #[test]
    fn clustering_of_empty_graph_is_zero() {
        let g = CsrBuilder::new(0).build();
        assert_eq!(clustering_coefficient(&g, 4, 1), 0.0);
    }

    #[test]
    fn diameter_of_path_graph() {
        let mut b = CsrBuilder::new(6);
        for i in 0..5u32 {
            b.edge(i, i + 1);
        }
        let g = b.build();
        // Exhaustive sampling gives the exact diameter of the path: 5.
        assert_eq!(estimate_diameter(&g, 6, 1), 5);
        assert_eq!(eccentricity(&g, NodeId::new(0)), 5);
        assert_eq!(eccentricity(&g, NodeId::new(5)), 0);
    }

    #[test]
    fn diameter_of_empty_graph_is_zero() {
        let g = CsrBuilder::new(0).build();
        assert_eq!(estimate_diameter(&g, 4, 7), 0);
    }

    #[test]
    fn sampled_diameter_is_lower_bound() {
        let mut b = CsrBuilder::new(10);
        for i in 0..9u32 {
            b.edge(i, i + 1);
        }
        let g = b.build();
        let sampled = estimate_diameter(&g, 3, 42);
        let exact = estimate_diameter(&g, 10, 42);
        assert!(sampled <= exact);
    }
}
