//! Subgraph extraction and preprocessing.
//!
//! Real evaluations preprocess raw downloads: keep the largest weakly
//! connected component, extract induced subgraphs for scaling studies,
//! relabel sparse ids. These utilities make the loaders' output usable
//! the way the paper's datasets were.

use crate::builder::CsrBuilder;
use crate::csr::Csr;
use crate::edge::{Edge, NodeId};
use crate::properties::connected_components;

/// The induced subgraph on `keep` (node ids of `g`), with nodes
/// relabelled densely in the order given. Edges with either endpoint
/// outside `keep` are dropped; weights survive.
///
/// Returns the subgraph and the mapping `new id → old id`.
///
/// # Panics
///
/// Panics if `keep` contains an out-of-range or duplicate id.
pub fn induced_subgraph(g: &Csr, keep: &[NodeId]) -> (Csr, Vec<NodeId>) {
    let mut new_id = vec![u32::MAX; g.num_nodes()];
    for (i, &v) in keep.iter().enumerate() {
        assert!(v.index() < g.num_nodes(), "node {v} out of range");
        assert_eq!(
            new_id[v.index()],
            u32::MAX,
            "duplicate node {v} in keep set"
        );
        new_id[v.index()] = i as u32;
    }

    let mut b = CsrBuilder::new(keep.len());
    if g.is_weighted() {
        b.force_weighted(true);
    }
    for e in g.edges() {
        let (s, d) = (new_id[e.src.index()], new_id[e.dst.index()]);
        if s != u32::MAX && d != u32::MAX {
            b.add(Edge::new(NodeId::new(s), NodeId::new(d), e.weight));
        }
    }
    (b.build(), keep.to_vec())
}

/// The largest weakly connected component of `g`, relabelled densely
/// (ascending original id order). Returns the subgraph and the
/// `new id → old id` mapping.
pub fn largest_component(g: &Csr) -> (Csr, Vec<NodeId>) {
    if g.num_nodes() == 0 {
        return (CsrBuilder::new(0).build(), Vec::new());
    }
    let labels = connected_components(g);
    // Count component sizes and find the biggest label.
    let mut counts = std::collections::HashMap::new();
    for &l in &labels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    let (&best, _) = counts.iter().max_by_key(|(_, &c)| c).expect("non-empty");
    let keep: Vec<NodeId> = labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == best)
        .map(|(i, _)| NodeId::from_index(i))
        .collect();
    induced_subgraph(g, &keep)
}

/// Drops isolated nodes (in-degree + out-degree zero) and relabels
/// densely. Returns the compacted graph and the `new id → old id`
/// mapping. Text loaders size graphs to the maximum id seen, which can
/// leave gaps; this removes them.
pub fn compact(g: &Csr) -> (Csr, Vec<NodeId>) {
    let mut touched = vec![false; g.num_nodes()];
    for e in g.edges() {
        touched[e.src.index()] = true;
        touched[e.dst.index()] = true;
    }
    let keep: Vec<NodeId> = touched
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t)
        .map(|(i, _)| NodeId::from_index(i))
        .collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    fn two_islands() -> Csr {
        // Component A: 0-1-2 (sym). Component B: 3-4 (sym). Node 5 isolated.
        let mut b = CsrBuilder::new(6);
        b.symmetric(true);
        b.edge(0, 1).edge(1, 2).edge(3, 4);
        b.build()
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = two_islands();
        let (sub, map) = induced_subgraph(&g, &[NodeId::new(0), NodeId::new(1), NodeId::new(4)]);
        assert_eq!(sub.num_nodes(), 3);
        // Only 0<->1 survives (4's partner 3 is outside).
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map, vec![NodeId::new(0), NodeId::new(1), NodeId::new(4)]);
    }

    #[test]
    fn induced_subgraph_preserves_weights() {
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 42)
            .weighted_edge(1, 2, 7)
            .build();
        let (sub, _) = induced_subgraph(&g, &[NodeId::new(0), NodeId::new(1)]);
        assert!(sub.is_weighted());
        assert_eq!(sub.weight(0), 42);
    }

    #[test]
    fn largest_component_picks_the_triple() {
        let g = two_islands();
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 4);
        assert_eq!(map, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        // Connected after extraction.
        assert_eq!(crate::properties::num_components(&sub), 1);
    }

    #[test]
    fn compact_drops_isolated_nodes() {
        let g = two_islands();
        let (sub, map) = compact(&g);
        assert_eq!(sub.num_nodes(), 5, "node 5 dropped");
        assert_eq!(sub.num_edges(), g.num_edges());
        assert!(!map.contains(&NodeId::new(5)));
    }

    #[test]
    fn compact_on_dense_graph_is_identity_shaped() {
        let g = crate::generators::ring_lattice(10, 2);
        let (sub, map) = compact(&g);
        assert_eq!(sub, g);
        assert_eq!(map.len(), 10);
    }

    #[test]
    fn empty_graph_handled() {
        let g = CsrBuilder::new(0).build();
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_nodes(), 0);
        assert!(map.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_keep_rejected() {
        let g = two_islands();
        let _ = induced_subgraph(&g, &[NodeId::new(0), NodeId::new(0)]);
    }
}
