//! Scaled-down analogs of the paper's evaluation datasets (Table 3).
//!
//! The original experiments use six real-world power-law graphs from SNAP
//! and network-repository. Those multi-hundred-million-edge files are not
//! available offline, so this module generates *shape-matched analogs*:
//! RMAT graphs whose skew parameters and edge factors are chosen per
//! dataset so that the properties Tigr's mechanisms depend on — average
//! degree, degree-distribution skew, and the maximum-degree-to-size ratio —
//! track the originals at a configurable fraction of the size.
//!
//! Real data can still be used: load any of the graphs with [`crate::io`]
//! and hand it to the same APIs.

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::generators::{rmat, with_uniform_weights, RmatConfig};
use crate::stats::degree_stats;

/// Degree-skew family used to pick RMAT quadrant probabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkewClass {
    /// Social friendship graphs (Pokec, LiveJournal, Orkut): Graph500 skew.
    Social,
    /// Collaboration graphs (Hollywood): dense, moderately skewed.
    Collaboration,
    /// Follower graphs (Sina Weibo, Twitter): extremely heavy tails with
    /// hubs holding a few percent of all edges.
    Follower,
}

/// Static description of one paper dataset plus the recipe for its analog.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's tables.
    pub name: &'static str,
    /// Node count reported in Table 3.
    pub paper_nodes: u64,
    /// Edge count reported in Table 3.
    pub paper_edges: u64,
    /// Maximum out-degree reported in Table 3.
    pub paper_max_degree: u64,
    /// Diameter reported in Table 3.
    pub paper_diameter: u32,
    /// Physical-transformation degree bound used by the paper (Table 3).
    pub paper_k_udt: u32,
    /// Virtual-transformation degree bound used by the paper (Table 3).
    pub paper_k_virtual: u32,
    /// Skew family of the analog generator.
    pub skew: SkewClass,
}

impl DatasetSpec {
    /// Average degree implied by Table 3.
    pub fn paper_avg_degree(&self) -> f64 {
        self.paper_edges as f64 / self.paper_nodes as f64
    }

    /// RMAT configuration for an analog at `1/denominator` of the paper's
    /// node count (rounded to the nearest power of two).
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0`.
    pub fn rmat_config(&self, denominator: u64) -> RmatConfig {
        assert!(denominator > 0, "scale denominator must be positive");
        let target_nodes = (self.paper_nodes / denominator).max(1024);
        let scale = (target_nodes as f64).log2().round() as u32;
        let edge_factor = self.paper_avg_degree().round().max(1.0) as usize;
        match self.skew {
            SkewClass::Social => RmatConfig::graph500(scale, edge_factor),
            SkewClass::Collaboration => RmatConfig {
                a: 0.55,
                b: 0.2,
                c: 0.2,
                ..RmatConfig::graph500(scale, edge_factor)
            },
            SkewClass::Follower => RmatConfig::heavy_tail(scale, edge_factor),
        }
    }

    /// Generates the unweighted analog graph.
    pub fn generate(&self, denominator: u64, seed: u64) -> Csr {
        rmat(&self.rmat_config(denominator), seed ^ fxhash(self.name))
    }

    /// Generates the analog with uniform integer weights in `[1, 64]`
    /// (for SSSP/SSWP workloads).
    pub fn generate_weighted(&self, denominator: u64, seed: u64) -> Csr {
        let g = self.generate(denominator, seed);
        with_uniform_weights(&g, 1, 64, seed ^ fxhash(self.name) ^ 0x9E37_79B9)
    }

    /// Suggested degree bound for the *physical* (UDT) transformation on
    /// graph `g`, following the paper's §5 heuristic: the bound grows with
    /// the maximum degree (Table 3 uses 500 for d_max ≈ 8.8K, 1K for
    /// 11K–33K, 10K for ≥ 278K — roughly `d_max / 20`, floored at 16).
    pub fn suggested_udt_k(g: &Csr) -> u32 {
        ((g.max_out_degree() / 20).max(16)) as u32
    }

    /// The paper's virtual degree bound: `K = 10` across the board (§5).
    pub const VIRTUAL_K: u32 = 10;
}

/// Deterministic string hash used to decorrelate per-dataset seeds.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The six datasets of Table 3, in the paper's order.
pub const PAPER_DATASETS: [DatasetSpec; 6] = [
    DatasetSpec {
        name: "pokec",
        paper_nodes: 1_600_000,
        paper_edges: 31_000_000,
        paper_max_degree: 8_800,
        paper_diameter: 11,
        paper_k_udt: 500,
        paper_k_virtual: 10,
        skew: SkewClass::Social,
    },
    DatasetSpec {
        name: "livejournal",
        paper_nodes: 4_000_000,
        paper_edges: 69_000_000,
        paper_max_degree: 15_000,
        paper_diameter: 13,
        paper_k_udt: 1_000,
        paper_k_virtual: 10,
        skew: SkewClass::Social,
    },
    DatasetSpec {
        name: "hollywood",
        paper_nodes: 1_100_000,
        paper_edges: 114_000_000,
        paper_max_degree: 11_000,
        paper_diameter: 8,
        paper_k_udt: 1_000,
        paper_k_virtual: 10,
        skew: SkewClass::Collaboration,
    },
    DatasetSpec {
        name: "orkut",
        paper_nodes: 3_100_000,
        paper_edges: 234_000_000,
        paper_max_degree: 33_000,
        paper_diameter: 7,
        paper_k_udt: 1_000,
        paper_k_virtual: 10,
        skew: SkewClass::Social,
    },
    DatasetSpec {
        name: "sinaweibo",
        paper_nodes: 59_000_000,
        paper_edges: 523_000_000,
        paper_max_degree: 278_000,
        paper_diameter: 5,
        paper_k_udt: 10_000,
        paper_k_virtual: 10,
        skew: SkewClass::Follower,
    },
    DatasetSpec {
        name: "twitter2010",
        paper_nodes: 21_000_000,
        paper_edges: 530_000_000,
        paper_max_degree: 698_000,
        paper_diameter: 15,
        paper_k_udt: 10_000,
        paper_k_virtual: 10,
        skew: SkewClass::Follower,
    },
];

/// Looks up a dataset spec by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
    PAPER_DATASETS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

/// Default scale denominator used by the benchmark harness: analogs are
/// 1/256 of the paper's node counts, which keeps the largest analog
/// under three million edges. Use `TIGR_SCALE=64` for closer-to-paper
/// runs.
pub const DEFAULT_SCALE_DENOMINATOR: u64 = 256;

/// Verifies that an analog reproduces the qualitative §2.3 irregularity
/// profile: most nodes low-degree, a tiny fraction of hubs holding large
/// neighbor sets. Returns the measured profile for reporting.
pub fn irregularity_profile(g: &Csr) -> (f64, f64, usize) {
    let s = degree_stats(g);
    (s.frac_below_20, s.frac_at_least_1000, s.max_degree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_datasets_in_paper_order() {
        assert_eq!(PAPER_DATASETS.len(), 6);
        assert_eq!(PAPER_DATASETS[0].name, "pokec");
        assert_eq!(PAPER_DATASETS[5].name, "twitter2010");
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(by_name("LiveJournal").is_some());
        assert!(by_name("nosuch").is_none());
    }

    #[test]
    fn avg_degrees_match_table3() {
        let lj = by_name("livejournal").unwrap();
        assert!((lj.paper_avg_degree() - 17.25).abs() < 0.01);
        let holly = by_name("hollywood").unwrap();
        assert!(holly.paper_avg_degree() > 100.0, "hollywood is dense");
    }

    #[test]
    fn analog_tracks_paper_shape() {
        let spec = by_name("pokec").unwrap();
        let g = spec.generate(256, 1);
        let s = degree_stats(&g);
        // Edge factor ≈ paper average degree.
        assert!(
            (s.avg_degree - spec.paper_avg_degree()).abs() < 3.0,
            "avg degree {} vs paper {}",
            s.avg_degree,
            spec.paper_avg_degree()
        );
        // Analog is irregular: hubs well above the average.
        assert!(s.max_degree as f64 > 20.0 * s.avg_degree);
    }

    #[test]
    fn follower_analogs_are_more_skewed_than_social() {
        let social = by_name("pokec").unwrap().generate(256, 3);
        let follower = by_name("twitter2010").unwrap().generate(4096, 3);
        let cv_social = degree_stats(&social).coefficient_of_variation;
        let cv_follower = degree_stats(&follower).coefficient_of_variation;
        assert!(
            cv_follower > cv_social,
            "follower CV {cv_follower} should exceed social CV {cv_social}"
        );
    }

    #[test]
    fn generation_is_deterministic_and_name_decorrelated() {
        let a = by_name("pokec").unwrap().generate(512, 7);
        let b = by_name("pokec").unwrap().generate(512, 7);
        assert_eq!(a, b);
        // Same seed, different dataset -> different graph.
        let c = by_name("livejournal").unwrap().generate(512, 7);
        assert!(a.num_nodes() != c.num_nodes() || a != c);
    }

    #[test]
    fn weighted_analog_has_weights() {
        let g = by_name("pokec").unwrap().generate_weighted(1024, 5);
        assert!(g.is_weighted());
        for e in 0..g.num_edges().min(100) {
            assert!((1..=64).contains(&g.weight(e)));
        }
    }

    #[test]
    fn irregularity_profile_reports_section_2_3_shape() {
        let g = by_name("livejournal").unwrap().generate(256, 11);
        let (below20, hubs, dmax) = irregularity_profile(&g);
        assert!(below20 > 0.6, "most nodes are low-degree: {below20}");
        assert!(hubs < 0.02, "hubs are rare: {hubs}");
        assert!(dmax > 100);
    }

    #[test]
    fn suggested_udt_k_scales_with_max_degree() {
        let small = crate::generators::star_graph(100);
        let large = crate::generators::star_graph(100_000);
        assert!(DatasetSpec::suggested_udt_k(&large) > DatasetSpec::suggested_udt_k(&small));
        assert!(DatasetSpec::suggested_udt_k(&small) >= 16);
    }
}
