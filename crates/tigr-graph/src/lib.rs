//! Graph substrate for the Tigr reproduction.
//!
//! This crate provides everything the Tigr transformations and the
//! vertex-centric engine need to *hold and produce* graphs:
//!
//! * [`Csr`] — an immutable compressed-sparse-row graph with optional
//!   integer edge weights, the representation Tigr operates on (paper §4.1,
//!   Figure 10).
//! * [`CsrBuilder`] — incremental construction from edge lists with
//!   deduplication, sorting, and symmetrization options.
//! * [`io`] — loaders and writers for common interchange formats
//!   (whitespace edge lists, SNAP text files, MatrixMarket, and a fast
//!   binary CSR container).
//! * [`generators`] — synthetic workloads: RMAT and Barabási–Albert
//!   power-law graphs (stand-ins for the paper's social-network datasets),
//!   Erdős–Rényi, and regular lattices.
//! * [`datasets`] — presets that generate scaled-down analogs of the six
//!   graphs in the paper's Table 3.
//! * [`stats`] — degree-distribution statistics used throughout the
//!   evaluation (max degree, skew, the §2.3 irregularity profile,
//!   diameter estimation).
//! * [`properties`] — reference oracles (reachability, connected
//!   components, path recovery) used to validate the transformations.
//! * [`segment`] — immutable byte segments (owned or `mmap`ed) and the
//!   [`ArcSlice`] typed views that let a [`Csr`] borrow artifact bytes
//!   directly instead of decoding them.
//!
//! # Example
//!
//! ```
//! use tigr_graph::{CsrBuilder, NodeId};
//!
//! // A tiny directed triangle with an extra hub edge.
//! let graph = CsrBuilder::new(4)
//!     .edge(0, 1)
//!     .edge(1, 2)
//!     .edge(2, 0)
//!     .edge(0, 3)
//!     .build();
//!
//! assert_eq!(graph.num_nodes(), 4);
//! assert_eq!(graph.num_edges(), 4);
//! assert_eq!(graph.out_degree(NodeId::new(0)), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod csr;
mod edge;
mod error;

pub mod datasets;
pub mod generators;
pub mod io;
pub mod partition;
pub mod properties;
pub mod reverse;
pub mod segment;
pub mod stats;
pub mod subgraph;
pub mod view;

pub use builder::CsrBuilder;
pub use csr::Csr;
pub use edge::{Edge, NodeId, Weight, INFINITE_WEIGHT};
pub use error::GraphError;
pub use segment::{ArcSlice, Plain, Segment};
pub use view::GraphView;

/// Crate-wide result alias carrying a [`GraphError`].
pub type Result<T> = std::result::Result<T, GraphError>;
