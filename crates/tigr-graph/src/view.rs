//! A read-only adjacency abstraction over "some graph shape".
//!
//! The engine's prepared paths iterate a concrete [`Csr`] (or a virtual
//! overlay of one) directly — that stays untouched. [`GraphView`] exists
//! for the *mutation* layer: a delta overlay patches an immutable base
//! CSR with added/removed edges, and kernels that only need "for each
//! out-edge of `u`" can run over base+delta without the overlay copying
//! the base. The trait is deliberately minimal and object-safe so a view
//! can be handed across crate boundaries as `&dyn GraphView`.

use crate::csr::Csr;
use crate::edge::{NodeId, Weight};

/// Read-only out-adjacency access: the minimal shape a push-style
/// vertex-centric kernel needs from a graph.
///
/// Unweighted views must report a weight of `1` for every edge, matching
/// [`Csr::weight`].
pub trait GraphView {
    /// Number of nodes (out-edge endpoints are `< num_nodes()`).
    fn num_nodes(&self) -> usize;

    /// Number of directed edges visible through this view.
    fn num_edges(&self) -> usize;

    /// Whether edges carry explicit weights (`false` means all-1).
    fn is_weighted(&self) -> bool;

    /// Outgoing degree of `u` as seen through this view.
    fn out_degree(&self, u: NodeId) -> usize;

    /// Calls `f(dst, weight)` for every out-edge of `u`, in the view's
    /// canonical order.
    fn for_each_edge(&self, u: NodeId, f: &mut dyn FnMut(NodeId, Weight));
}

impl GraphView for Csr {
    fn num_nodes(&self) -> usize {
        Csr::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        Csr::num_edges(self)
    }

    fn is_weighted(&self) -> bool {
        Csr::is_weighted(self)
    }

    fn out_degree(&self, u: NodeId) -> usize {
        Csr::out_degree(self, u)
    }

    fn for_each_edge(&self, u: NodeId, f: &mut dyn FnMut(NodeId, Weight)) {
        let (start, end) = (self.edge_start(u), self.edge_end(u));
        match self.neighbor_weights(u) {
            Some(w) => {
                for (i, &dst) in self.col_idx()[start..end].iter().enumerate() {
                    f(dst, w[i]);
                }
            }
            None => {
                for &dst in &self.col_idx()[start..end] {
                    f(dst, 1);
                }
            }
        }
    }
}

/// Collects a view's full edge list as `(src, dst, weight)` triples in
/// view order — the bridge from any [`GraphView`] back to a
/// [`CsrBuilder`](crate::CsrBuilder) materialization.
pub fn collect_edges(view: &dyn GraphView) -> Vec<(u32, u32, Weight)> {
    let mut out = Vec::with_capacity(view.num_edges());
    for u in 0..view.num_nodes() as u32 {
        view.for_each_edge(NodeId::new(u), &mut |dst, w| {
            out.push((u, dst.raw(), w));
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;

    #[test]
    fn csr_view_matches_direct_access() {
        let g = CsrBuilder::new(4)
            .weighted_edge(0, 1, 4)
            .weighted_edge(0, 2, 7)
            .weighted_edge(1, 2, 1)
            .weighted_edge(3, 0, 9)
            .build();
        let v: &dyn GraphView = &g;
        assert_eq!(v.num_nodes(), 4);
        assert_eq!(v.num_edges(), 4);
        assert!(v.is_weighted());
        assert_eq!(v.out_degree(NodeId::new(0)), 2);
        assert_eq!(
            collect_edges(v),
            vec![(0, 1, 4), (0, 2, 7), (1, 2, 1), (3, 0, 9)]
        );
    }

    #[test]
    fn unweighted_view_reports_unit_weights() {
        let g = CsrBuilder::new(3).edge(0, 1).edge(1, 2).build();
        let v: &dyn GraphView = &g;
        assert!(!v.is_weighted());
        assert_eq!(collect_edges(v), vec![(0, 1, 1), (1, 2, 1)]);
    }
}
