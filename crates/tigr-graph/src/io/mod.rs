//! Graph loaders and writers.
//!
//! Supported formats:
//!
//! * [`edge_list`] — whitespace-separated `src dst [weight]` text, with
//!   `#`/`%` comments. This covers the SNAP text files the paper's
//!   datasets ship in.
//! * [`matrix_market`] — MatrixMarket coordinate format (1-indexed), used
//!   by network-repository (Sinaweibo, Twitter2010).
//! * [`dimacs`] — the DIMACS shortest-path `.gr` format of road-network
//!   benchmarks.
//! * [`binary`] — a fast binary CSR container (`TIGRCSR1`) for caching
//!   transformed graphs between runs.

pub mod binary;
pub mod dimacs;
pub mod edge_list;
pub mod matrix_market;

pub use binary::{read_binary, write_binary};
pub use dimacs::{load_dimacs, parse_dimacs, write_dimacs};
pub use edge_list::{load_edge_list, parse_edge_list, write_edge_list};
pub use matrix_market::{load_matrix_market, parse_matrix_market};
