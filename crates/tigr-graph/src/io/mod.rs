//! Graph loaders and writers.
//!
//! Supported formats:
//!
//! * [`edge_list`] — whitespace-separated `src dst [weight]` text, with
//!   `#`/`%` comments. This covers the SNAP text files the paper's
//!   datasets ship in.
//! * [`matrix_market`] — MatrixMarket coordinate format (1-indexed), used
//!   by network-repository (Sinaweibo, Twitter2010).
//! * [`dimacs`] — the DIMACS shortest-path `.gr` format of road-network
//!   benchmarks.
//! * [`binary`] — the `TIGRCSR2` sectioned artifact container (with
//!   read-only support for legacy `TIGRCSR1` files), used by the prepared
//!   graph cache.
//!
//! [`load_path`]/[`save_path`] pick the format from the file extension:
//! `.bin`/`.tigr` → binary, `.mtx` → MatrixMarket, `.gr` → DIMACS,
//! anything else → edge list.

pub mod binary;
pub mod dimacs;
pub mod edge_list;
pub mod matrix_market;

pub use binary::{
    decode_csr, encode_csr, find_section, fnv1a64, load_binary, parse_container,
    parse_section_table, read_binary, read_container, save_binary, write_binary, write_binary_v1,
    write_container, MappedContainer, Section, SectionRef, VerifyMode, SECTION_CSR,
    SECTION_OVERLAY, SECTION_REV_OVERLAY, SECTION_SPEC, SECTION_TRANSFORM, SECTION_TRANSPOSE,
};
pub use dimacs::{load_dimacs, parse_dimacs, write_dimacs};
pub use edge_list::{load_edge_list, parse_edge_list, write_edge_list};
pub use matrix_market::{load_matrix_market, parse_matrix_market, write_matrix_market};

use std::fs::File;
use std::path::Path;

use crate::csr::Csr;
use crate::Result;

fn extension(path: &Path) -> String {
    path.extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_lowercase()
}

/// Loads a graph from `path`, choosing the parser by file extension.
///
/// # Errors
///
/// Propagates I/O and parse failures from the selected format.
pub fn load_path(path: impl AsRef<Path>) -> Result<Csr> {
    let path = path.as_ref();
    match extension(path).as_str() {
        "bin" | "tigr" => load_binary(path),
        "mtx" => load_matrix_market(path),
        "gr" => load_dimacs(path),
        _ => load_edge_list(path),
    }
}

/// Saves a graph to `path`, choosing the writer by file extension.
///
/// # Errors
///
/// Returns I/O failures from the selected writer.
pub fn save_path(g: &Csr, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    match extension(path).as_str() {
        "bin" | "tigr" => save_binary(g, path),
        "mtx" => write_matrix_market(g, File::create(path)?),
        "gr" => write_dimacs(g, File::create(path)?),
        _ => write_edge_list(g, File::create(path)?),
    }
}
