//! Whitespace edge-list text format (SNAP-compatible).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::CsrBuilder;
use crate::csr::Csr;
use crate::edge::{Edge, NodeId};
use crate::error::GraphError;
use crate::Result;

/// Parses an edge list from any reader.
///
/// Each non-comment line holds `src dst` or `src dst weight`, separated by
/// arbitrary whitespace. Lines starting with `#`, `%`, or `//` and blank
/// lines are ignored — this accepts SNAP downloads unmodified. Node ids
/// may be sparse; the graph is sized to the largest id seen.
///
/// A mut reference to a reader can be passed (`&mut reader`) if the caller
/// wants to keep using the reader afterwards.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines and
/// [`GraphError::Io`] for read failures.
///
/// # Example
///
/// ```
/// use tigr_graph::io::parse_edge_list;
///
/// let text = "# a comment\n0 1\n1 2 7\n";
/// let g = parse_edge_list(text.as_bytes())?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert!(g.is_weighted());
/// # Ok::<(), tigr_graph::GraphError>(())
/// ```
pub fn parse_edge_list<R: Read>(reader: R) -> Result<Csr> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_node = 0u64;
    let mut weighted = false;

    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty()
            || trimmed.starts_with('#')
            || trimmed.starts_with('%')
            || trimmed.starts_with("//")
        {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let src = parse_node(it.next(), lineno + 1, "missing source")?;
        let dst = parse_node(it.next(), lineno + 1, "missing destination")?;
        let weight = match it.next() {
            Some(tok) => {
                weighted = true;
                tok.parse::<u32>().map_err(|_| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("invalid weight `{tok}`"),
                })?
            }
            None => 1,
        };
        max_node = max_node.max(src).max(dst);
        if src > u32::MAX as u64 || dst > u32::MAX as u64 {
            return Err(GraphError::NodeOutOfRange {
                node: src.max(dst),
                num_nodes: u32::MAX as usize,
            });
        }
        edges.push(Edge::new(
            NodeId::new(src as u32),
            NodeId::new(dst as u32),
            weight,
        ));
    }

    let num_nodes = if edges.is_empty() {
        0
    } else {
        max_node as usize + 1
    };
    let mut b = CsrBuilder::from_edges(num_nodes, edges);
    b.force_weighted(weighted);
    Ok(b.build())
}

fn parse_node(tok: Option<&str>, line: usize, what: &str) -> Result<u64> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: what.to_string(),
    })?;
    tok.parse::<u64>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid node id `{tok}`"),
    })
}

/// Loads an edge-list file from disk.
///
/// # Errors
///
/// Propagates I/O and parse failures; see [`parse_edge_list`].
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Csr> {
    parse_edge_list(File::open(path)?)
}

/// Writes `g` as an edge list. Weights are emitted only for weighted
/// graphs. A mut reference to a writer can be passed.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_edge_list<W: Write>(g: &Csr, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# tigr edge list: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    )?;
    for e in g.edges() {
        if g.is_weighted() {
            writeln!(out, "{} {} {}", e.src, e.dst, e.weight)?;
        } else {
            writeln!(out, "{} {}", e.src, e.dst)?;
        }
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_unweighted_with_comments() {
        let text = "# header\n% matrix-style comment\n// c++ style\n\n0 1\n1 2\n";
        let g = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_weighted());
    }

    #[test]
    fn parses_weighted_and_mixed_lines() {
        // A weight on any line makes the whole graph weighted (missing
        // weights default to 1).
        let g = parse_edge_list("0 1 9\n1 0\n".as_bytes()).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.weight(0), 9);
        assert_eq!(g.weight(1), 1);
    }

    #[test]
    fn sizes_to_largest_id() {
        let g = parse_edge_list("5 9\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = parse_edge_list("0 1\nx 2\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains('x'));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_destination() {
        let err = parse_edge_list("7\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_weight() {
        let err = parse_edge_list("0 1 heavy\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn round_trips_through_text() {
        let g = crate::CsrBuilder::new(3)
            .weighted_edge(0, 1, 4)
            .weighted_edge(2, 0, 8)
            .build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = parse_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trips_unweighted() {
        let g = crate::CsrBuilder::new(2).edge(0, 1).edge(1, 0).build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(parse_edge_list(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("tigr_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = crate::CsrBuilder::new(4).edge(0, 3).edge(3, 1).build();
        write_edge_list(&g, File::create(&path).unwrap()).unwrap();
        assert_eq!(load_edge_list(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }
}
