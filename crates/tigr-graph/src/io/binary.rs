//! Binary CSR containers: the legacy single-graph `TIGRCSR1` layout and
//! the versioned, sectioned `TIGRCSR2` artifact container.
//!
//! ## `TIGRCSR1` (legacy, read-only compatibility)
//!
//! ```text
//! [0..8)   magic  b"TIGRCSR1"
//! [8..9)   flags  bit 0: weighted
//! [9..17)  num_nodes  (u64)
//! [17..25) num_edges  (u64)
//! then     (num_nodes + 1) x u64  row_ptr
//! then     num_edges x u32        col_idx
//! then     num_edges x u32        weights (iff weighted)
//! ```
//!
//! ## `TIGRCSR2` (current)
//!
//! A generic container of typed sections, designed for the prepared-graph
//! artifact cache: one file can carry a CSR plus its derived views
//! (transpose, virtual overlay, physical transform map) so repeated runs
//! skip re-deriving them.
//!
//! ```text
//! [0..8)    magic  b"TIGRCSR2"
//! [8..12)   format version (u32, = 2)
//! [12..16)  section count  (u32)
//! then per section, 32 bytes:
//!   [+0..4)   section id (u32)
//!   [+4..8)   reserved (u32, 0)
//!   [+8..16)  payload offset from file start (u64, 8-byte aligned)
//!   [+16..24) payload length in bytes (u64)
//!   [+24..32) FNV-1a-64 checksum of the payload (u64)
//! then the payloads, each starting at its 8-byte-aligned offset
//! (zero padding in the gaps), in table order.
//! ```
//!
//! Payload offsets are 8-byte aligned so a future loader can map the file
//! and reinterpret integer arrays in place (zero-copy load). Checksums
//! are validated on every read; corruption surfaces as a typed
//! [`GraphError::Checksum`] rather than a wrong graph.
//!
//! Section ids are allocated here ([`SECTION_CSR`] and friends) so every
//! crate serializing into the container agrees on the namespace; payload
//! encodings for overlay/transform sections live next to their types in
//! `tigr-core`.
//!
//! Writing is deterministic: the same sections always produce
//! byte-identical files, which the artifact cache relies on.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut};

use crate::csr::Csr;
use crate::edge::NodeId;
use crate::error::GraphError;
use crate::segment::{ArcSlice, Segment};
use crate::Result;

const MAGIC_V1: &[u8; 8] = b"TIGRCSR1";
const MAGIC_V2: &[u8; 8] = b"TIGRCSR2";
const FLAG_WEIGHTED: u8 = 1;
const FORMAT_VERSION: u32 = 2;
const SECTION_ENTRY_LEN: usize = 32;
const HEADER_LEN: usize = 16;
/// Upper bound on the section count a reader will accept; a corrupted
/// header cannot make us allocate unboundedly.
const MAX_SECTIONS: u32 = 1024;

/// Section id: the primary CSR (always present).
pub const SECTION_CSR: u32 = 1;
/// Section id: the transpose CSR (pull/auto direction support).
pub const SECTION_TRANSPOSE: u32 = 2;
/// Section id: the forward virtual-node overlay (`Tigr-V`/`V+`).
pub const SECTION_OVERLAY: u32 = 3;
/// Section id: the overlay mirrored onto the transpose.
pub const SECTION_REV_OVERLAY: u32 = 4;
/// Section id: a physical split transform (embedded CSR + UDT split map).
pub const SECTION_TRANSFORM: u32 = 5;
/// Section id: the canonical prepare-spec echo used as a cache-key
/// collision guard.
pub const SECTION_SPEC: u32 = 6;

/// One typed section of a `TIGRCSR2` container.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section type tag (`SECTION_*`).
    pub id: u32,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

impl Section {
    /// Convenience constructor.
    pub fn new(id: u32, payload: Vec<u8>) -> Self {
        Section { id, payload }
    }
}

/// FNV-1a 64-bit hash — the per-section checksum and the cache-key hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn align8(x: usize) -> usize {
    x.div_ceil(8) * 8
}

/// Checked `u64 → usize` conversion for values read from container
/// headers; a value too large for the platform surfaces as a typed
/// [`GraphError::Overflow`] instead of silently truncating.
fn to_usize(value: u64, what: &'static str) -> Result<usize> {
    usize::try_from(value).map_err(|_| GraphError::Overflow { value, what })
}

/// Writes `sections` as a `TIGRCSR2` container.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure and
/// [`GraphError::InvalidFormat`] when more than [`MAX_SECTIONS`] sections
/// are supplied.
pub fn write_container<W: Write>(sections: &[Section], writer: W) -> Result<()> {
    if sections.len() as u32 > MAX_SECTIONS {
        return Err(GraphError::InvalidFormat(format!(
            "too many sections: {} > {MAX_SECTIONS}",
            sections.len()
        )));
    }
    let mut out = BufWriter::new(writer);
    let table_end = HEADER_LEN + SECTION_ENTRY_LEN * sections.len();

    let mut header = Vec::with_capacity(table_end);
    header.put_slice(MAGIC_V2);
    header.put_u32_le(FORMAT_VERSION);
    header.put_u32_le(sections.len() as u32);
    let mut offset = align8(table_end);
    for s in sections {
        header.put_u32_le(s.id);
        header.put_u32_le(0);
        header.put_u64_le(offset as u64);
        header.put_u64_le(s.payload.len() as u64);
        header.put_u64_le(fnv1a64(&s.payload));
        offset = align8(offset + s.payload.len());
    }
    out.write_all(&header)?;

    let mut cursor = table_end;
    for s in sections {
        let start = align8(cursor);
        out.write_all(&vec![0u8; start - cursor])?;
        out.write_all(&s.payload)?;
        cursor = start + s.payload.len();
    }
    out.flush()?;
    Ok(())
}

/// Reads a `TIGRCSR2` container, validating the header, the section
/// table, and every payload checksum.
///
/// # Errors
///
/// Returns [`GraphError::InvalidFormat`] for bad magic/version/table
/// geometry, [`GraphError::Checksum`] for a payload whose checksum does
/// not match, and [`GraphError::Io`] on read failure.
pub fn read_container<R: Read>(reader: R) -> Result<Vec<Section>> {
    let mut input = BufReader::new(reader);
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    parse_container(&bytes)
}

/// [`read_container`] over an in-memory byte slice.
///
/// # Errors
///
/// See [`read_container`].
pub fn parse_container(bytes: &[u8]) -> Result<Vec<Section>> {
    let refs = parse_section_table(bytes)?;
    let mut sections = Vec::with_capacity(refs.len());
    for r in refs {
        let payload = bytes[r.offset..r.offset + r.len].to_vec();
        if fnv1a64(&payload) != r.checksum {
            return Err(GraphError::Checksum { section: r.id });
        }
        sections.push(Section { id: r.id, payload });
    }
    Ok(sections)
}

/// A validated section-table entry: where a payload lives inside the
/// container, without the payload itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionRef {
    /// Section type tag (`SECTION_*`).
    pub id: u32,
    /// Payload start, in bytes from the container start (8-aligned).
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// Declared FNV-1a-64 checksum of the payload.
    pub checksum: u64,
}

/// Parses and fully validates a `TIGRCSR2` header and section table
/// (magic, version, count bound, alignment, in-bounds ranges) without
/// touching — or hashing — any payload bytes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidFormat`] for bad magic/version/table
/// geometry and [`GraphError::Overflow`] for offsets that do not fit
/// the platform's `usize`.
pub fn parse_section_table(bytes: &[u8]) -> Result<Vec<SectionRef>> {
    if bytes.len() < HEADER_LEN {
        return Err(GraphError::InvalidFormat(
            "truncated container header".into(),
        ));
    }
    let mut cur = bytes;
    let mut magic = [0u8; 8];
    cur.copy_to_slice(&mut magic);
    if &magic != MAGIC_V2 {
        return Err(GraphError::InvalidFormat(format!(
            "bad magic {magic:?}, expected TIGRCSR2"
        )));
    }
    let version = cur.get_u32_le();
    if version != FORMAT_VERSION {
        return Err(GraphError::InvalidFormat(format!(
            "unsupported container version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let count = cur.get_u32_le();
    if count > MAX_SECTIONS {
        return Err(GraphError::InvalidFormat(format!(
            "section count {count} exceeds limit {MAX_SECTIONS}"
        )));
    }
    let table_end = HEADER_LEN + SECTION_ENTRY_LEN * count as usize;
    if bytes.len() < table_end {
        return Err(GraphError::InvalidFormat("truncated section table".into()));
    }

    let mut refs = Vec::with_capacity(count as usize);
    for i in 0..count {
        let id = cur.get_u32_le();
        let _reserved = cur.get_u32_le();
        let offset = cur.get_u64_le();
        let len = cur.get_u64_le();
        let checksum = cur.get_u64_le();
        if !offset.is_multiple_of(8) {
            return Err(GraphError::InvalidFormat(format!(
                "section {i} payload offset {offset} is not 8-byte aligned"
            )));
        }
        // Wide arithmetic: a corrupted table must fail the bounds check,
        // not overflow past it.
        let end = offset as u128 + len as u128;
        let offset = to_usize(offset, "section offset")?;
        if offset < table_end || end > bytes.len() as u128 {
            return Err(GraphError::InvalidFormat(format!(
                "section {i} range [{offset}, {end}) escapes container of {} bytes",
                bytes.len()
            )));
        }
        refs.push(SectionRef {
            id,
            offset,
            // In bounds per the check above, so it fits a usize.
            len: len as usize,
            checksum,
        });
    }
    Ok(refs)
}

/// How much of a container's payload bytes an open validates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyMode {
    /// Hash every payload against its table checksum and fully validate
    /// decoded structures — corruption surfaces at open time.
    #[default]
    Eager,
    /// Validate only the header and section table; skip payload hashing
    /// and the `O(n + m)` structural scans for instant opens of trusted
    /// artifacts. Reads stay bounds-checked, so a corrupt artifact can
    /// at worst panic or mis-answer — never touch invalid memory.
    Lazy,
}

impl VerifyMode {
    /// Parses `eager` / `lazy` (as accepted by `--verify`).
    pub fn parse(s: &str) -> Option<VerifyMode> {
        match s {
            "eager" => Some(VerifyMode::Eager),
            "lazy" => Some(VerifyMode::Lazy),
            _ => None,
        }
    }

    /// The flag spelling (`eager` / `lazy`).
    pub fn label(self) -> &'static str {
        match self {
            VerifyMode::Eager => "eager",
            VerifyMode::Lazy => "lazy",
        }
    }
}

/// A `TIGRCSR2` container opened over a shared [`Segment`] — typically
/// a memory-mapped artifact file — from which typed views borrow
/// payload bytes without copying.
#[derive(Debug)]
pub struct MappedContainer {
    segment: Arc<Segment>,
    sections: Vec<SectionRef>,
    verify: VerifyMode,
}

impl MappedContainer {
    /// Memory-maps the container at `path` (owned read fallback where
    /// the platform lacks `mmap`) and validates its section table. With
    /// [`VerifyMode::Eager`] every payload is hashed against its table
    /// checksum; [`VerifyMode::Lazy`] skips payload hashing entirely.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Io`] on open/map failure, plus everything
    /// [`parse_section_table`] and the eager checksum pass can raise.
    pub fn open(path: impl AsRef<Path>, verify: VerifyMode) -> Result<MappedContainer> {
        let mut file = File::open(path)?;
        let segment = Segment::map_file(&mut file)?;
        MappedContainer::from_segment(Arc::new(segment), verify)
    }

    /// Opens a container over an existing segment.
    ///
    /// # Errors
    ///
    /// See [`MappedContainer::open`].
    pub fn from_segment(segment: Arc<Segment>, verify: VerifyMode) -> Result<MappedContainer> {
        let sections = parse_section_table(segment.as_bytes())?;
        if verify == VerifyMode::Eager {
            let bytes = segment.as_bytes();
            for r in &sections {
                if fnv1a64(&bytes[r.offset..r.offset + r.len]) != r.checksum {
                    return Err(GraphError::Checksum { section: r.id });
                }
            }
        }
        Ok(MappedContainer {
            segment,
            sections,
            verify,
        })
    }

    /// The backing segment.
    pub fn segment(&self) -> &Arc<Segment> {
        &self.segment
    }

    /// `true` when the backing bytes are memory-mapped (zero-copy views
    /// possible) rather than heap-resident.
    pub fn is_mapped(&self) -> bool {
        self.segment.is_mapped()
    }

    /// The verification mode the container was opened with.
    pub fn verify_mode(&self) -> VerifyMode {
        self.verify
    }

    /// The validated section table.
    pub fn sections(&self) -> &[SectionRef] {
        &self.sections
    }

    /// The first section with the given id, if present.
    pub fn section(&self, id: u32) -> Option<SectionRef> {
        self.sections.iter().find(|s| s.id == id).copied()
    }

    /// The payload bytes of the first section with the given id.
    pub fn section_bytes(&self, id: u32) -> Option<&[u8]> {
        self.section(id)
            .map(|r| &self.segment.as_bytes()[r.offset..r.offset + r.len])
    }

    /// Decodes the CSR-shaped section `id` into a [`Csr`] whose arrays
    /// borrow this container's segment where the platform allows it
    /// (64-bit little-endian; elsewhere, or when alignment defeats the
    /// reinterpret, the owned decoder runs instead). Returns `None`
    /// when the section is absent.
    ///
    /// Under [`VerifyMode::Eager`] the borrowed arrays get the same
    /// structural validation as the owned decoder; under
    /// [`VerifyMode::Lazy`] the scan is skipped.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidFormat`] for malformed payloads and
    /// [`GraphError::Overflow`] for counts beyond the platform.
    pub fn csr(&self, id: u32) -> Result<Option<Csr>> {
        let Some(r) = self.section(id) else {
            return Ok(None);
        };
        let bytes = &self.segment.as_bytes()[r.offset..r.offset + r.len];
        let mut cur = bytes;
        if cur.len() < 24 {
            return Err(GraphError::InvalidFormat("truncated CSR section".into()));
        }
        let flags = cur.get_u64_le();
        let weighted = flags & FLAG_WEIGHTED as u64 != 0;
        let n = to_usize(cur.get_u64_le(), "node count")?;
        let m = to_usize(cur.get_u64_le(), "edge count")?;
        let need = (n as u128 + 1) * 8 + (m as u128) * 4 + if weighted { m as u128 * 4 } else { 0 };
        if cur.remaining() as u128 != need {
            return Err(GraphError::InvalidFormat(format!(
                "CSR payload size mismatch: need {need} bytes, have {}",
                cur.remaining()
            )));
        }
        if n == 0 && m > 0 {
            return Err(GraphError::InvalidFormat(
                "edges present in zero-node graph".into(),
            ));
        }
        #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
        {
            // On-disk u64/u32 little-endian arrays are byte-identical to
            // in-memory usize/NodeId arrays here, so borrow them in
            // place. `from_segment` re-checks alignment and bounds; an
            // owned (non-page-aligned) backing can legitimately fail the
            // alignment check, in which case the copying decoder below
            // takes over.
            let row_off = r.offset + 24;
            let col_off = row_off + (n + 1) * 8;
            let w_off = col_off + m * 4;
            let seg = || Arc::clone(&self.segment);
            let views = (
                ArcSlice::<usize>::from_segment(seg(), row_off, n + 1),
                ArcSlice::<NodeId>::from_segment(seg(), col_off, m),
                weighted.then(|| ArcSlice::<u32>::from_segment(seg(), w_off, m)),
            );
            if let (Some(row_ptr), Some(col_idx), weights) = views {
                let weights = match weights {
                    Some(Some(w)) => Some(w),
                    Some(None) => None, // alignment failure: fall through
                    None => None,
                };
                if !weighted || weights.is_some() {
                    if self.verify == VerifyMode::Eager {
                        validate_csr_views(&row_ptr, &col_idx, n, m)?;
                    }
                    return Ok(Some(Csr::from_views_unchecked(row_ptr, col_idx, weights)));
                }
            }
        }
        decode_csr(bytes).map(Some)
    }
}

/// The owned decoder's structural checks, applied to borrowed views:
/// monotone `row_ptr` anchored at `0` and `m`, every target in range.
fn validate_csr_views(row_ptr: &[usize], col_idx: &[NodeId], n: usize, m: usize) -> Result<()> {
    if row_ptr.first() != Some(&0)
        || row_ptr.last() != Some(&m)
        || row_ptr.windows(2).any(|w| w[0] > w[1])
        || col_idx.iter().any(|c| c.index() >= n.max(1))
    {
        return Err(GraphError::InvalidFormat(
            "inconsistent CSR arrays in binary container".into(),
        ));
    }
    Ok(())
}

/// Returns the first section with the given id, if present.
pub fn find_section(sections: &[Section], id: u32) -> Option<&Section> {
    sections.iter().find(|s| s.id == id)
}

/// Encodes `g` as a CSR section payload (flags, counts, `row_ptr`,
/// `col_idx`, optional weights — all little-endian).
pub fn encode_csr(g: &Csr) -> Vec<u8> {
    let n = g.num_nodes();
    let m = g.num_edges();
    let mut buf = Vec::with_capacity(24 + (n + 1) * 8 + m * 8);
    buf.put_u64_le(if g.is_weighted() {
        FLAG_WEIGHTED as u64
    } else {
        0
    });
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    for &p in g.row_ptr() {
        buf.put_u64_le(p as u64);
    }
    for &c in g.col_idx() {
        buf.put_u32_le(c.raw());
    }
    if let Some(w) = g.weights() {
        for &x in w {
            buf.put_u32_le(x);
        }
    }
    buf
}

/// Decodes a CSR section payload, fully validating it before
/// construction: the payload length must match the declared counts
/// exactly, `row_ptr` must be monotone with `row_ptr[0] == 0` and
/// `row_ptr[n] == num_edges`, and every `col_idx` entry must be in
/// range.
///
/// # Errors
///
/// Returns [`GraphError::InvalidFormat`] on any violation — untrusted
/// input never panics or indexes out of bounds.
pub fn decode_csr(payload: &[u8]) -> Result<Csr> {
    let mut cur = payload;
    if cur.len() < 24 {
        return Err(GraphError::InvalidFormat("truncated CSR section".into()));
    }
    let flags = cur.get_u64_le();
    let weighted = flags & FLAG_WEIGHTED as u64 != 0;
    let n = to_usize(cur.get_u64_le(), "node count")?;
    let m = to_usize(cur.get_u64_le(), "edge count")?;
    read_csr_arrays(cur, n, m, weighted, true)
}

/// Shared tail of the v1 and v2 CSR decoders: validates the byte budget
/// against the declared counts (exactly for v2 payloads, at-least for
/// the legacy stream), then the arrays themselves.
fn read_csr_arrays(mut cur: &[u8], n: usize, m: usize, weighted: bool, exact: bool) -> Result<Csr> {
    // Wide arithmetic: corrupted headers can carry absurd counts, and the
    // size check must reject them rather than overflow.
    let need = (n as u128 + 1) * 8 + (m as u128) * 4 + if weighted { m as u128 * 4 } else { 0 };
    if (cur.remaining() as u128) < need || (exact && cur.remaining() as u128 != need) {
        return Err(GraphError::InvalidFormat(format!(
            "CSR payload size mismatch: need {need} bytes, have {}",
            cur.remaining()
        )));
    }

    let mut row_ptr = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        row_ptr.push(to_usize(cur.get_u64_le(), "row offset")?);
    }
    let mut col_idx = Vec::with_capacity(m);
    for _ in 0..m {
        col_idx.push(NodeId::new(cur.get_u32_le()));
    }
    let weights = if weighted {
        let mut w = Vec::with_capacity(m);
        for _ in 0..m {
            w.push(cur.get_u32_le());
        }
        Some(w)
    } else {
        None
    };

    // Re-validate through explicit checks rather than the panicking
    // constructor: untrusted input gets format errors.
    if row_ptr.first() != Some(&0)
        || row_ptr.last() != Some(&m)
        || row_ptr.windows(2).any(|w| w[0] > w[1])
        || col_idx.iter().any(|c| c.index() >= n.max(1))
    {
        return Err(GraphError::InvalidFormat(
            "inconsistent CSR arrays in binary container".into(),
        ));
    }
    if n == 0 && m > 0 {
        return Err(GraphError::InvalidFormat(
            "edges present in zero-node graph".into(),
        ));
    }
    Ok(Csr::from_parts(row_ptr, col_idx, weights))
}

/// Serializes `g` into the current (`TIGRCSR2`) binary format as a
/// single-CSR container.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_binary<W: Write>(g: &Csr, writer: W) -> Result<()> {
    write_container(&[Section::new(SECTION_CSR, encode_csr(g))], writer)
}

/// Serializes `g` into the legacy `TIGRCSR1` layout. Kept for
/// compatibility fixtures; new files should use [`write_binary`].
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_binary_v1<W: Write>(g: &Csr, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    let mut header = Vec::with_capacity(25);
    header.put_slice(MAGIC_V1);
    header.put_u8(if g.is_weighted() { FLAG_WEIGHTED } else { 0 });
    header.put_u64_le(g.num_nodes() as u64);
    header.put_u64_le(g.num_edges() as u64);
    out.write_all(&header)?;

    let mut buf = Vec::with_capacity(8 * 1024);
    for &p in g.row_ptr() {
        buf.put_u64_le(p as u64);
        flush_if_full(&mut out, &mut buf)?;
    }
    for &c in g.col_idx() {
        buf.put_u32_le(c.raw());
        flush_if_full(&mut out, &mut buf)?;
    }
    if let Some(w) = g.weights() {
        for &x in w {
            buf.put_u32_le(x);
            flush_if_full(&mut out, &mut buf)?;
        }
    }
    out.write_all(&buf)?;
    out.flush()?;
    Ok(())
}

fn flush_if_full<W: Write>(out: &mut BufWriter<W>, buf: &mut Vec<u8>) -> Result<()> {
    if buf.len() >= 8 * 1024 {
        out.write_all(buf)?;
        buf.clear();
    }
    Ok(())
}

/// Deserializes a graph from either binary format, auto-detecting the
/// magic: legacy `TIGRCSR1` files keep loading (and upgrade to v2 the
/// next time they are saved), `TIGRCSR2` containers yield their CSR
/// section.
///
/// # Errors
///
/// Returns [`GraphError::InvalidFormat`] for bad magic, truncated
/// payloads, or inconsistent arrays, [`GraphError::Checksum`] for a
/// corrupt v2 section, and [`GraphError::Io`] on read failure.
pub fn read_binary<R: Read>(reader: R) -> Result<Csr> {
    let mut input = BufReader::new(reader);
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    if bytes.len() >= 8 && &bytes[..8] == MAGIC_V2 {
        let sections = parse_container(&bytes)?;
        let csr = find_section(&sections, SECTION_CSR)
            .ok_or_else(|| GraphError::InvalidFormat("container has no CSR section".into()))?;
        return decode_csr(&csr.payload);
    }
    read_binary_v1(&bytes)
}

/// The legacy `TIGRCSR1` reader over raw bytes.
fn read_binary_v1(bytes: &[u8]) -> Result<Csr> {
    let mut cur = bytes;
    if cur.len() < 25 {
        return Err(GraphError::InvalidFormat("truncated header".into()));
    }
    let mut magic = [0u8; 8];
    cur.copy_to_slice(&mut magic);
    if &magic != MAGIC_V1 {
        return Err(GraphError::InvalidFormat(format!(
            "bad magic {magic:?}, expected TIGRCSR1 or TIGRCSR2"
        )));
    }
    let flags = cur.get_u8();
    let weighted = flags & FLAG_WEIGHTED != 0;
    let n = to_usize(cur.get_u64_le(), "node count")?;
    let m = to_usize(cur.get_u64_le(), "edge count")?;
    read_csr_arrays(cur, n, m, weighted, false)
}

/// Writes `g` to `path` in binary form (v2 container).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on failure.
pub fn save_binary(g: &Csr, path: impl AsRef<Path>) -> Result<()> {
    write_binary(g, File::create(path)?)
}

/// Reads a graph from a binary file at `path` (either format version).
///
/// # Errors
///
/// See [`read_binary`].
pub fn load_binary(path: impl AsRef<Path>) -> Result<Csr> {
    read_binary(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    fn sample(weighted: bool) -> Csr {
        let mut b = CsrBuilder::new(5);
        if weighted {
            b.weighted_edge(0, 1, 3)
                .weighted_edge(0, 4, 9)
                .weighted_edge(3, 2, 1);
        } else {
            b.edge(0, 1).edge(0, 4).edge(3, 2);
        }
        b.build()
    }

    #[test]
    fn round_trips_weighted() {
        let g = sample(true);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn round_trips_unweighted() {
        let g = sample(false);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn round_trips_empty_graph() {
        let g = CsrBuilder::new(0).build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn legacy_v1_round_trips_through_autodetect() {
        for weighted in [false, true] {
            let g = sample(weighted);
            let mut buf = Vec::new();
            write_binary_v1(&g, &mut buf).unwrap();
            assert_eq!(&buf[..8], MAGIC_V1);
            assert_eq!(
                read_binary(buf.as_slice()).unwrap(),
                g,
                "weighted={weighted}"
            );
        }
    }

    #[test]
    fn v2_writes_are_deterministic() {
        let g = sample(true);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        write_binary(&g, &mut a).unwrap();
        write_binary(&g, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(&a[..8], MAGIC_V2);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&sample(false), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_binary(buf.as_slice()).unwrap_err(),
            GraphError::InvalidFormat(_)
        ));
    }

    #[test]
    fn rejects_truncation() {
        let g = sample(true);
        let mut v2 = Vec::new();
        write_binary(&g, &mut v2).unwrap();
        v2.truncate(v2.len() - 3);
        assert!(read_binary(v2.as_slice()).is_err());

        let mut v1 = Vec::new();
        write_binary_v1(&g, &mut v1).unwrap();
        v1.truncate(v1.len() - 3);
        assert!(read_binary(v1.as_slice()).is_err());
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let mut buf = Vec::new();
        write_binary(&sample(false), &mut buf).unwrap();
        // Flip a byte in the payload region (after the 16 + 32 byte table).
        let idx = buf.len() - 1;
        buf[idx] ^= 0xFF;
        assert!(matches!(
            read_binary(buf.as_slice()).unwrap_err(),
            GraphError::Checksum {
                section: SECTION_CSR
            }
        ));
    }

    #[test]
    fn rejects_corrupted_row_ptr_in_v1() {
        let mut buf = Vec::new();
        write_binary_v1(&sample(false), &mut buf).unwrap();
        // Corrupt the first row_ptr entry (offset 25 in the v1 layout).
        buf[25] = 0xFF;
        assert!(matches!(
            read_binary(buf.as_slice()).unwrap_err(),
            GraphError::InvalidFormat(_)
        ));
    }

    #[test]
    fn decode_csr_rejects_inconsistent_arrays() {
        let g = sample(false);
        let mut payload = encode_csr(&g);
        // row_ptr[0] starts at byte 24; make it non-zero.
        payload[24] = 7;
        assert!(matches!(
            decode_csr(&payload).unwrap_err(),
            GraphError::InvalidFormat(_)
        ));
        // Oversized declared edge count must be caught by the byte budget.
        let mut payload = encode_csr(&g);
        payload[16] = 0xFF;
        assert!(decode_csr(&payload).is_err());
    }

    #[test]
    fn container_round_trips_multiple_sections() {
        let sections = vec![
            Section::new(SECTION_CSR, encode_csr(&sample(true))),
            Section::new(SECTION_SPEC, b"spec echo".to_vec()),
            Section::new(SECTION_TRANSPOSE, vec![1, 2, 3, 4, 5]),
        ];
        let mut buf = Vec::new();
        write_container(&sections, &mut buf).unwrap();
        let back = read_container(buf.as_slice()).unwrap();
        assert_eq!(back, sections);
        // Every payload sits at an 8-byte-aligned offset.
        let mut cur = &buf[8..];
        let _version = cur.get_u32_le();
        let count = cur.get_u32_le();
        for _ in 0..count {
            let _id = cur.get_u32_le();
            let _r = cur.get_u32_le();
            let offset = cur.get_u64_le();
            assert_eq!(offset % 8, 0);
            let _len = cur.get_u64_le();
            let _sum = cur.get_u64_le();
        }
    }

    #[test]
    fn container_rejects_escaping_section_range() {
        let mut buf = Vec::new();
        write_container(&[Section::new(SECTION_SPEC, vec![9; 16])], &mut buf).unwrap();
        // Inflate the declared length past the end of the file.
        buf[16 + 16] = 0xFF;
        assert!(matches!(
            read_container(buf.as_slice()).unwrap_err(),
            GraphError::InvalidFormat(_)
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("tigr_graph_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = sample(true);
        save_binary(&g, &path).unwrap();
        assert_eq!(load_binary(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_open_matches_owned_decode() {
        let dir = std::env::temp_dir().join("tigr_graph_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, weighted) in [("map_w.bin", true), ("map_u.bin", false)] {
            let path = dir.join(name);
            let g = sample(weighted);
            save_binary(&g, &path).unwrap();
            for verify in [VerifyMode::Eager, VerifyMode::Lazy] {
                let c = MappedContainer::open(&path, verify).unwrap();
                let mapped = c.csr(SECTION_CSR).unwrap().unwrap();
                assert_eq!(mapped, g, "verify={verify:?}");
                if cfg!(all(
                    unix,
                    target_endian = "little",
                    target_pointer_width = "64"
                )) {
                    assert!(c.is_mapped());
                    assert!(mapped.is_mapped());
                    assert_eq!(mapped.heap_bytes(), 0);
                    assert!(mapped.mapped_bytes() > 0);
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn mapped_open_missing_section_is_none() {
        let mut buf = Vec::new();
        write_container(&[Section::new(SECTION_SPEC, b"spec".to_vec())], &mut buf).unwrap();
        let c =
            MappedContainer::from_segment(Arc::new(Segment::from(buf)), VerifyMode::Eager).unwrap();
        assert!(c.csr(SECTION_CSR).unwrap().is_none());
        assert_eq!(c.section_bytes(SECTION_SPEC).unwrap(), b"spec");
    }

    #[test]
    fn eager_mapped_open_catches_corruption_lazy_defers_it() {
        let mut buf = Vec::new();
        write_binary(&sample(true), &mut buf).unwrap();
        let idx = buf.len() - 1;
        buf[idx] ^= 0xFF;
        let seg = Arc::new(Segment::from(buf));
        assert!(matches!(
            MappedContainer::from_segment(Arc::clone(&seg), VerifyMode::Eager).unwrap_err(),
            GraphError::Checksum {
                section: SECTION_CSR
            }
        ));
        // Lazy skips hashing: the open succeeds and reads stay
        // bounds-checked; the corruption shows up as wrong data, which
        // is exactly the documented trade.
        let c = MappedContainer::from_segment(seg, VerifyMode::Lazy).unwrap();
        assert!(c.csr(SECTION_CSR).is_ok());
    }

    #[test]
    fn mapped_open_rejects_bad_tables() {
        let mut buf = Vec::new();
        write_binary(&sample(false), &mut buf).unwrap();
        // Misalign the payload offset.
        let mut bad = buf.clone();
        bad[16 + 8] = bad[16 + 8].wrapping_add(1);
        assert!(matches!(
            MappedContainer::from_segment(Arc::new(Segment::from(bad)), VerifyMode::Lazy)
                .unwrap_err(),
            GraphError::InvalidFormat(_)
        ));
        // Truncate mid-payload: the section range escapes the file.
        let mut short = buf.clone();
        short.truncate(short.len() - 4);
        assert!(
            MappedContainer::from_segment(Arc::new(Segment::from(short)), VerifyMode::Lazy)
                .is_err()
        );
    }

    #[test]
    fn oversized_counts_surface_as_typed_overflow() {
        // A v2 CSR payload claiming u64::MAX nodes: on 64-bit hosts the
        // byte budget rejects it; the checked conversion is what guards
        // 32-bit hosts. Either way the error is typed, never a panic.
        let g = sample(false);
        let mut payload = encode_csr(&g);
        payload[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_csr(&payload).unwrap_err();
        assert!(matches!(
            err,
            GraphError::InvalidFormat(_) | GraphError::Overflow { .. }
        ));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn binary_is_denser_than_text() {
        let g = crate::generators::ring_lattice(200, 4);
        let mut bin = Vec::new();
        write_binary(&g, &mut bin).unwrap();
        let mut txt = Vec::new();
        crate::io::write_edge_list(&g, &mut txt).unwrap();
        // Not always true in general, but true for this shape; documents
        // the purpose of the binary cache.
        assert!(bin.len() < txt.len() * 4);
    }
}
