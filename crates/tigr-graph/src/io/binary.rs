//! Binary CSR container (`TIGRCSR1`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0..8)   magic  b"TIGRCSR1"
//! [8..9)   flags  bit 0: weighted
//! [9..17)  num_nodes  (u64)
//! [17..25) num_edges  (u64)
//! then     (num_nodes + 1) x u64  row_ptr
//! then     num_edges x u32        col_idx
//! then     num_edges x u32        weights (iff weighted)
//! ```
//!
//! Used to cache generated or transformed graphs between benchmark runs;
//! loading is an order of magnitude faster than re-parsing text.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};

use crate::csr::Csr;
use crate::edge::NodeId;
use crate::error::GraphError;
use crate::Result;

const MAGIC: &[u8; 8] = b"TIGRCSR1";
const FLAG_WEIGHTED: u8 = 1;

/// Serializes `g` into the `TIGRCSR1` binary format.
///
/// A mut reference to a writer can be passed (`&mut w`).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_binary<W: Write>(g: &Csr, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    let mut header = Vec::with_capacity(25);
    header.put_slice(MAGIC);
    header.put_u8(if g.is_weighted() { FLAG_WEIGHTED } else { 0 });
    header.put_u64_le(g.num_nodes() as u64);
    header.put_u64_le(g.num_edges() as u64);
    out.write_all(&header)?;

    let mut buf = Vec::with_capacity(8 * 1024);
    for &p in g.row_ptr() {
        buf.put_u64_le(p as u64);
        flush_if_full(&mut out, &mut buf)?;
    }
    for &c in g.col_idx() {
        buf.put_u32_le(c.raw());
        flush_if_full(&mut out, &mut buf)?;
    }
    if let Some(w) = g.weights() {
        for &x in w {
            buf.put_u32_le(x);
            flush_if_full(&mut out, &mut buf)?;
        }
    }
    out.write_all(&buf)?;
    out.flush()?;
    Ok(())
}

fn flush_if_full<W: Write>(out: &mut BufWriter<W>, buf: &mut Vec<u8>) -> Result<()> {
    if buf.len() >= 8 * 1024 {
        out.write_all(buf)?;
        buf.clear();
    }
    Ok(())
}

/// Deserializes a graph from the `TIGRCSR1` binary format.
///
/// # Errors
///
/// Returns [`GraphError::InvalidFormat`] for bad magic, truncated
/// payloads, or inconsistent arrays, and [`GraphError::Io`] on read
/// failure.
pub fn read_binary<R: Read>(reader: R) -> Result<Csr> {
    let mut input = BufReader::new(reader);
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    let mut cur = bytes.as_slice();

    if cur.len() < 25 {
        return Err(GraphError::InvalidFormat("truncated header".into()));
    }
    let mut magic = [0u8; 8];
    cur.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::InvalidFormat(format!(
            "bad magic {magic:?}, expected TIGRCSR1"
        )));
    }
    let flags = cur.get_u8();
    let weighted = flags & FLAG_WEIGHTED != 0;
    let n = cur.get_u64_le() as usize;
    let m = cur.get_u64_le() as usize;

    // Wide arithmetic: corrupted headers can carry absurd counts, and the
    // size check must reject them rather than overflow.
    let need = (n as u128 + 1) * 8 + (m as u128) * 4 + if weighted { m as u128 * 4 } else { 0 };
    if (cur.remaining() as u128) < need {
        return Err(GraphError::InvalidFormat(format!(
            "truncated payload: need {need} bytes, have {}",
            cur.remaining()
        )));
    }

    let mut row_ptr = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        row_ptr.push(cur.get_u64_le() as usize);
    }
    let mut col_idx = Vec::with_capacity(m);
    for _ in 0..m {
        col_idx.push(NodeId::new(cur.get_u32_le()));
    }
    let weights = if weighted {
        let mut w = Vec::with_capacity(m);
        for _ in 0..m {
            w.push(cur.get_u32_le());
        }
        Some(w)
    } else {
        None
    };

    // Re-validate through the checked constructor, but convert panics into
    // format errors for untrusted input.
    if row_ptr.first() != Some(&0)
        || row_ptr.last() != Some(&m)
        || row_ptr.windows(2).any(|w| w[0] > w[1])
        || col_idx.iter().any(|c| c.index() >= n.max(1))
    {
        return Err(GraphError::InvalidFormat(
            "inconsistent CSR arrays in binary container".into(),
        ));
    }
    if n == 0 && m > 0 {
        return Err(GraphError::InvalidFormat(
            "edges present in zero-node graph".into(),
        ));
    }
    Ok(Csr::from_parts(row_ptr, col_idx, weights))
}

/// Writes `g` to `path` in binary form.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on failure.
pub fn save_binary(g: &Csr, path: impl AsRef<Path>) -> Result<()> {
    write_binary(g, File::create(path)?)
}

/// Reads a graph from a binary file at `path`.
///
/// # Errors
///
/// See [`read_binary`].
pub fn load_binary(path: impl AsRef<Path>) -> Result<Csr> {
    read_binary(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    fn sample(weighted: bool) -> Csr {
        let mut b = CsrBuilder::new(5);
        if weighted {
            b.weighted_edge(0, 1, 3)
                .weighted_edge(0, 4, 9)
                .weighted_edge(3, 2, 1);
        } else {
            b.edge(0, 1).edge(0, 4).edge(3, 2);
        }
        b.build()
    }

    #[test]
    fn round_trips_weighted() {
        let g = sample(true);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn round_trips_unweighted() {
        let g = sample(false);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn round_trips_empty_graph() {
        let g = CsrBuilder::new(0).build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&sample(false), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_binary(buf.as_slice()).unwrap_err(),
            GraphError::InvalidFormat(_)
        ));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&sample(true), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_binary(buf.as_slice()).unwrap_err(),
            GraphError::InvalidFormat(_)
        ));
    }

    #[test]
    fn rejects_corrupted_row_ptr() {
        let mut buf = Vec::new();
        write_binary(&sample(false), &mut buf).unwrap();
        // Corrupt the first row_ptr entry (offset 25).
        buf[25] = 0xFF;
        assert!(matches!(
            read_binary(buf.as_slice()).unwrap_err(),
            GraphError::InvalidFormat(_)
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("tigr_graph_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = sample(true);
        save_binary(&g, &path).unwrap();
        assert_eq!(load_binary(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_is_denser_than_text() {
        let g = crate::generators::ring_lattice(200, 4);
        let mut bin = Vec::new();
        write_binary(&g, &mut bin).unwrap();
        let mut txt = Vec::new();
        crate::io::write_edge_list(&g, &mut txt).unwrap();
        // Not always true in general, but true for this shape; documents
        // the purpose of the binary cache.
        assert!(bin.len() < txt.len() * 4);
    }
}
