//! MatrixMarket coordinate format (the format used by network-repository,
//! where the paper's Sinaweibo and Twitter2010 graphs are hosted).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::CsrBuilder;
use crate::csr::Csr;
use crate::edge::{Edge, NodeId};
use crate::error::GraphError;
use crate::Result;

/// Parses a MatrixMarket coordinate stream into a graph.
///
/// Supports the `matrix coordinate (pattern|integer|real) (general|symmetric)`
/// headers. Symmetric matrices are expanded into both arc directions.
/// Entries are 1-indexed per the spec; `real` values are rounded to the
/// nearest non-negative integer weight.
///
/// # Errors
///
/// Returns [`GraphError::InvalidFormat`] for unsupported headers and
/// [`GraphError::Parse`] for malformed entries.
///
/// # Example
///
/// ```
/// use tigr_graph::io::parse_matrix_market;
///
/// let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n3 1\n";
/// let g = parse_matrix_market(text.as_bytes())?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), tigr_graph::GraphError>(())
/// ```
pub fn parse_matrix_market<R: Read>(reader: R) -> Result<Csr> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();

    // Header line.
    let (_, header) = lines
        .next()
        .ok_or_else(|| GraphError::InvalidFormat("empty matrix market stream".into()))?;
    let header = header?;
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(GraphError::InvalidFormat(format!(
            "unsupported matrix market header `{header}`"
        )));
    }
    if toks[2] != "coordinate" {
        return Err(GraphError::InvalidFormat(
            "only coordinate matrices are supported".into(),
        ));
    }
    let field = toks[3].as_str();
    if !matches!(field, "pattern" | "integer" | "real") {
        return Err(GraphError::InvalidFormat(format!(
            "unsupported field type `{field}`"
        )));
    }
    let symmetric = match toks[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(GraphError::InvalidFormat(format!(
                "unsupported symmetry `{other}`"
            )))
        }
    };

    // Size line (skipping comment lines).
    let mut size: Option<(usize, usize, usize)> = None;
    let mut edges: Vec<Edge> = Vec::new();
    let mut weighted = field != "pattern";

    for (lineno, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        if size.is_none() {
            let rows = parse_usize(it.next(), lineno + 1)?;
            let cols = parse_usize(it.next(), lineno + 1)?;
            let nnz = parse_usize(it.next(), lineno + 1)?;
            size = Some((rows, cols, nnz));
            edges.reserve(if symmetric { nnz * 2 } else { nnz });
            continue;
        }
        let (rows, cols, _) = size.unwrap();
        let r = parse_usize(it.next(), lineno + 1)?;
        let c = parse_usize(it.next(), lineno + 1)?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: format!("entry ({r}, {c}) outside {rows}x{cols} matrix"),
            });
        }
        let weight = match field {
            "pattern" => 1u32,
            "integer" => parse_usize(it.next(), lineno + 1)? as u32,
            _real => {
                let tok = it.next().ok_or_else(|| GraphError::Parse {
                    line: lineno + 1,
                    message: "missing value".into(),
                })?;
                let v: f64 = tok.parse().map_err(|_| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("invalid value `{tok}`"),
                })?;
                v.max(0.0).round() as u32
            }
        };
        weighted = weighted || weight != 1;
        let src = NodeId::from_index(r - 1);
        let dst = NodeId::from_index(c - 1);
        edges.push(Edge::new(src, dst, weight));
        if symmetric && src != dst {
            edges.push(Edge::new(dst, src, weight));
        }
    }

    let (rows, cols, _) = size
        .ok_or_else(|| GraphError::InvalidFormat("matrix market stream has no size line".into()))?;
    let mut b = CsrBuilder::from_edges(rows.max(cols), edges);
    b.force_weighted(weighted);
    Ok(b.build())
}

fn parse_usize(tok: Option<&str>, line: usize) -> Result<usize> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: "missing field".into(),
    })?;
    tok.parse::<usize>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid integer `{tok}`"),
    })
}

/// Loads a MatrixMarket file from disk.
///
/// # Errors
///
/// Propagates I/O and parse failures; see [`parse_matrix_market`].
pub fn load_matrix_market(path: impl AsRef<Path>) -> Result<Csr> {
    parse_matrix_market(File::open(path)?)
}

/// Writes `g` as a MatrixMarket coordinate stream (`general` symmetry,
/// `pattern` for unweighted graphs, `integer` otherwise; 1-indexed).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_matrix_market<W: Write>(g: &Csr, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    let field = if g.is_weighted() {
        "integer"
    } else {
        "pattern"
    };
    writeln!(out, "%%MatrixMarket matrix coordinate {field} general")?;
    let n = g.num_nodes();
    writeln!(out, "{n} {n} {}", g.num_edges())?;
    for u in 0..n {
        let src = NodeId::from_index(u);
        for e in g.edge_start(src)..g.edge_end(src) {
            let dst = g.col_idx()[e].index() + 1;
            if g.is_weighted() {
                writeln!(out, "{} {dst} {}", u + 1, g.weight(e))?;
            } else {
                writeln!(out, "{} {dst}", u + 1)?;
            }
        }
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pattern_general() {
        let text =
            "%%MatrixMarket matrix coordinate pattern general\n% comment\n4 4 3\n1 2\n2 3\n4 1\n";
        let g = parse_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_weighted());
        assert_eq!(g.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
    }

    #[test]
    fn parses_integer_weights() {
        let text = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 42\n";
        let g = parse_matrix_market(text.as_bytes()).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.weight(0), 42);
    }

    #[test]
    fn parses_real_weights_rounded() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.7\n";
        let g = parse_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.weight(0), 4);
    }

    #[test]
    fn symmetric_expands_both_directions() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n";
        let g = parse_matrix_market(text.as_bytes()).unwrap();
        // (2,1) expands to both arcs; the diagonal (3,3) does not duplicate.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
    }

    #[test]
    fn rejects_non_matrix_market() {
        let err = parse_matrix_market("hello world\n1 1 0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::InvalidFormat(_)));
    }

    #[test]
    fn rejects_out_of_bounds_entries() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        let err = parse_matrix_market(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn rejects_missing_size_line() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n";
        let err = parse_matrix_market(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::InvalidFormat(_)));
    }

    #[test]
    fn writer_round_trips() {
        for text in [
            "%%MatrixMarket matrix coordinate pattern general\n4 4 3\n1 2\n2 3\n4 1\n",
            "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 42\n",
        ] {
            let g = parse_matrix_market(text.as_bytes()).unwrap();
            let mut buf = Vec::new();
            write_matrix_market(&g, &mut buf).unwrap();
            assert_eq!(parse_matrix_market(buf.as_slice()).unwrap(), g);
        }
    }

    #[test]
    fn rejects_array_format() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n";
        let err = parse_matrix_market(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::InvalidFormat(_)));
    }
}
