//! Error type for graph construction and I/O.

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Errors produced while building, loading, or saving graphs.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A text file could not be parsed.
    Parse {
        /// 1-based line number at which parsing failed.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An edge referenced a node outside the declared node range.
    NodeOutOfRange {
        /// The offending node identifier.
        node: u64,
        /// The number of nodes the graph was declared with.
        num_nodes: usize,
    },
    /// A binary container had a malformed or unsupported header.
    InvalidFormat(String),
    /// A binary container section failed checksum validation.
    Checksum {
        /// Section id whose payload hash did not match the table entry.
        section: u32,
    },
    /// A size or offset read from a container does not fit the
    /// platform's `usize` (e.g. a 64-bit artifact on a 32-bit host).
    Overflow {
        /// The value that failed to convert.
        value: u64,
        /// What the value was being read as (e.g. `"node count"`).
        what: &'static str,
    },
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// A cooperative cancellation token fired before the operation
    /// completed (explicit cancel or elapsed deadline).
    Cancelled,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidFormat(msg) => write!(f, "invalid format: {msg}"),
            GraphError::Checksum { section } => {
                write!(f, "checksum mismatch in container section {section}")
            }
            GraphError::Overflow { value, what } => {
                write!(f, "container {what} {value} exceeds this platform's usize")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::Cancelled => write!(f, "operation cancelled before completion"),
        }
    }
}

impl StdError for GraphError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<GraphError> = vec![
            GraphError::Io(io::Error::new(io::ErrorKind::NotFound, "missing")),
            GraphError::Parse {
                line: 3,
                message: "bad token".into(),
            },
            GraphError::NodeOutOfRange {
                node: 10,
                num_nodes: 5,
            },
            GraphError::InvalidFormat("bad magic".into()),
            GraphError::Checksum { section: 1 },
            GraphError::Overflow {
                value: u64::MAX,
                what: "node count",
            },
            GraphError::EmptyGraph,
            GraphError::Cancelled,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
            assert!(!s.ends_with('.'), "{s}");
        }
    }

    #[test]
    fn io_error_preserves_source() {
        let e = GraphError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
