//! Immutable byte segments and typed zero-copy views over them.
//!
//! A [`Segment`] is the backing store for a loaded artifact: either an
//! owned byte buffer or a read-only memory mapping of the artifact file
//! (hand-rolled `mmap`/`munmap` FFI against the already-linked libc —
//! no external crate). An [`ArcSlice<T>`] is a typed view into either a
//! shared `Vec<T>` or a byte range of a shared segment; it dereferences
//! to `&[T]`, so every consumer reads through ordinary bounds-checked
//! slices whether the bytes live on the heap or in the page cache.
//!
//! # Safety model
//!
//! Reinterpreting mapped bytes as `&[T]` is sound only when `T` is a
//! [`Plain`] type (no padding, no invalid bit patterns, no drop glue)
//! and the range is properly aligned and in bounds — both enforced at
//! view construction, never at read time. Mappings are `MAP_PRIVATE`
//! and `PROT_READ`: the kernel may reflect concurrent file truncation
//! as `SIGBUS`, which is why the store only maps artifacts it owns and
//! writes atomically (tmp + fsync + rename).

use std::fs::File;
use std::io::Read;
use std::sync::Arc;

/// Marker for types that may be reinterpreted from raw little-endian
/// bytes: fixed layout, any bit pattern valid, no padding, no drop
/// glue.
///
/// # Safety
///
/// Implementors must guarantee every properly aligned byte sequence of
/// `size_of::<Self>()` bytes is a valid value of `Self`.
pub unsafe trait Plain: Copy + 'static {}

// SAFETY: primitive integers have no padding or invalid patterns.
unsafe impl Plain for u8 {}
// SAFETY: as above.
unsafe impl Plain for u32 {}
// SAFETY: as above.
unsafe impl Plain for u64 {}
// SAFETY: as above.
unsafe impl Plain for usize {}
// SAFETY: `NodeId` is `#[repr(transparent)]` over `u32`.
unsafe impl Plain for crate::NodeId {}

/// A read-only `mmap` region, unmapped on drop.
#[cfg(all(unix, target_pointer_width = "64"))]
mod mapped {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    /// One live `PROT_READ`/`MAP_PRIVATE` mapping of a whole file.
    pub struct MapRegion {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the region is immutable after construction; concurrent
    // reads through shared references are safe.
    unsafe impl Send for MapRegion {}
    // SAFETY: as above.
    unsafe impl Sync for MapRegion {}

    impl MapRegion {
        /// Maps `len` bytes of `fd` read-only. `len` must be non-zero.
        pub fn map(fd: c_int, len: usize) -> std::io::Result<MapRegion> {
            // SAFETY: a fresh anonymous address is requested; the fd is
            // open for reading and outlives the call (the mapping keeps
            // the pages alive after the fd closes).
            let ptr = unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, fd, 0) };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(MapRegion {
                ptr: ptr as *const u8,
                len,
            })
        }

        /// The mapped bytes.
        pub fn as_bytes(&self) -> &[u8] {
            // SAFETY: `ptr` points at `len` mapped read-only bytes that
            // stay valid until `drop` unmaps them.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for MapRegion {
        fn drop(&mut self) {
            // SAFETY: exactly the region returned by `mmap`, unmapped
            // once.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }

    impl std::fmt::Debug for MapRegion {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("MapRegion").field("len", &self.len).finish()
        }
    }
}

/// The backing store for a loaded artifact: owned bytes or a read-only
/// file mapping.
#[derive(Debug)]
pub enum Segment {
    /// Heap-resident bytes.
    Owned(Vec<u8>),
    /// A live file mapping (64-bit Unix targets only).
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(mapped::MapRegion),
}

impl Segment {
    /// Memory-maps `file` read-only where the platform supports it;
    /// elsewhere (and for empty files, which `mmap` rejects) reads it
    /// into an owned buffer.
    ///
    /// # Errors
    ///
    /// Propagates metadata, `mmap`, and read failures.
    pub fn map_file(file: &mut File) -> std::io::Result<Segment> {
        let len = file.metadata()?.len();
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            if len > 0 {
                let len = usize::try_from(len).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "file exceeds usize")
                })?;
                return Ok(Segment::Mapped(mapped::MapRegion::map(
                    file.as_raw_fd(),
                    len,
                )?));
            }
        }
        let mut buf = Vec::with_capacity(len as usize);
        file.read_to_end(&mut buf)?;
        Ok(Segment::Owned(buf))
    }

    /// Reads `file` into an owned segment regardless of platform.
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    pub fn read_file(file: &mut File) -> std::io::Result<Segment> {
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(Segment::Owned(buf))
    }

    /// The segment's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Segment::Owned(v) => v,
            #[cfg(all(unix, target_pointer_width = "64"))]
            Segment::Mapped(m) => m.as_bytes(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// `true` when the segment holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_bytes().is_empty()
    }

    /// `true` when the bytes live in a file mapping rather than on the
    /// heap.
    pub fn is_mapped(&self) -> bool {
        match self {
            Segment::Owned(_) => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            Segment::Mapped(_) => true,
        }
    }
}

impl From<Vec<u8>> for Segment {
    fn from(bytes: Vec<u8>) -> Segment {
        Segment::Owned(bytes)
    }
}

/// What keeps an [`ArcSlice`]'s bytes alive.
enum Backing<T> {
    Owned(Arc<Vec<T>>),
    Segment(Arc<Segment>),
}

impl<T> Clone for Backing<T> {
    fn clone(&self) -> Self {
        match self {
            Backing::Owned(v) => Backing::Owned(Arc::clone(v)),
            Backing::Segment(s) => Backing::Segment(Arc::clone(s)),
        }
    }
}

/// A cheaply clonable, shareable `&[T]` backed by either an owned
/// vector or a byte range of a [`Segment`].
///
/// Equality and ordering compare contents, so a mapped view and an
/// owned view of the same data are equal. The view pins its backing
/// alive; `Deref` makes every read an ordinary bounds-checked slice
/// access.
pub struct ArcSlice<T> {
    ptr: *const T,
    len: usize,
    backing: Backing<T>,
}

// SAFETY: the pointed-to data is immutable and owned by the
// `Send + Sync` backing (`Arc<Vec<T>>` or `Arc<Segment>`).
unsafe impl<T: Send + Sync> Send for ArcSlice<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for ArcSlice<T> {}

impl<T> ArcSlice<T> {
    /// An empty view with no backing allocation.
    pub fn empty() -> ArcSlice<T> {
        ArcSlice::from(Vec::new())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the view holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the bytes live in a file mapping (the no-copy path).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            Backing::Owned(_) => false,
            Backing::Segment(s) => s.is_mapped(),
        }
    }

    /// Bytes this view keeps resident on the heap: the element bytes
    /// for owned views, zero for mapped ones (their pages live in the
    /// page cache and can be evicted).
    pub fn heap_bytes(&self) -> usize {
        if self.is_mapped() {
            0
        } else {
            self.len * std::mem::size_of::<T>()
        }
    }

    /// The segment backing this view, if it is segment-backed.
    pub fn segment(&self) -> Option<&Arc<Segment>> {
        match &self.backing {
            Backing::Owned(_) => None,
            Backing::Segment(s) => Some(s),
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `ptr`/`len` were validated against the backing at
        // construction, and the backing is pinned by `self.backing`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Plain> ArcSlice<T> {
    /// Builds a typed view over `count` elements starting `byte_offset`
    /// bytes into `segment`, without copying.
    ///
    /// Returns `None` when the range is out of bounds, overflows, or is
    /// not aligned for `T` — callers fall back to an owned decode.
    pub fn from_segment(segment: Arc<Segment>, byte_offset: usize, count: usize) -> Option<Self> {
        let size = std::mem::size_of::<T>();
        let byte_len = count.checked_mul(size)?;
        let end = byte_offset.checked_add(byte_len)?;
        let bytes = segment.as_bytes();
        if end > bytes.len() {
            return None;
        }
        let ptr = bytes[byte_offset..].as_ptr();
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(ArcSlice {
            ptr: ptr as *const T,
            len: count,
            backing: Backing::Segment(segment),
        })
    }
}

impl<T> From<Vec<T>> for ArcSlice<T> {
    fn from(vec: Vec<T>) -> Self {
        let arc = Arc::new(vec);
        ArcSlice {
            ptr: arc.as_ptr(),
            len: arc.len(),
            backing: Backing::Owned(arc),
        }
    }
}

impl<T> Clone for ArcSlice<T> {
    fn clone(&self) -> Self {
        ArcSlice {
            ptr: self.ptr,
            len: self.len,
            backing: self.backing.clone(),
        }
    }
}

impl<T> std::ops::Deref for ArcSlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> AsRef<[T]> for ArcSlice<T> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: PartialEq> PartialEq for ArcSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for ArcSlice<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSlice")
            .field("len", &self.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Seek, Write};

    fn temp_file(bytes: &[u8]) -> File {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "tigr-segment-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        // The mapping outlives the directory entry.
        std::fs::remove_file(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.rewind().unwrap();
        f
    }

    #[test]
    fn mapped_segment_reads_file_bytes() {
        let payload: Vec<u8> = (0..=255).collect();
        let mut f = temp_file(&payload);
        let seg = Segment::map_file(&mut f).unwrap();
        assert_eq!(seg.as_bytes(), payload.as_slice());
        assert_eq!(seg.len(), 256);
        if cfg!(all(unix, target_pointer_width = "64")) {
            assert!(seg.is_mapped());
        }
    }

    #[test]
    fn empty_file_maps_to_owned_segment() {
        let mut f = temp_file(&[]);
        let seg = Segment::map_file(&mut f).unwrap();
        assert!(seg.is_empty());
        assert!(!seg.is_mapped());
    }

    #[test]
    fn typed_views_share_a_segment() {
        let mut bytes = Vec::new();
        for v in [1u64, 2, 3, 4] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let seg = Arc::new(Segment::from(bytes));
        let all = ArcSlice::<u64>::from_segment(Arc::clone(&seg), 0, 4).unwrap();
        let tail = ArcSlice::<u64>::from_segment(Arc::clone(&seg), 16, 2).unwrap();
        assert_eq!(&all[..], &[1, 2, 3, 4]);
        assert_eq!(&tail[..], &[3, 4]);
        assert_eq!(Arc::strong_count(&seg), 3);
    }

    #[test]
    fn from_segment_rejects_bad_ranges() {
        let seg = Arc::new(Segment::from(vec![0u8; 32]));
        // Out of bounds.
        assert!(ArcSlice::<u64>::from_segment(Arc::clone(&seg), 0, 5).is_none());
        // Overflowing count.
        assert!(ArcSlice::<u64>::from_segment(Arc::clone(&seg), 0, usize::MAX).is_none());
        // Misaligned offset (the owned Vec base is at least 8-aligned
        // only by accident; offset 4 from an 8-aligned base never is).
        let base = seg.as_bytes().as_ptr() as usize;
        let off = if base.is_multiple_of(8) {
            4
        } else {
            8 - base % 8 + 4
        };
        assert!(ArcSlice::<u64>::from_segment(Arc::clone(&seg), off, 1).is_none());
    }

    #[test]
    fn owned_and_mapped_views_compare_by_content() {
        let owned: ArcSlice<u32> = vec![7u32, 8, 9].into();
        let mut bytes = Vec::new();
        for v in [7u32, 8, 9] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let seg = Arc::new(Segment::from(bytes));
        if let Some(view) = ArcSlice::<u32>::from_segment(seg, 0, 3) {
            assert_eq!(owned, view);
        }
        assert_eq!(owned.heap_bytes(), 12);
        let empty = ArcSlice::<u32>::empty();
        assert!(empty.is_empty() && !empty.is_mapped());
    }

    #[test]
    fn mapped_view_reports_zero_heap_bytes() {
        let mut bytes = Vec::new();
        for v in [1u64, 2, 3] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let mut f = temp_file(&bytes);
        let seg = Arc::new(Segment::map_file(&mut f).unwrap());
        if seg.is_mapped() {
            let view = ArcSlice::<u64>::from_segment(Arc::clone(&seg), 0, 3).unwrap();
            assert!(view.is_mapped());
            assert_eq!(view.heap_bytes(), 0);
            assert_eq!(&view[..], &[1, 2, 3]);
            // The view's data pointer lies inside the mapping: no copy.
            let base = seg.as_bytes().as_ptr() as usize;
            let p = view.as_slice().as_ptr() as usize;
            assert!(p >= base && p < base + seg.len());
        }
    }

    #[test]
    fn segment_and_views_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Segment>();
        assert_send_sync::<ArcSlice<u64>>();
        assert_send_sync::<ArcSlice<crate::NodeId>>();
    }
}
