//! "Hardwired" single-algorithm GPU implementations (§6.1).
//!
//! Besides the general frameworks, the paper cites specialized
//! implementations — Davidson et al.'s work-efficient SSSP
//! (Δ-stepping) and ECL-CC's hooking/shortcutting connected
//! components — and defers the comparison to its project site. This
//! module provides both on the shared simulator so the comparison can
//! run here.

use std::sync::atomic::{AtomicBool, Ordering};

use crossbeam::queue::SegQueue;

use tigr_engine::addr::{edge_addr, frontier_addr, row_ptr_addr, value_addr};
use tigr_engine::{AtomicValues, Combine};
use tigr_graph::{Csr, NodeId, Weight, INFINITE_WEIGHT};
use tigr_sim::{GpuSimulator, SimReport};

use crate::common::FrameworkRun;

/// Δ-stepping SSSP (Meyer & Sanders; Davidson et al.'s GPU variant):
/// tentative distances are settled bucket by bucket of width `delta`,
/// with light edges (w < delta) relaxed iteratively inside a bucket and
/// heavy edges once per bucket.
///
/// `delta = 0` selects a heuristic bucket width (average edge weight).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn delta_stepping_sssp(
    sim: &GpuSimulator,
    g: &Csr,
    source: NodeId,
    delta: Weight,
) -> FrameworkRun {
    let n = g.num_nodes();
    assert!(source.index() < n, "source out of range");
    let delta = if delta == 0 {
        let m = g.num_edges();
        if m == 0 {
            1
        } else {
            let total: u64 = (0..m).map(|e| g.weight(e) as u64).sum();
            ((total / m as u64) as Weight).max(1)
        }
    } else {
        delta
    };

    let dist = AtomicValues::new(n, INFINITE_WEIGHT);
    dist.store(source.index(), 0);
    let mut report = SimReport::new();
    let mut bucket_index = 0u32;

    loop {
        // Collect the current bucket: nodes with d ∈ [b·Δ, (b+1)·Δ).
        let lo = bucket_index.saturating_mul(delta);
        let hi = lo.saturating_add(delta);
        let mut bucket: Vec<u32> = (0..n as u32)
            .filter(|&v| {
                let d = dist.load(v as usize);
                d >= lo && d < hi
            })
            .collect();
        if bucket.is_empty() {
            // Find the next non-empty bucket, or finish.
            let next = (0..n)
                .map(|v| dist.load(v))
                .filter(|&d| d != INFINITE_WEIGHT && d >= hi)
                .min();
            match next {
                Some(d) => {
                    bucket_index = d / delta;
                    continue;
                }
                None => break,
            }
        }

        // Light-edge phase: relax within the bucket to a fixpoint.
        loop {
            let changed = AtomicBool::new(false);
            let reinsert = SegQueue::new();
            let metrics = sim.launch(bucket.len(), |tid, lane| {
                let v = bucket[tid] as usize;
                lane.load(frontier_addr(tid), 4);
                lane.load(row_ptr_addr(v), 8);
                lane.load(value_addr(v), 4);
                let d = dist.load(v);
                let node = NodeId::from_index(v);
                for e in g.edge_start(node)..g.edge_end(node) {
                    lane.load(edge_addr(e), 8);
                    let w = g.weight(e);
                    if w >= delta {
                        continue; // heavy edges wait for bucket settlement
                    }
                    let nbr = g.edge_target(e).index();
                    let cand = d.saturating_add(w);
                    lane.compute(2);
                    lane.load(value_addr(nbr), 4);
                    if cand < dist.load(nbr) && dist.try_improve(nbr, cand, Combine::Min) {
                        lane.atomic(value_addr(nbr), 4);
                        changed.store(true, Ordering::Relaxed);
                        if cand < hi {
                            reinsert.push(nbr as u32);
                        }
                    }
                }
            });
            report.push(bucket.len(), metrics);
            if !changed.load(Ordering::Relaxed) {
                break;
            }
            let mut extra: Vec<u32> = std::iter::from_fn(|| reinsert.pop()).collect();
            extra.retain(|&v| {
                let d = dist.load(v as usize);
                d >= lo && d < hi
            });
            bucket.extend(extra);
            bucket.sort_unstable();
            bucket.dedup();
        }

        // Heavy-edge phase: one relaxation of the settled bucket.
        let metrics = sim.launch(bucket.len(), |tid, lane| {
            let v = bucket[tid] as usize;
            lane.load(frontier_addr(tid), 4);
            lane.load(row_ptr_addr(v), 8);
            lane.load(value_addr(v), 4);
            let d = dist.load(v);
            let node = NodeId::from_index(v);
            for e in g.edge_start(node)..g.edge_end(node) {
                lane.load(edge_addr(e), 8);
                let w = g.weight(e);
                if w < delta {
                    continue;
                }
                let nbr = g.edge_target(e).index();
                let cand = d.saturating_add(w);
                lane.compute(2);
                lane.load(value_addr(nbr), 4);
                if cand < dist.load(nbr) && dist.try_improve(nbr, cand, Combine::Min) {
                    lane.atomic(value_addr(nbr), 4);
                }
            }
        });
        report.push(bucket.len(), metrics);
        bucket_index += 1;
    }

    FrameworkRun {
        values: dist.snapshot(),
        report,
    }
}

/// ECL-CC-style connected components: *hooking* (every edge hooks the
/// higher representative under the lower) alternating with pointer-
/// jumping *shortcutting*, treating edges as undirected. Converges in
/// O(log n) rounds — the hardwired CC that beats general frameworks in
/// the paper's own citations.
pub fn hooking_cc(sim: &GpuSimulator, g: &Csr) -> FrameworkRun {
    let n = g.num_nodes();
    let parent = AtomicValues::from_values(0..n as u32);
    let mut report = SimReport::new();

    loop {
        // Hooking pass over edges.
        let changed = AtomicBool::new(false);
        let m = g.num_edges();
        let hook = sim.launch(m, |e, lane| {
            lane.load(edge_addr(e), 8);
            // Find both endpoints' representatives (bounded chase).
            let mut a = edge_src(g, e);
            let mut b = g.edge_target(e).raw();
            lane.load(value_addr(a as usize), 4);
            lane.load(value_addr(b as usize), 4);
            while parent.load(a as usize) != a {
                a = parent.load(a as usize);
                lane.load(value_addr(a as usize), 4);
            }
            while parent.load(b as usize) != b {
                b = parent.load(b as usize);
                lane.load(value_addr(b as usize), 4);
            }
            lane.compute(2);
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                if parent.try_improve(hi as usize, lo, Combine::Min) {
                    lane.atomic(value_addr(hi as usize), 4);
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
        report.push(m, hook);

        // Shortcutting pass over nodes (pointer jumping).
        let shortcut = sim.launch(n, |v, lane| {
            lane.load(value_addr(v), 4);
            let p = parent.load(v);
            let gp = parent.load(p as usize);
            lane.load(value_addr(p as usize), 4);
            lane.compute(1);
            if gp != p {
                parent.try_improve(v, gp, Combine::Min);
                lane.store(value_addr(v), 4);
            }
        });
        report.push(n, shortcut);

        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }

    // Final flattening so every node points at its root.
    let values: Vec<u32> = (0..n)
        .map(|v| {
            let mut x = v as u32;
            while parent.load(x as usize) != x {
                x = parent.load(x as usize);
            }
            x
        })
        .collect();

    FrameworkRun { values, report }
}

/// Source of flat edge `e` (linear scan over row_ptr is avoided by
/// binary search).
fn edge_src(g: &Csr, e: usize) -> u32 {
    let row_ptr = g.row_ptr();
    let mut lo = 0usize;
    let mut hi = g.num_nodes();
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if row_ptr[mid] <= e {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_graph::properties::{connected_components, dijkstra};
    use tigr_sim::GpuConfig;

    fn fixture() -> Csr {
        with_uniform_weights(&rmat(&RmatConfig::graph500(8, 6), 101), 1, 50, 3)
    }

    #[test]
    fn delta_stepping_matches_dijkstra() {
        let g = fixture();
        let expect = dijkstra(&g, NodeId::new(0));
        let sim = GpuSimulator::new(GpuConfig::default());
        for delta in [0u32, 4, 16, 64, 1000] {
            let out = delta_stepping_sssp(&sim, &g, NodeId::new(0), delta);
            assert_eq!(out.values, expect, "delta={delta}");
        }
    }

    #[test]
    fn delta_stepping_on_disconnected_graph() {
        let g = tigr_graph::CsrBuilder::new(4)
            .weighted_edge(0, 1, 5)
            .build();
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = delta_stepping_sssp(&sim, &g, NodeId::new(0), 2);
        assert_eq!(out.values, vec![0, 5, INFINITE_WEIGHT, INFINITE_WEIGHT]);
    }

    #[test]
    fn hooking_cc_matches_union_find() {
        let mut b = tigr_graph::CsrBuilder::new(9);
        b.symmetric(true);
        b.edge(0, 1)
            .edge(1, 2)
            .edge(3, 4)
            .edge(5, 6)
            .edge(6, 7)
            .edge(7, 5);
        let g = b.build();
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = hooking_cc(&sim, &g);
        assert_eq!(out.values, connected_components(&g));
    }

    #[test]
    fn hooking_cc_handles_directed_edges_as_undirected() {
        // One-way edge still merges components, like the oracle.
        let g = tigr_graph::CsrBuilder::new(3).edge(2, 0).build();
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = hooking_cc(&sim, &g);
        assert_eq!(out.values, connected_components(&g));
    }

    #[test]
    fn hooking_cc_converges_in_logarithmic_rounds() {
        // A long path is the worst case for propagation-based CC
        // (O(n) iterations) but hooking + shortcutting needs O(log n).
        let n = 1024;
        let mut b = tigr_graph::CsrBuilder::new(n);
        b.symmetric(true);
        for i in 0..(n as u32 - 1) {
            b.edge(i, i + 1);
        }
        let g = b.build();
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = hooking_cc(&sim, &g);
        assert!(out.values.iter().all(|&l| l == 0));
        // Each round = 2 report entries (hook + shortcut).
        let rounds = out.report.num_iterations() / 2;
        assert!(rounds <= 24, "rounds = {rounds}");
    }
}
