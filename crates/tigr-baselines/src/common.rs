//! Shared framework plumbing and the [`Baseline`] dispatcher.

use serde::{Deserialize, Serialize};

use tigr_engine::{MonotoneProgram, PrOptions, PrOutput};
use tigr_graph::{Csr, NodeId};
use tigr_sim::{DeviceMemory, GpuSimulator, OutOfMemory, SimReport};

use crate::{cusha, gunrock, mw};

/// Result of running a framework on an analytic.
#[derive(Clone, Debug)]
pub struct FrameworkRun {
    /// Final per-node values (encoding as in [`tigr_engine`]).
    pub values: Vec<u32>,
    /// Per-iteration simulator metrics.
    pub report: SimReport,
}

/// CuSha's two graph representations (§2 of the CuSha paper; the better
/// of the two is reported in Table 4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CushaMode {
    /// G-Shards: full shard entries (src, dst, weight, src-value copy).
    #[default]
    GShards,
    /// Concatenated Windows: compacted shards with denser windows,
    /// trading some coalescing for a smaller footprint.
    ConcatenatedWindows,
}

/// Uniform handle over the three comparison frameworks, as they appear
/// in Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Baseline {
    /// Maximum Warp with a fixed virtual-warp width, or `None` to try
    /// all of {2, 4, 8, 16, 32} and keep the fastest (the paper's
    /// methodology: "the best performance is chosen").
    MaximumWarp {
        /// Virtual warp width; `None` = auto-select.
        width: Option<usize>,
    },
    /// CuSha with the given representation.
    CuSha {
        /// Shard representation.
        mode: CushaMode,
    },
    /// Gunrock-style frontier engine.
    Gunrock,
}

impl Baseline {
    /// The three frameworks in their Table 4 column order, with
    /// auto-selection behaviour matching the paper's methodology.
    pub const ALL: [Baseline; 3] = [
        Baseline::MaximumWarp { width: None },
        Baseline::CuSha {
            mode: CushaMode::GShards,
        },
        Baseline::Gunrock,
    ];

    /// Framework name as used in the tables.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::MaximumWarp { .. } => "MW",
            Baseline::CuSha { .. } => "CuSha",
            Baseline::Gunrock => "Gunrock",
        }
    }

    /// Device-memory footprint of processing `g` with this framework.
    pub fn footprint_bytes(&self, g: &Csr) -> u64 {
        let n = g.num_nodes() as u64;
        let m = g.num_edges() as u64;
        let values = n * 4;
        match self {
            // MW runs on the plain CSR: no auxiliary structures (§6.2:
            // "MW is also free from OOM issues").
            Baseline::MaximumWarp { .. } => g.csr_size_bytes() as u64 + values,
            Baseline::CuSha { mode } => {
                // Shard entry: src id + dst id + src-value copy
                // (+ weight), roughly doubling edge storage; windows add
                // per-shard indexing.
                let entry = if g.is_weighted() { 16 } else { 12 };
                let window_index = n;
                let compaction = match mode {
                    CushaMode::GShards => 0,
                    CushaMode::ConcatenatedWindows => m, // window offsets
                };
                m * entry + window_index + compaction + values
            }
            // Gunrock keeps double frontier buffers sized for the worst
            // advance output (one entry per edge).
            Baseline::Gunrock => g.csr_size_bytes() as u64 + values + 2 * m * 4,
        }
    }

    /// Checks the footprint against an optional device budget.
    ///
    /// # Errors
    ///
    /// Returns the simulated [`OutOfMemory`] failure, as thrown by CuSha
    /// and Gunrock on the paper's largest graphs.
    pub fn check_budget(&self, g: &Csr, budget: Option<u64>) -> Result<(), OutOfMemory> {
        if let Some(capacity) = budget {
            DeviceMemory::new(capacity).alloc(self.footprint_bytes(g))?;
        }
        Ok(())
    }

    /// Runs a monotone analytic (BFS/SSSP/SSWP/CC) with this framework.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the representation exceeds `budget`.
    pub fn run_monotone(
        &self,
        sim: &GpuSimulator,
        g: &Csr,
        prog: MonotoneProgram,
        source: Option<NodeId>,
        budget: Option<u64>,
    ) -> Result<FrameworkRun, OutOfMemory> {
        self.check_budget(g, budget)?;
        Ok(match self {
            Baseline::MaximumWarp { width } => mw::run_monotone(sim, g, prog, source, *width),
            Baseline::CuSha { mode } => cusha::run_monotone(sim, g, prog, source, *mode),
            Baseline::Gunrock => gunrock::run_monotone(sim, g, prog, source),
        })
    }

    /// Runs PageRank with this framework. `g` is the forward graph; each
    /// framework uses its native direction internally.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the representation exceeds `budget`.
    pub fn run_pagerank(
        &self,
        sim: &GpuSimulator,
        g: &Csr,
        options: &PrOptions,
        budget: Option<u64>,
    ) -> Result<PrOutput, OutOfMemory> {
        self.check_budget(g, budget)?;
        Ok(match self {
            Baseline::MaximumWarp { width } => mw::run_pagerank(sim, g, options, *width),
            Baseline::CuSha { mode } => cusha::run_pagerank(sim, g, options, *mode),
            Baseline::Gunrock => gunrock::run_pagerank(sim, g, options),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::star_graph;

    #[test]
    fn names_match_table_2() {
        let names: Vec<_> = Baseline::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["MW", "CuSha", "Gunrock"]);
    }

    #[test]
    fn mw_has_smallest_footprint() {
        let g = star_graph(1000).with_weights_from(|_| 1);
        let mw = Baseline::MaximumWarp { width: Some(4) }.footprint_bytes(&g);
        let cusha = Baseline::CuSha {
            mode: CushaMode::GShards,
        }
        .footprint_bytes(&g);
        let gunrock = Baseline::Gunrock.footprint_bytes(&g);
        assert!(mw < cusha, "MW {mw} < CuSha {cusha}");
        assert!(mw < gunrock, "MW {mw} < Gunrock {gunrock}");
    }

    #[test]
    fn budget_enforcement() {
        let g = star_graph(10_000);
        let b = Baseline::Gunrock;
        assert!(b.check_budget(&g, None).is_ok());
        assert!(b.check_budget(&g, Some(u64::MAX / 2)).is_ok());
        assert!(b.check_budget(&g, Some(1024)).is_err());
        // MW fits where Gunrock does not.
        let tight = Baseline::MaximumWarp { width: Some(4) }.footprint_bytes(&g) + 1;
        assert!(Baseline::MaximumWarp { width: Some(4) }
            .check_budget(&g, Some(tight))
            .is_ok());
        assert!(Baseline::Gunrock.check_budget(&g, Some(tight)).is_err());
    }

    #[test]
    fn concatenated_windows_cost_more_than_gshards_index() {
        let g = star_graph(100);
        let gs = Baseline::CuSha {
            mode: CushaMode::GShards,
        }
        .footprint_bytes(&g);
        let cw = Baseline::CuSha {
            mode: CushaMode::ConcatenatedWindows,
        }
        .footprint_bytes(&g);
        assert!(cw > gs);
    }
}
