//! Maximum Warp (Hong et al., PPoPP 2011): virtual-warp-centric
//! processing.
//!
//! A warp of 32 lanes is decomposed into `32 / W` *virtual warps* of
//! width `W`; each virtual warp cooperatively processes one node, its
//! lanes striding the node's edge list by `W`. Wide virtual warps tame
//! hubs but waste lanes on low-degree nodes; narrow ones do the
//! opposite — hence the paper evaluates `W ∈ 2..32` and reports the best
//! (Table 2).
//!
//! Faithful to the original, there is no worklist: every node is
//! processed every iteration, with updates applied atomically and
//! relaxed visibility.

use std::sync::atomic::{AtomicBool, Ordering};

use tigr_engine::addr::{edge_addr, row_ptr_addr, value_addr, FLAG_ADDR};
use tigr_engine::{AtomicFloats, AtomicValues, MonotoneProgram, PrOptions, PrOutput};
use tigr_graph::{Csr, NodeId};
use tigr_sim::{GpuSimulator, KernelMetrics, SimReport};

use crate::common::FrameworkRun;

/// The virtual-warp widths the paper sweeps.
pub const WIDTHS: [usize; 5] = [2, 4, 8, 16, 32];

/// Runs a monotone analytic with virtual warps of `width`, or the best
/// of [`WIDTHS`] when `width` is `None`.
///
/// # Panics
///
/// Panics if `width` is not a divisor of the simulated warp size, or if
/// the program's source is missing/out of range.
pub fn run_monotone(
    sim: &GpuSimulator,
    g: &Csr,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    width: Option<usize>,
) -> FrameworkRun {
    match width {
        Some(w) => run_with_width(sim, g, prog, source, w),
        None => WIDTHS
            .iter()
            .map(|&w| run_with_width(sim, g, prog, source, w))
            .min_by_key(|r| r.report.total_cycles())
            .expect("WIDTHS is non-empty"),
    }
}

fn run_with_width(
    sim: &GpuSimulator,
    g: &Csr,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    width: usize,
) -> FrameworkRun {
    let warp = sim.config().warp_size;
    assert!(
        width > 0 && warp.is_multiple_of(width),
        "virtual warp width {width} must divide the warp size {warp}"
    );
    let n = g.num_nodes();
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let mut report = SimReport::new();

    loop {
        let changed = AtomicBool::new(false);
        // One virtual warp (W threads) per node.
        let metrics = sim.launch(n * width, |tid, lane| {
            let node = tid / width;
            let lane_in_group = tid % width;
            let v = NodeId::from_index(node);
            // Every lane of the group reads the node header and value
            // (one coalesced transaction since addresses coincide).
            lane.load(row_ptr_addr(node), 8);
            lane.load(value_addr(node), 4);
            let d = values.load(node);
            let (start, end) = (g.edge_start(v), g.edge_end(v));
            let mut e = start + lane_in_group;
            while e < end {
                lane.load(edge_addr(e), 8);
                let nbr = g.edge_target(e).index();
                let cand = prog.edge_op.apply(d, g.weight(e));
                lane.compute(2);
                lane.load(value_addr(nbr), 4);
                if prog.combine.improves(cand, values.load(nbr))
                    && values.try_improve(nbr, cand, prog.combine)
                {
                    lane.atomic(value_addr(nbr), 4);
                    lane.store(FLAG_ADDR, 1);
                    changed.store(true, Ordering::Relaxed);
                }
                e += width;
            }
        });
        report.push(n * width, metrics);
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }

    FrameworkRun {
        values: values.snapshot(),
        report,
    }
}

/// PageRank with virtual warps: push-style scatter over out-edges.
pub fn run_pagerank(
    sim: &GpuSimulator,
    g: &Csr,
    options: &PrOptions,
    width: Option<usize>,
) -> PrOutput {
    let width = width.unwrap_or(8);
    let n = g.num_nodes();
    if n == 0 {
        return PrOutput {
            ranks: Vec::new(),
            report: SimReport::new(),
            converged: true,
            cancelled: false,
        };
    }
    let ranks = AtomicFloats::new(n, 1.0 / n as f32);
    let accum = AtomicFloats::new(n, 0.0);
    let mut report = SimReport::new();
    let mut converged = false;

    for _ in 0..options.max_iterations {
        accum.fill(0.0);
        let mut metrics = sim.launch(n * width, |tid, lane| {
            let node = tid / width;
            let lane_in_group = tid % width;
            let v = NodeId::from_index(node);
            lane.load(row_ptr_addr(node), 8);
            lane.load(value_addr(node), 4);
            let deg = g.out_degree(v);
            if deg == 0 {
                return;
            }
            let share = ranks.load(node) / deg as f32;
            lane.compute(1);
            let (start, end) = (g.edge_start(v), g.edge_end(v));
            let mut e = start + lane_in_group;
            while e < end {
                lane.load(edge_addr(e), 8);
                let nbr = g.edge_target(e).index();
                accum.fetch_add(nbr, share);
                lane.atomic(tigr_engine::addr::aux_addr(0, nbr), 4);
                e += width;
            }
        });

        let mut dangling = 0.0f64;
        for v in g.nodes() {
            if g.out_degree(v) == 0 {
                dangling += ranks.load(v.index()) as f64;
            }
        }
        let base =
            (1.0 - options.damping) / n as f32 + options.damping * dangling as f32 / n as f32;
        let delta = AtomicFloats::new(1, 0.0);
        let fin: KernelMetrics = sim.launch(n, |v, lane| {
            lane.load(tigr_engine::addr::aux_addr(0, v), 4);
            lane.load(value_addr(v), 4);
            let new = base + options.damping * accum.load(v);
            delta.fetch_add(0, (new - ranks.load(v)).abs());
            ranks.store(v, new);
            lane.compute(3);
            lane.store(value_addr(v), 4);
        });
        metrics.merge(&fin);
        report.push(n * width, metrics);
        if delta.load(0) < options.tolerance {
            converged = true;
            break;
        }
    }

    PrOutput {
        ranks: ranks.snapshot(),
        report,
        converged,
        cancelled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_graph::properties::{dijkstra, pagerank};
    use tigr_sim::GpuConfig;

    fn fixture() -> Csr {
        with_uniform_weights(&rmat(&RmatConfig::graph500(7, 6), 71), 1, 32, 4)
    }

    #[test]
    fn mw_sssp_matches_dijkstra_for_every_width() {
        let g = fixture();
        let expect = dijkstra(&g, NodeId::new(0));
        let sim = GpuSimulator::new(GpuConfig::default());
        for w in WIDTHS {
            let out = run_monotone(
                &sim,
                &g,
                MonotoneProgram::SSSP,
                Some(NodeId::new(0)),
                Some(w),
            );
            assert_eq!(out.values, expect, "width {w}");
        }
    }

    #[test]
    fn auto_width_picks_a_fast_one() {
        let g = fixture();
        let sim = GpuSimulator::new(GpuConfig::default());
        let auto = run_monotone(&sim, &g, MonotoneProgram::SSSP, Some(NodeId::new(0)), None);
        for w in WIDTHS {
            let fixed = run_monotone(
                &sim,
                &g,
                MonotoneProgram::SSSP,
                Some(NodeId::new(0)),
                Some(w),
            );
            assert!(auto.report.total_cycles() <= fixed.report.total_cycles());
        }
    }

    #[test]
    fn wide_virtual_warps_help_hubs() {
        // A giant star: W=32 shares the hub's edges across a full warp;
        // W=2 leaves one pair doing all the work.
        let g = tigr_graph::generators::star_graph(4001);
        let sim = GpuSimulator::new(GpuConfig::default());
        let narrow = run_monotone(
            &sim,
            &g,
            MonotoneProgram::BFS,
            Some(NodeId::new(0)),
            Some(2),
        );
        let wide = run_monotone(
            &sim,
            &g,
            MonotoneProgram::BFS,
            Some(NodeId::new(0)),
            Some(32),
        );
        assert!(
            wide.report.total_cycles() < narrow.report.total_cycles(),
            "wide {} < narrow {}",
            wide.report.total_cycles(),
            narrow.report.total_cycles()
        );
    }

    #[test]
    fn mw_pagerank_matches_oracle() {
        let g = rmat(&RmatConfig::graph500(7, 6), 72);
        let expect = pagerank(&g, 0.85, 50);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run_pagerank(
            &sim,
            &g,
            &PrOptions {
                max_iterations: 50,
                tolerance: 1e-7,
                ..PrOptions::default()
            },
            Some(4),
        );
        for (i, (&got, &want)) in out.ranks.iter().zip(&expect).enumerate() {
            assert!((got as f64 - want).abs() < 1e-4, "rank[{i}]");
        }
    }

    #[test]
    #[should_panic(expected = "must divide the warp size")]
    fn invalid_width_rejected() {
        let g = fixture();
        let sim = GpuSimulator::new(GpuConfig::default());
        let _ = run_monotone(
            &sim,
            &g,
            MonotoneProgram::BFS,
            Some(NodeId::new(0)),
            Some(7),
        );
    }
}
