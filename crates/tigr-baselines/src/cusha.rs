//! CuSha (Khorasani et al., HPDC 2014): shard-based processing with
//! G-Shards and Concatenated Windows.
//!
//! CuSha abandons CSR for *shards*: edges are grouped by destination
//! window and stored as full `(src, dst, weight, src-value)` entries so
//! that a block of threads sweeps a shard with perfectly coalesced
//! reads, combines updates in on-chip windows (no global atomics), and
//! writes each window back once. The costs of that strategy, all
//! reproduced here:
//!
//! * a **value-refresh scatter** per iteration (the src-value copies in
//!   every shard entry must be updated from the value array),
//! * a **write-back pass** per window,
//! * ~2× edge storage, which produces the paper's OOM entries
//!   (`common::Baseline::footprint_bytes`),
//! * and no worklist: every edge is processed every iteration.
//!
//! In exchange, the main sweep is edge-parallel, fully balanced, and
//! atomic-free — which is exactly why CuSha wins PageRank in Table 4
//! while losing the frontier-driven analytics to Tigr-V+.

use std::sync::atomic::{AtomicBool, Ordering};

use tigr_engine::addr::{aux_addr, value_addr, FLAG_ADDR};
use tigr_engine::{AtomicFloats, AtomicValues, MonotoneProgram, PrOptions, PrOutput};
use tigr_graph::reverse::transpose;
use tigr_graph::{Csr, NodeId, Weight};
use tigr_sim::{GpuSimulator, SimReport};

use crate::common::{CushaMode, FrameworkRun};

/// Simulated base address of the shard entry array (16-byte entries).
const SHARD_BASE: u64 = 0x8000_0000;

const fn shard_addr(e: usize) -> u64 {
    SHARD_BASE + (e as u64) * 16
}

/// One shard entry: an edge sorted by destination.
#[derive(Clone, Copy, Debug)]
struct ShardEntry {
    src: u32,
    dst: u32,
    weight: Weight,
}

/// The shard representation: edges of `g` sorted by destination —
/// i.e. the transpose's flat order, which groups each destination
/// window's updates contiguously.
fn build_shards(g: &Csr) -> Vec<ShardEntry> {
    let rev = transpose(g);
    let mut entries = Vec::with_capacity(g.num_edges());
    for dst in rev.nodes() {
        for (off, &src) in rev.neighbors(dst).iter().enumerate() {
            let e = rev.edge_start(dst) + off;
            entries.push(ShardEntry {
                src: src.raw(),
                dst: dst.raw(),
                weight: rev.weight(e),
            });
        }
    }
    entries
}

/// Runs a monotone analytic with CuSha's shard strategy.
pub fn run_monotone(
    sim: &GpuSimulator,
    g: &Csr,
    prog: MonotoneProgram,
    source: Option<NodeId>,
    mode: CushaMode,
) -> FrameworkRun {
    let n = g.num_nodes();
    let m = g.num_edges();
    let shards = build_shards(g);
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let mut report = SimReport::new();

    loop {
        let changed = AtomicBool::new(false);

        // Phase 1 — refresh: copy current values into the shard entries'
        // src-value slots (scattered gather, coalesced store).
        let mut metrics = sim.launch(m, |tid, lane| {
            let entry = &shards[tid];
            lane.load(value_addr(entry.src as usize), 4);
            lane.store(shard_addr(tid) + 12, 4);
        });

        // Phase 2 — shard sweep: coalesced entry reads, window-local
        // combining (on-chip, so only compute is charged).
        let sweep = sim.launch(m, |tid, lane| {
            let entry = &shards[tid];
            lane.load(shard_addr(tid), 16);
            let d = values.load(entry.src as usize);
            let cand = prog.edge_op.apply(d, entry.weight);
            lane.compute(3);
            if prog.combine.improves(cand, values.load(entry.dst as usize))
                && values.try_improve(entry.dst as usize, cand, prog.combine)
            {
                // Window update in shared memory: compute-only.
                lane.compute(1);
                lane.store(FLAG_ADDR, 1);
                changed.store(true, Ordering::Relaxed);
            }
        });
        metrics.merge(&sweep);

        // Phase 3 — window write-back, one coalesced pass over nodes.
        // Concatenated Windows skip re-reading the old values.
        let writeback = sim.launch(n, |tid, lane| {
            if matches!(mode, CushaMode::GShards) {
                lane.load(aux_addr(4, tid), 4);
            }
            lane.compute(1);
            lane.store(value_addr(tid), 4);
        });
        metrics.merge(&writeback);

        report.push(m, metrics);
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }

    FrameworkRun {
        values: values.snapshot(),
        report,
    }
}

/// PageRank with CuSha: the shard sweep gathers `rank/outdeg`
/// contributions per destination window without atomics — the shape that
/// wins PR in Table 4.
pub fn run_pagerank(sim: &GpuSimulator, g: &Csr, options: &PrOptions, mode: CushaMode) -> PrOutput {
    let n = g.num_nodes();
    let m = g.num_edges();
    if n == 0 {
        return PrOutput {
            ranks: Vec::new(),
            report: SimReport::new(),
            converged: true,
            cancelled: false,
        };
    }
    let shards = build_shards(g);
    let out_deg: Vec<u32> = g.nodes().map(|v| g.out_degree(v) as u32).collect();
    let ranks = AtomicFloats::new(n, 1.0 / n as f32);
    let accum = AtomicFloats::new(n, 0.0);
    let mut report = SimReport::new();
    let mut converged = false;

    for _ in 0..options.max_iterations {
        accum.fill(0.0);

        // Refresh pass: shard entries pick up current ranks.
        let mut metrics = sim.launch(m, |tid, lane| {
            let entry = &shards[tid];
            lane.load(value_addr(entry.src as usize), 4);
            lane.store(shard_addr(tid) + 12, 4);
        });

        // Shard sweep: window-local partial sums, no atomics. The host
        // accumulation uses atomics for thread-safety, but the simulated
        // cost is compute-only, matching on-chip combining.
        let sweep = sim.launch(m, |tid, lane| {
            let entry = &shards[tid];
            lane.load(shard_addr(tid), 16);
            let deg = out_deg[entry.src as usize].max(1);
            accum.fetch_add(
                entry.dst as usize,
                ranks.load(entry.src as usize) / deg as f32,
            );
            lane.compute(3);
        });
        metrics.merge(&sweep);

        let mut dangling = 0.0f64;
        for (v, &deg) in out_deg.iter().enumerate() {
            if deg == 0 {
                dangling += ranks.load(v) as f64;
            }
        }
        let base =
            (1.0 - options.damping) / n as f32 + options.damping * dangling as f32 / n as f32;

        let delta = AtomicFloats::new(1, 0.0);
        let writeback = sim.launch(n, |v, lane| {
            if matches!(mode, CushaMode::GShards) {
                lane.load(aux_addr(4, v), 4);
            }
            let new = base + options.damping * accum.load(v);
            delta.fetch_add(0, (new - ranks.load(v)).abs());
            ranks.store(v, new);
            lane.compute(3);
            lane.store(value_addr(v), 4);
        });
        metrics.merge(&writeback);
        report.push(m, metrics);

        if delta.load(0) < options.tolerance {
            converged = true;
            break;
        }
    }

    PrOutput {
        ranks: ranks.snapshot(),
        report,
        converged,
        cancelled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_graph::properties::{dijkstra, pagerank};
    use tigr_sim::GpuConfig;

    fn fixture() -> Csr {
        with_uniform_weights(&rmat(&RmatConfig::graph500(7, 6), 81), 1, 32, 6)
    }

    #[test]
    fn cusha_sssp_matches_dijkstra_in_both_modes() {
        let g = fixture();
        let expect = dijkstra(&g, NodeId::new(0));
        let sim = GpuSimulator::new(GpuConfig::default());
        for mode in [CushaMode::GShards, CushaMode::ConcatenatedWindows] {
            let out = run_monotone(&sim, &g, MonotoneProgram::SSSP, Some(NodeId::new(0)), mode);
            assert_eq!(out.values, expect, "{mode:?}");
        }
    }

    #[test]
    fn cusha_pagerank_matches_oracle() {
        let g = rmat(&RmatConfig::graph500(7, 6), 82);
        let expect = pagerank(&g, 0.85, 50);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run_pagerank(
            &sim,
            &g,
            &PrOptions {
                max_iterations: 50,
                tolerance: 1e-7,
                ..PrOptions::default()
            },
            CushaMode::GShards,
        );
        for (i, (&got, &want)) in out.ranks.iter().zip(&expect).enumerate() {
            assert!((got as f64 - want).abs() < 1e-4, "rank[{i}]");
        }
    }

    #[test]
    fn shard_sweep_is_atomic_free() {
        let g = fixture();
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run_monotone(
            &sim,
            &g,
            MonotoneProgram::BFS,
            Some(NodeId::new(0)),
            CushaMode::GShards,
        );
        assert_eq!(
            out.report.total().atomic_ops,
            0,
            "window combining avoids atomics"
        );
    }

    #[test]
    fn shards_sorted_by_destination() {
        let g = fixture();
        let shards = build_shards(&g);
        assert_eq!(shards.len(), g.num_edges());
        assert!(shards.windows(2).all(|w| w[0].dst <= w[1].dst));
    }

    #[test]
    fn shard_sweep_has_high_warp_efficiency() {
        // Edge-parallel processing is perfectly balanced even on a star.
        let g = tigr_graph::generators::star_graph(2001);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run_monotone(
            &sim,
            &g,
            MonotoneProgram::BFS,
            Some(NodeId::new(0)),
            CushaMode::GShards,
        );
        assert!(
            out.report.warp_efficiency() > 0.9,
            "efficiency {}",
            out.report.warp_efficiency()
        );
    }
}
