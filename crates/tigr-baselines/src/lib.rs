//! Re-implementations of the GPU graph frameworks the paper compares
//! against (Table 2): Maximum Warp, CuSha, and Gunrock.
//!
//! Each module reproduces the framework's *scheduling and representation
//! strategy* on the shared [`tigr_sim`] simulator, computing real results
//! with the same programs as [`tigr_engine`] while paying that
//! framework's characteristic costs:
//!
//! * [`mw`] — virtual warps of width 2–32 cooperating per node; no
//!   worklist; no memory overhead (and hence no OOMs, as in Table 4).
//! * [`cusha`] — G-Shards / Concatenated-Windows shard processing:
//!   perfectly coalesced edge-parallel sweeps, but a value-refresh
//!   scatter pass per iteration and a ~2× edge-storage footprint that
//!   reproduces the paper's OOM entries on the largest graphs.
//! * [`gunrock`] — frontier-based advance/filter with edge-parallel load
//!   balancing and sizable frontier buffers.
//!
//! [`Baseline`] is the uniform dispatcher the benchmark harness uses to
//! fill Table 4's columns.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod common;
pub mod cusha;
pub mod gunrock;
pub mod hardwired;
pub mod mw;

pub use common::{Baseline, CushaMode, FrameworkRun};
pub use hardwired::{delta_stepping_sssp, hooking_cc};
