//! Gunrock-style frontier engine (Wang et al., PPoPP 2016).
//!
//! Gunrock expresses analytics as *advance* (expand every out-edge of
//! the frontier, load-balanced so each thread gets one edge) and
//! *filter* (deduplicate/compact the advance output into the next
//! frontier). The advance is edge-parallel — immune to degree skew, like
//! Tigr — but each iteration pays two kernel launches, the filter pass,
//! and large frontier buffers (whose footprint OOMs on the paper's
//! largest graphs; see [`crate::Baseline::footprint_bytes`]).

use std::sync::atomic::{AtomicU32, Ordering};

use crossbeam::queue::SegQueue;

use tigr_engine::addr::{edge_addr, frontier_addr, value_addr};
use tigr_engine::{AtomicFloats, AtomicValues, MonotoneProgram, PrOptions, PrOutput};
use tigr_graph::{Csr, NodeId};
use tigr_sim::{GpuSimulator, SimReport};

use crate::common::FrameworkRun;

/// Work unit of one advance: a (source node, flat edge index) pair, the
/// product of Gunrock's load-balanced partitioning.
fn expand_frontier(g: &Csr, frontier: &[u32]) -> Vec<(u32, u32)> {
    let mut work = Vec::new();
    for &v in frontier {
        let node = NodeId::new(v);
        for e in g.edge_start(node)..g.edge_end(node) {
            work.push((v, e as u32));
        }
    }
    work
}

/// Runs a monotone analytic with the advance/filter strategy.
pub fn run_monotone(
    sim: &GpuSimulator,
    g: &Csr,
    prog: MonotoneProgram,
    source: Option<NodeId>,
) -> FrameworkRun {
    let n = g.num_nodes();
    let values = AtomicValues::from_values(prog.initial_values(n, source));
    let mut report = SimReport::new();
    let mut frontier: Vec<u32> = prog.initial_frontier(n, source);
    let enqueued: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();

    while !frontier.is_empty() {
        let work = expand_frontier(g, &frontier);
        let next = SegQueue::new();

        // Load-balancing scan: Gunrock's advance is preceded by a
        // degree-gather plus prefix-sum over the frontier to give each
        // thread exactly one edge (two extra kernel launches).
        let mut metrics = sim.launch(frontier.len(), |tid, lane| {
            lane.load(frontier_addr(tid), 4);
            lane.load(tigr_engine::addr::row_ptr_addr(frontier[tid] as usize), 8);
            lane.compute(2);
            lane.store(frontier_addr(tid), 4);
        });
        let scan = sim.launch(frontier.len(), |tid, lane| {
            lane.load(frontier_addr(tid), 4);
            lane.compute(3); // up-sweep + down-sweep amortized
            lane.store(frontier_addr(tid), 4);
        });
        metrics.merge(&scan);

        // Advance: one thread per frontier edge.
        let advance = sim.launch(work.len(), |tid, lane| {
            let (src, e) = work[tid];
            // Load-balance lookup table entry + source value + edge.
            lane.load(frontier_addr(tid), 4);
            lane.load(value_addr(src as usize), 4);
            let d = values.load(src as usize);
            lane.load(edge_addr(e as usize), 8);
            let nbr = g.edge_target(e as usize).index();
            let cand = prog.edge_op.apply(d, g.weight(e as usize));
            lane.compute(2);
            lane.load(value_addr(nbr), 4);
            if prog.combine.improves(cand, values.load(nbr))
                && values.try_improve(nbr, cand, prog.combine)
            {
                lane.atomic(value_addr(nbr), 4);
                if enqueued[nbr].swap(1, Ordering::Relaxed) == 0 {
                    next.push(nbr as u32);
                    lane.atomic(frontier_addr(nbr), 4);
                }
            }
        });

        metrics.merge(&advance);

        // Filter: compact and reset the dedup flags.
        let mut nf: Vec<u32> = std::iter::from_fn(|| next.pop()).collect();
        let filter = sim.launch(nf.len(), |tid, lane| {
            lane.load(frontier_addr(tid), 4);
            lane.compute(2);
            lane.store(frontier_addr(tid), 4);
        });
        metrics.merge(&filter);
        report.push(work.len(), metrics);

        for &v in &nf {
            enqueued[v as usize].store(0, Ordering::Relaxed);
        }
        nf.sort_unstable();
        frontier = nf;
    }

    FrameworkRun {
        values: values.snapshot(),
        report,
    }
}

/// Gunrock PageRank: an all-active advance per iteration plus the
/// finalize pass (PR's frontier never shrinks, so filter is trivial).
pub fn run_pagerank(sim: &GpuSimulator, g: &Csr, options: &PrOptions) -> PrOutput {
    let n = g.num_nodes();
    let m = g.num_edges();
    if n == 0 {
        return PrOutput {
            ranks: Vec::new(),
            report: SimReport::new(),
            converged: true,
            cancelled: false,
        };
    }
    // Flat (src, edge) table, built once.
    let mut work = Vec::with_capacity(m);
    for v in g.nodes() {
        for e in g.edge_start(v)..g.edge_end(v) {
            work.push((v.raw(), e as u32));
        }
    }
    let out_deg: Vec<u32> = g.nodes().map(|v| g.out_degree(v) as u32).collect();
    let ranks = AtomicFloats::new(n, 1.0 / n as f32);
    let accum = AtomicFloats::new(n, 0.0);
    let mut report = SimReport::new();
    let mut converged = false;

    for _ in 0..options.max_iterations {
        accum.fill(0.0);
        let mut metrics = sim.launch(m, |tid, lane| {
            let (src, e) = work[tid];
            lane.load(frontier_addr(tid), 4);
            lane.load(value_addr(src as usize), 4);
            lane.load(edge_addr(e as usize), 8);
            let nbr = g.edge_target(e as usize).index();
            let deg = out_deg[src as usize].max(1);
            accum.fetch_add(nbr, ranks.load(src as usize) / deg as f32);
            lane.compute(2);
            lane.atomic(tigr_engine::addr::aux_addr(0, nbr), 4);
        });

        let mut dangling = 0.0f64;
        for (v, &deg) in out_deg.iter().enumerate() {
            if deg == 0 {
                dangling += ranks.load(v) as f64;
            }
        }
        let base =
            (1.0 - options.damping) / n as f32 + options.damping * dangling as f32 / n as f32;
        let delta = AtomicFloats::new(1, 0.0);
        let fin = sim.launch(n, |v, lane| {
            lane.load(tigr_engine::addr::aux_addr(0, v), 4);
            let new = base + options.damping * accum.load(v);
            delta.fetch_add(0, (new - ranks.load(v)).abs());
            ranks.store(v, new);
            lane.compute(3);
            lane.store(value_addr(v), 4);
        });
        metrics.merge(&fin);
        report.push(m, metrics);
        if delta.load(0) < options.tolerance {
            converged = true;
            break;
        }
    }

    PrOutput {
        ranks: ranks.snapshot(),
        report,
        converged,
        cancelled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
    use tigr_graph::properties::{dijkstra, pagerank};
    use tigr_sim::GpuConfig;

    fn fixture() -> Csr {
        with_uniform_weights(&rmat(&RmatConfig::graph500(7, 6), 91), 1, 32, 9)
    }

    #[test]
    fn gunrock_sssp_matches_dijkstra() {
        let g = fixture();
        let expect = dijkstra(&g, NodeId::new(0));
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run_monotone(&sim, &g, MonotoneProgram::SSSP, Some(NodeId::new(0)));
        assert_eq!(out.values, expect);
    }

    #[test]
    fn gunrock_cc_matches_oracle() {
        let mut b = tigr_graph::CsrBuilder::new(7);
        b.symmetric(true);
        b.edge(0, 1).edge(1, 2).edge(3, 4).edge(5, 6);
        let g = b.build();
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let out = run_monotone(&sim, &g, MonotoneProgram::CC, None);
        assert_eq!(out.values, tigr_graph::properties::connected_components(&g));
    }

    #[test]
    fn gunrock_pagerank_matches_oracle() {
        let g = rmat(&RmatConfig::graph500(7, 6), 92);
        let expect = pagerank(&g, 0.85, 50);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run_pagerank(
            &sim,
            &g,
            &PrOptions {
                max_iterations: 50,
                tolerance: 1e-7,
                ..PrOptions::default()
            },
        );
        for (i, (&got, &want)) in out.ranks.iter().zip(&expect).enumerate() {
            assert!((got as f64 - want).abs() < 1e-4, "rank[{i}]");
        }
    }

    #[test]
    fn advance_is_edge_balanced_even_on_stars() {
        let g = tigr_graph::generators::star_graph(2001);
        let sim = GpuSimulator::new(GpuConfig::default());
        let out = run_monotone(&sim, &g, MonotoneProgram::BFS, Some(NodeId::new(0)));
        assert!(
            out.report.warp_efficiency() > 0.9,
            "edge-parallel advance stays balanced: {}",
            out.report.warp_efficiency()
        );
    }

    #[test]
    fn frontier_work_expansion() {
        let g = tigr_graph::CsrBuilder::new(3)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 2)
            .build();
        let work = expand_frontier(&g, &[0]);
        assert_eq!(work, vec![(0, 0), (0, 1)]);
        assert_eq!(expand_frontier(&g, &[2]), vec![]);
    }
}
